"""JVM garbage-collection overhead model.

GC cost in Spark executors is driven by allocation rate (serialization
churn) and heap pressure (live data close to heap size forces frequent full
collections).  The model produces a multiplicative slowdown applied to
task CPU time:

* baseline young-gen overhead proportional to allocation pressure,
* a sharply super-linear term as live-set/heap utilization approaches 1,
* a mild large-heap term (bigger heaps mean longer, if rarer, pauses).

The super-linear pressure term is what creates the performance *cliff*
between "fits in memory" and "thrashes": configurations on the wrong side
are several times slower, matching the long right tails in Figure 5.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gc_slowdown", "gc_slowdown_batch"]


def gc_slowdown(heap_mb: float, live_mb: float, alloc_factor: float) -> float:
    """Multiplicative CPU slowdown due to garbage collection.

    Parameters
    ----------
    heap_mb:
        Executor heap size.
    live_mb:
        Long-lived data resident on the heap (cached blocks, buffers).
    alloc_factor:
        Relative allocation pressure of the active serializer (1.0 = Java).

    Returns
    -------
    A factor >= 1.0; e.g. 1.3 means 30% of extra time lost to GC.
    """
    if heap_mb <= 0:
        raise ValueError("heap_mb must be positive")
    util = min(max(live_mb, 0.0) / heap_mb, 0.98)
    # Young-generation churn: ~3% base, scaled by allocation pressure.
    young = 0.03 * alloc_factor
    # Old-generation pressure: negligible below ~60% utilization, then
    # rises steeply: at 80% ≈ +35%, at 95% ≈ +150% (a nearly-full heap
    # spends most of its time in stop-the-world collections).
    pressure = 0.0
    if util > 0.6:
        x = (util - 0.6) / 0.38
        pressure = 1.8 * x ** 2.0
    # Very large heaps pay slightly longer stop-the-world pauses.
    large_heap = 0.015 * max(heap_mb - 64 * 1024, 0.0) / (128 * 1024)
    return 1.0 + young + pressure + large_heap


def gc_slowdown_batch(heap_mb: np.ndarray, live_mb: np.ndarray,
                      alloc_factor: np.ndarray) -> np.ndarray:
    """Vectorized :func:`gc_slowdown` over aligned per-config arrays.

    Bit-identical to the scalar function element-wise: every expression
    mirrors the scalar one's operation order, and the conditional
    pressure term is selected with ``np.where`` rather than re-deriving
    the branch arithmetic.
    """
    heap = np.asarray(heap_mb, dtype=float)
    live = np.asarray(live_mb, dtype=float)
    alloc = np.asarray(alloc_factor, dtype=float)
    if np.any(heap <= 0):
        raise ValueError("heap_mb must be positive")
    util = np.minimum(np.maximum(live, 0.0) / heap, 0.98)
    young = 0.03 * alloc
    x = (util - 0.6) / 0.38
    pressure = np.where(util > 0.6, 1.8 * x ** 2.0, 0.0)
    large_heap = 0.015 * np.maximum(heap - 64 * 1024, 0.0) / (128 * 1024)
    return 1.0 + young + pressure + large_heap
