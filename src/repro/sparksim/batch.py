"""Vectorized batch simulation: many configurations in one NumPy pass.

:func:`run_batch` executes the same stage list under ``B`` configurations
at once, replacing ``B`` scalar :meth:`SparkSimulator.run` calls.  The
per-stage task arithmetic — memory accounting, GC pressure, read /
compute / shuffle / spill / output costs — runs as ``(B,)`` array
expressions via the ``*_batch`` helpers in :mod:`taskmodel`,
:mod:`gcmodel`, :mod:`disk`, :mod:`network` and :mod:`memory`, which is
where scalar simulation spends its time for wide batches.

The contract is *bit-identity*, not approximation: for every
configuration the result (status, duration, failure reason, every stage
metric) equals what ``run`` produces with the matching per-configuration
generator.  That holds because:

* every vector expression mirrors the scalar operation order exactly
  (IEEE-754 addition and multiplication are not associative, so
  ``(a + b) + c`` stays ``(a + b) + c``);
* scalar branches become masked assignments (``x[m] += ...``), never
  algebraically equivalent rewrites, and scalar early returns become
  zero masks applied after the uniform arithmetic;
* stateful or failure-path work — executor placement, cache reads and
  materialization, driver failure checks, stage overheads, the wave
  scheduler — reuses the scalar helpers per configuration, so those
  paths cannot drift;
* random draws stay per-configuration and happen in the scalar order
  (run noise at startup, then task noise / straggler draws per stage,
  only while that configuration is still running), so each child
  generator's stream is consumed exactly as ``run`` would.

Stage makespans deliberately stay per-configuration: NumPy reductions
over reshaped batch axes use pairwise summation whose grouping depends
on the array shape, which would break bit-identity with the scalar
``np.sum`` over one configuration's waves.

The property suite in ``tests/sparksim/test_batch_parity.py`` checks the
contract across random configurations and stage graphs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..utils.rng import as_generator, spawn
from .conf import SparkConf
from .disk import effective_disk_bw_batch
from .gcmodel import gc_slowdown_batch
from .memory import RESERVED_MB, execution_available_batch, executor_memory
from .network import shuffle_fetch_seconds_batch
from .placement import place_executors
from .result import ExecutionResult, RunStatus, StageMetrics
from .scheduler import stage_makespan
from .serialization import codec_model, kryo_buffer_failure, serializer_model
from .simulator import (_APP_STARTUP_S, _DISPATCH_BASE_S,
                        _PER_EXECUTOR_STARTUP_S, _RUN_NOISE_SIGMA,
                        _STRAGGLER_PROB, _STRAGGLER_RANGE, _TASK_NOISE_SIGMA,
                        SparkSimulator)
from .stage import CacheLevel, InputSource, StageSpec
from .taskmodel import (hdfs_read_seconds_batch, locality_fraction_batch,
                        shuffle_write_seconds_batch, spill_seconds_batch)

__all__ = ["run_batch"]


class _ConfigRun:
    """Mutable per-configuration execution state across the stage loop."""

    __slots__ = ("conf", "rng", "placement", "mem", "ser", "codec",
                 "run_noise", "t", "cache", "wire_ratio", "metrics", "result")

    def __init__(self, sim: SparkSimulator, conf: SparkConf,
                 rng: np.random.Generator):
        self.conf = conf
        self.rng = rng
        self.metrics: list[StageMetrics] = []
        self.result: ExecutionResult | None = None
        self.placement = place_executors(conf, sim.cluster)
        if not self.placement.viable:
            self.result = ExecutionResult(
                RunStatus.INVALID, 8.0,
                failure_reason="no executor fits on any node")
            return
        self.mem = executor_memory(conf)
        self.ser = serializer_model(conf)
        self.codec = codec_model(conf)
        self.run_noise = float(np.exp(rng.normal(0.0, _RUN_NOISE_SIGMA)))
        self.t = _APP_STARTUP_S \
            + _PER_EXECUTOR_STARTUP_S * self.placement.executors
        self.cache: dict = {}
        self.wire_ratio = self.ser.size_ratio * (
            self.codec.ratio if conf.shuffle_compress else 1.0)

    def fail(self, out: ExecutionResult) -> None:
        """Finalize with a stage-level failure, charging elapsed time."""
        self.result = ExecutionResult(out.status, self.t + out.duration_s,
                                      tuple(self.metrics), out.failure_reason)


def run_batch(sim: SparkSimulator, stages: Sequence[StageSpec],
              confs: Sequence[SparkConf | Mapping[str, object]],
              rngs=None, time_limit_s: float | None = None
              ) -> list[ExecutionResult]:
    """Simulate every configuration in *confs*; see the module docstring.

    ``rngs`` is either a sequence of per-configuration generators/seeds
    (one per configuration, the parity-testable form) or a single
    seed/generator/None that is split into per-configuration children via
    :func:`repro.utils.rng.spawn`.
    """
    if not stages:
        raise ValueError("workload has no stages")
    confs = [c if isinstance(c, SparkConf) else SparkConf(c) for c in confs]
    if rngs is None or isinstance(rngs, (int, np.random.Generator)):
        rngs = spawn(rngs, len(confs))
    else:
        rngs = [as_generator(r) for r in rngs]
        if len(rngs) != len(confs):
            raise ValueError(f"got {len(rngs)} generators for "
                             f"{len(confs)} configurations")
    runs = [_ConfigRun(sim, conf, rng) for conf, rng in zip(confs, rngs)]
    for spec in stages:
        active = [r for r in runs if r.result is None]
        if not active:
            break
        _stage_batch(sim, spec, active, time_limit_s)
    for r in runs:
        if r.result is None:
            r.result = ExecutionResult(RunStatus.SUCCESS, float(r.t),
                                       tuple(r.metrics))
    return [r.result for r in runs]


def _stage_batch(sim: SparkSimulator, spec: StageSpec,
                 active: list[_ConfigRun],
                 time_limit_s: float | None) -> None:
    """One stage for every still-running configuration."""
    node = sim.cluster.node
    n = len(active)
    conf = [r.conf for r in active]

    execs = np.array([r.placement.executors for r in active], dtype=np.int64)
    task_slots = np.array([r.placement.task_slots for r in active],
                          dtype=np.int64)
    ex_per_node = np.array([r.placement.executors_per_node for r in active],
                           dtype=np.int64)
    nodes_used = np.array([r.placement.nodes_used for r in active],
                          dtype=np.int64)
    slots_per_exec = np.maximum(task_slots // execs, 1)

    # _partitions touches per-config cache state; always >= 1.
    p = np.array([sim._partitions(spec, r.conf, r.cache) for r in active],
                 dtype=np.int64)
    per_task_mb = spec.input_mb / p

    conc_per_exec = np.minimum(slots_per_exec, np.maximum(-(-p // execs), 1))
    conc_per_node = np.minimum(slots_per_exec * ex_per_node,
                               np.maximum(-(-p // nodes_used), 1))

    # ---- memory accounting --------------------------------------------------
    cached_per_exec = np.array(
        [sum(e.stored_mb for e in r.cache.values()) / r.placement.executors
         for r in active])
    heap_cached = np.array(
        [sum(e.stored_mb for e in r.cache.values() if e.on_heap)
         / r.placement.executors for r in active])
    working_set = per_task_mb * spec.expansion
    if spec.shuffle_write_ratio > 0.0:
        working_set += per_task_mb * spec.shuffle_write_ratio \
            * spec.expansion * 0.5
    if spec.cache_output is not None \
            and spec.cache_output.level == CacheLevel.MEMORY:
        unroll = per_task_mb * spec.expansion
    else:
        unroll = working_set * spec.unroll_fraction

    total_unified = np.array([r.mem.total_unified_mb for r in active])
    storage_floor = np.array([r.mem.storage_floor_mb for r in active])
    exec_avail = execution_available_batch(total_unified, storage_floor,
                                           cached_per_exec) / conc_per_exec

    heap_mb = np.array([r.mem.heap_mb for r in active])
    alloc_factor = np.array([r.ser.alloc_factor for r in active])
    live_mb = RESERVED_MB + heap_cached + working_set * conc_per_exec * 0.8
    gc = gc_slowdown_batch(heap_mb, live_mb, alloc_factor)

    # ---- fast failures ------------------------------------------------------
    alive = np.ones(n, dtype=bool)
    if spec.shuffle_write_ratio > 0.0:
        for i, r in enumerate(active):
            if kryo_buffer_failure(r.conf, spec.largest_record_mb):
                alive[i] = False
                r.fail(ExecutionResult(
                    RunStatus.RUNTIME_ERROR, 10.0,
                    failure_reason=f"{spec.name}: record exceeds "
                                   "spark.kryoserializer.buffer.max"))
    for i, r in enumerate(active):
        if alive[i]:
            fail = sim._driver_failures(spec, r.conf, int(p[i]))
            if fail is not None:
                alive[i] = False
                r.fail(fail)

    # ---- per-task cost components -------------------------------------------
    ser_mbps = np.array([r.ser.ser_mbps for r in active])
    deser_mbps = np.array([r.ser.deser_mbps for r in active])
    size_ratio = np.array([r.ser.size_ratio for r in active])
    comp_mbps = np.array([r.codec.comp_mbps for r in active])
    decomp_mbps = np.array([r.codec.decomp_mbps for r in active])
    codec_ratio = np.array([r.codec.ratio for r in active])
    shuffle_compress = np.array([c.shuffle_compress for c in conf], dtype=bool)

    local_frac, local_delay = locality_fraction_batch(
        np.array([c.locality_wait_s for c in conf], dtype=float), nodes_used,
        sim.cluster.n_workers, sim.cluster.hdfs_replication)

    fetch_floor = np.zeros(n)
    cache_hit = np.ones(n)
    if spec.input_source == InputSource.HDFS:
        read_s = hdfs_read_seconds_batch(per_task_mb, node, conc_per_node,
                                         local_frac, deser_mbps * 1.5)
        read_s = read_s + local_delay
    elif spec.input_source == InputSource.SHUFFLE:
        wire_total = spec.input_mb * (
            size_ratio * np.where(shuffle_compress, codec_ratio, 1.0))
        fetch_floor = shuffle_fetch_seconds_batch(
            wire_total,
            np.array([float(c.reducer_max_size_in_flight_mb) for c in conf]),
            np.array([c.reducer_max_reqs_in_flight for c in conf],
                     dtype=np.int64),
            np.array([c.shuffle_connections_per_peer for c in conf],
                     dtype=np.int64),
            node, nodes_used)
        wire_per_task = wire_total / p
        cpu = per_task_mb / deser_mbps
        cpu[shuffle_compress] += wire_per_task[shuffle_compress] \
            / decomp_mbps[shuffle_compress]
        big = wire_per_task > np.array(
            [c.max_remote_block_to_mem_mb for c in conf], dtype=np.int64)
        cpu[big] += wire_per_task[big] \
            / effective_disk_bw_batch(node, conc_per_node)[big]
        read_s = cpu * gc / node.cpu_speed
    else:  # CACHE: per-config cache state drives everything; reuse scalar.
        read_s = np.empty(n)
        for i, r in enumerate(active):
            read_s[i], fetch_floor[i], cache_hit[i] = sim._read_costs(
                spec, r.conf, r.cache, float(per_task_mb[i]), int(p[i]),
                r.ser, r.codec, float(gc[i]), node, int(conc_per_node[i]),
                float(local_frac[i]), int(nodes_used[i]))

    compute_s = per_task_mb * spec.compute_s_per_mb * gc / node.cpu_speed

    shuffle_s, wire_per_task_out = shuffle_write_seconds_batch(
        per_task_mb * spec.shuffle_write_ratio, node, conc_per_node,
        ser_mbps, size_ratio, comp_mbps, codec_ratio, shuffle_compress,
        np.array([c.shuffle_file_buffer_kb for c in conf], dtype=np.int64),
        np.array([c.shuffle_sort_bypass_threshold for c in conf],
                 dtype=np.int64),
        np.array([c.default_parallelism for c in conf], dtype=np.int64),
        spec.shuffle_agg, gc)
    new_wire_ratio = None
    if spec.shuffle_write_ratio > 0.0:
        new_wire_ratio = wire_per_task_out / np.maximum(
            per_task_mb * spec.shuffle_write_ratio, 1e-12)

    spill_mb = np.maximum(working_set - exec_avail, 0.0)
    spill_s, spilled_mb = spill_seconds_batch(
        spill_mb, exec_avail, node, conc_per_node, ser_mbps, deser_mbps,
        size_ratio, comp_mbps, decomp_mbps, codec_ratio,
        np.array([c.shuffle_spill_compress for c in conf], dtype=bool))

    output_s = np.zeros(n)
    if spec.output_mb > 0.0:
        out_per_task = spec.output_mb / p
        output_s = out_per_task / effective_disk_bw_batch(node, conc_per_node)

    # OOM after costs are known, so the failure charges real time.
    oom = unroll > exec_avail
    for i, r in enumerate(active):
        if alive[i] and oom[i]:
            alive[i] = False
            attempt = (float(read_s[i]) + float(compute_s[i])) * 1.5 + 12.0
            retries = min(r.conf.task_max_failures, 4)
            r.fail(ExecutionResult(
                RunStatus.OOM, attempt * retries,
                failure_reason=f"{spec.name}: partition working set "
                               f"{float(unroll[i]):.0f} MB exceeds per-task "
                               f"execution memory {float(exec_avail[i]):.0f}"
                               " MB"))

    # ---- per-config noise, scheduling and stage wrap-up ---------------------
    base = read_s + compute_s + shuffle_s + spill_s + output_s
    dispatch = _DISPATCH_BASE_S / (0.5 + 0.25 * np.minimum(
        np.array([c.driver_cores for c in conf], dtype=np.int64), 6))
    for i, r in enumerate(active):
        if not alive[i]:
            continue
        pi = int(p[i])
        durations = float(base[i]) * np.exp(
            r.rng.normal(0.0, _TASK_NOISE_SIGMA, size=pi))
        stragglers = r.rng.random(pi) < _STRAGGLER_PROB
        durations[stragglers] *= r.rng.uniform(*_STRAGGLER_RANGE,
                                               size=int(stragglers.sum()))
        if sim.exact_scheduler:
            from .eventsim import event_driven_makespan
            makespan, waves = event_driven_makespan(
                durations, r.conf, r.placement.task_slots, float(dispatch[i]))
        else:
            makespan, waves = stage_makespan(
                durations, r.conf, r.placement.task_slots, float(dispatch[i]))
        stage_time = max(makespan, float(fetch_floor[i]))
        stage_time += sim._stage_overheads(spec, r.conf, r.placement, node)
        stage_time *= r.run_noise

        if spec.cache_output is not None:
            sim._materialize(
                spec.cache_output, r.conf, r.mem, r.ser, r.codec, r.cache,
                r.placement.executors, pi,
                exec_demand_mb=float(working_set[i]) * int(conc_per_exec[i]))

        sm = StageMetrics(
            name=spec.name, tasks=pi, waves=waves,
            duration_s=float(stage_time),
            read_s=float(read_s[i]), compute_s=float(compute_s[i]),
            shuffle_write_s=float(shuffle_s[i]),
            shuffle_fetch_s=float(fetch_floor[i]), spill_s=float(spill_s[i]),
            gc_factor=float(gc[i]), sched_overhead_s=float(dispatch[i] * p[i]),
            spilled_mb=float(spilled_mb[i] * p[i]),
            cache_hit_fraction=float(cache_hit[i]),
        )
        if new_wire_ratio is not None:
            r.wire_ratio = float(new_wire_ratio[i])
        r.t += float(stage_time)
        r.metrics.append(sm)
        if time_limit_s is not None and r.t > time_limit_s:
            r.result = ExecutionResult(
                RunStatus.TIMEOUT, float(time_limit_s), tuple(r.metrics),
                failure_reason="execution cap reached")
