"""Task scheduling: turning per-task durations into a stage makespan.

Two interchangeable schedulers are provided:

* :func:`list_schedule_exact` — a discrete-event greedy list scheduler
  (each task goes to the earliest-free slot, via a heap).  This is the
  reference semantics.
* :func:`list_schedule_fast` — a vectorized wave approximation: task *i*
  runs in slot ``i % slots``; the makespan is the maximum per-slot sum.
  Exact for equal durations and within a few percent for the lognormal
  task-noise used here, at a fraction of the cost (pure NumPy).

The simulator uses the fast path; tests assert agreement with the exact
event-driven scheduler on randomized inputs.

Speculative execution (``spark.speculation``) is modelled here: once the
configured quantile of tasks has finished, any task whose duration exceeds
``multiplier × median`` is re-launched; the copy finishes in roughly median
time, so the straggler's effective duration is capped.
"""

from __future__ import annotations

import heapq

import numpy as np

from .conf import SparkConf

__all__ = [
    "list_schedule_exact",
    "list_schedule_fast",
    "apply_speculation",
    "stage_makespan",
]


def list_schedule_exact(durations: np.ndarray, slots: int,
                        dispatch_s: float = 0.0) -> float:
    """Greedy earliest-free-slot schedule; returns the makespan.

    Parameters
    ----------
    durations:
        Per-task run times, scheduled in array order.
    slots:
        Concurrent task capacity.
    dispatch_s:
        Serial driver-side dispatch cost per task: task *i* cannot start
        before ``i * dispatch_s`` (a centralized scheduler bottleneck).
    """
    durations = np.asarray(durations, dtype=float)
    if slots < 1:
        raise ValueError("slots must be >= 1")
    if durations.size == 0:
        return 0.0
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    free = [0.0] * min(slots, durations.size)
    heapq.heapify(free)
    makespan = 0.0
    for i, d in enumerate(durations):
        start = heapq.heappop(free)
        start = max(start, i * dispatch_s)
        end = start + float(d)
        heapq.heappush(free, end)
        makespan = max(makespan, end)
    return makespan


def list_schedule_fast(durations: np.ndarray, slots: int,
                       dispatch_s: float = 0.0) -> float:
    """Vectorized wave approximation of :func:`list_schedule_exact`.

    Task *i* is assigned to slot ``i % slots``; each slot's finish time is
    the sum of its tasks, plus the dispatch-serialization lower bound.
    """
    durations = np.asarray(durations, dtype=float)
    if slots < 1:
        raise ValueError("slots must be >= 1")
    n = durations.size
    if n == 0:
        return 0.0
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    slots = min(slots, n)
    waves = -(-n // slots)
    padded = np.zeros(waves * slots, dtype=float)
    padded[:n] = durations
    per_slot = padded.reshape(waves, slots).sum(axis=0)
    makespan = float(per_slot.max())
    # The last task cannot be dispatched earlier than (n-1) * dispatch_s.
    dispatch_floor = (n - 1) * dispatch_s + float(durations[-1]) if dispatch_s else 0.0
    return max(makespan, dispatch_floor)


def apply_speculation(durations: np.ndarray, conf: SparkConf,
                      slots: int) -> tuple[np.ndarray, float]:
    """Cap straggler durations per Spark's speculation rules.

    Returns the adjusted durations and the extra core-seconds consumed by
    speculative copies (charged as a small utilization penalty elsewhere).
    Speculation only helps when spare slots exist to run copies; with every
    slot busy in every wave the copies queue and the benefit vanishes, so
    the cap is scaled by the spare-capacity fraction of the final wave.
    """
    durations = np.asarray(durations, dtype=float)
    if not conf.speculation or durations.size < 2:
        return durations, 0.0
    median = float(np.median(durations))
    if median <= 0.0:
        return durations, 0.0
    threshold = conf.speculation_multiplier * median
    # Detection happens once `quantile` of tasks finished — roughly after
    # `median` time — so a relaunched copy finishes near detection + median.
    cap = max(threshold, 2.0 * median)
    slow = durations > cap
    if not np.any(slow):
        return durations, 0.0
    n = durations.size
    last_wave = n % slots if slots < n else 0
    spare_frac = 1.0 if last_wave == 0 and slots >= n else \
        (slots - last_wave) / slots if last_wave else 0.3
    spare_frac = max(min(spare_frac, 1.0), 0.0)
    capped = durations.copy()
    capped[slow] = cap + (durations[slow] - cap) * (1.0 - spare_frac)
    extra_core_s = float(np.sum(np.minimum(durations[slow], cap)) * 0.5)
    return capped, extra_core_s


def stage_makespan(durations: np.ndarray, conf: SparkConf, slots: int,
                   dispatch_s: float = 0.0, *, exact: bool = False) -> tuple[float, int]:
    """Makespan of a stage, with speculation applied; returns (seconds, waves)."""
    durations, _extra = apply_speculation(durations, conf, slots)
    waves = -(-durations.size // max(min(slots, durations.size), 1)) \
        if durations.size else 0
    fn = list_schedule_exact if exact else list_schedule_fast
    return fn(durations, slots, dispatch_s), waves
