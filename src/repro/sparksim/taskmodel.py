"""Per-task cost components.

Pure functions mapping (stage, configuration, placement, memory state) to
the time components of one task: input read, deserialization, compute (with
GC slowdown), shuffle write, spill.  The scheduler turns the resulting
per-task durations into a stage makespan.

All helper rates are in MB and seconds; ``logical`` MB means serialized
on-disk-baseline bytes (see :mod:`repro.sparksim.stage`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cluster import NodeSpec
from .conf import SparkConf
from .disk import (effective_disk_bw, effective_disk_bw_batch,
                   shuffle_write_bw, shuffle_write_bw_batch)
from .network import remote_read_seconds, remote_read_seconds_batch
from .serialization import CodecModel, SerializerModel

__all__ = ["TaskCosts", "MemoryState", "locality_fraction",
           "hdfs_read_seconds", "shuffle_write_seconds", "spill_seconds",
           "locality_fraction_batch", "hdfs_read_seconds_batch",
           "shuffle_write_seconds_batch", "spill_seconds_batch",
           "SORT_CPU_S_PER_MB", "MEM_READ_MBPS"]

# CPU cost of sort-merging one MB of shuffle data (reference core).
SORT_CPU_S_PER_MB = 0.004
# Effective bandwidth of reading deserialized cached data (memory speed,
# including iterator overhead).
MEM_READ_MBPS = 6000.0


@dataclass(frozen=True)
class MemoryState:
    """Executor memory situation while a stage runs (all MB, per task)."""

    exec_avail_per_task_mb: float   # execution memory one task may claim
    working_set_mb: float           # the task's deserialized working set
    unroll_mb: float                # memory that must materialize at once

    @property
    def oom(self) -> bool:
        """Unspillable demand exceeds what the task can ever get."""
        return self.unroll_mb > self.exec_avail_per_task_mb

    @property
    def spill_mb(self) -> float:
        """Working-set overflow that must round-trip through disk."""
        return max(self.working_set_mb - self.exec_avail_per_task_mb, 0.0)

    @property
    def spill_passes(self) -> float:
        """Extra merge passes caused by deep overflow (1 = single spill)."""
        if self.spill_mb <= 0.0 or self.exec_avail_per_task_mb <= 0.0:
            return 1.0
        return min(1.0 + self.spill_mb / self.exec_avail_per_task_mb, 3.0)


@dataclass(frozen=True)
class TaskCosts:
    """Seconds per component of one (average) task."""

    read_s: float = 0.0
    compute_s: float = 0.0
    shuffle_write_s: float = 0.0
    spill_s: float = 0.0
    output_write_s: float = 0.0

    @property
    def total_s(self) -> float:
        return (self.read_s + self.compute_s + self.shuffle_write_s
                + self.spill_s + self.output_write_s)


def locality_fraction(conf: SparkConf, nodes_used: int, n_workers: int,
                      replication: int) -> tuple[float, float]:
    """(fraction of data-local input tasks, scheduling delay per non-local task).

    With executors on ``nodes_used`` of ``n_workers`` nodes and blocks
    replicated ``replication`` ways, the chance that some replica of a
    block lives on an executor node rises quickly with coverage.  Waiting
    (``spark.locality.wait``) converts more tasks to local at the price of
    idle slot time.
    """
    coverage = min(nodes_used * replication / n_workers, 1.0) \
        if n_workers > 0 else 1.0
    base_local = min(0.98, coverage)
    wait = conf.locality_wait_s
    # Waiting up to `wait` lets the scheduler place most remaining tasks
    # locally; diminishing returns after ~3s.
    recovered = (1.0 - base_local) * (wait / (wait + 2.0))
    local = base_local + recovered
    delay = wait * (1.0 - local) * 0.5
    return local, delay


def hdfs_read_seconds(per_task_mb: float, node: NodeSpec,
                      concurrent_per_node: int, local_fraction: float,
                      deser_mbps: float) -> float:
    """Time to read and deserialize one input partition.

    Local tasks stream from the node's disk (shared with concurrent
    tasks); non-local ones additionally cross the network.
    """
    disk = per_task_mb / effective_disk_bw(node, max(concurrent_per_node, 1))
    remote = remote_read_seconds(per_task_mb, node)
    io = local_fraction * disk + (1.0 - local_fraction) * (disk + remote) * 0.9
    deser = per_task_mb / deser_mbps
    return io + deser


def shuffle_write_seconds(logical_out_mb: float, conf: SparkConf,
                          node: NodeSpec, concurrent_per_node: int,
                          ser: SerializerModel, codec: CodecModel,
                          reduce_partitions: int, map_side_agg: bool,
                          gc_factor: float) -> tuple[float, float]:
    """(seconds, wire MB written) for one task's shuffle write.

    The write path: sort (unless the bypass-merge path applies) →
    serialize → optionally compress → buffered disk write.
    """
    if logical_out_mb <= 0.0:
        return 0.0, 0.0
    bypass = (not map_side_agg
              and reduce_partitions <= conf.shuffle_sort_bypass_threshold)
    sort_cpu = logical_out_mb * SORT_CPU_S_PER_MB * (0.25 if bypass else 1.0)
    # Bypass writes one file per reduce partition; with very many reducers
    # the tiny-file overhead eats the saving.
    if bypass and reduce_partitions > 500:
        sort_cpu += logical_out_mb * SORT_CPU_S_PER_MB * 0.5
    ser_cpu = logical_out_mb / ser.ser_mbps
    wire_mb = logical_out_mb * ser.size_ratio
    comp_cpu = 0.0
    if conf.shuffle_compress:
        comp_cpu = wire_mb / codec.comp_mbps
        wire_mb *= codec.ratio
    bw = shuffle_write_bw(node, max(concurrent_per_node, 1),
                          conf.shuffle_file_buffer_kb)
    disk_s = wire_mb / bw
    cpu_s = (sort_cpu + ser_cpu + comp_cpu) * gc_factor / node.cpu_speed
    return cpu_s + disk_s, wire_mb


def spill_seconds(state: MemoryState, conf: SparkConf, node: NodeSpec,
                  concurrent_per_node: int, ser: SerializerModel,
                  codec: CodecModel) -> tuple[float, float]:
    """(seconds, spilled MB) for one task's execution-memory overflow."""
    if state.spill_mb <= 0.0:
        return 0.0, 0.0
    logical = state.spill_mb / 2.5  # working-set MB back to logical MB
    bytes_mb = logical * ser.size_ratio
    cpu = logical / ser.ser_mbps + logical / ser.deser_mbps
    if conf.shuffle_spill_compress:
        cpu += bytes_mb / codec.comp_mbps + bytes_mb * codec.ratio / codec.decomp_mbps
        bytes_mb *= codec.ratio
    disk_bw = effective_disk_bw(node, max(concurrent_per_node, 1))
    io = 2.0 * bytes_mb / disk_bw  # write then read back
    passes = state.spill_passes
    return (cpu + io) * passes / node.cpu_speed, state.spill_mb * passes


# -- vectorized batch counterparts ------------------------------------------------
#
# Each *_batch function mirrors its scalar twin element-wise over aligned
# per-config arrays, reproducing the scalar operation order exactly so the
# results are bit-identical (tests/sparksim/test_batch_parity.py).  Scalar
# early returns become zero masks applied after the uniform arithmetic;
# conditional branches become masked assignments, never re-derived algebra.


def locality_fraction_batch(locality_wait_s: np.ndarray,
                            nodes_used: np.ndarray, n_workers: int,
                            replication: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`locality_fraction` over per-config arrays."""
    wait = np.asarray(locality_wait_s, dtype=float)
    nodes = np.asarray(nodes_used)
    if n_workers > 0:
        coverage = np.minimum(nodes * replication / n_workers, 1.0)
    else:
        coverage = np.ones_like(wait)
    base_local = np.minimum(0.98, coverage)
    recovered = (1.0 - base_local) * (wait / (wait + 2.0))
    local = base_local + recovered
    delay = wait * (1.0 - local) * 0.5
    return local, delay


def hdfs_read_seconds_batch(per_task_mb: np.ndarray, node: NodeSpec,
                            concurrent_per_node: np.ndarray,
                            local_fraction: np.ndarray,
                            deser_mbps: np.ndarray) -> np.ndarray:
    """Vectorized :func:`hdfs_read_seconds` over per-config arrays."""
    per_task = np.asarray(per_task_mb, dtype=float)
    disk = per_task / effective_disk_bw_batch(
        node, np.maximum(concurrent_per_node, 1))
    remote = remote_read_seconds_batch(per_task, node)
    io = local_fraction * disk + (1.0 - local_fraction) * (disk + remote) * 0.9
    deser = per_task / deser_mbps
    return io + deser


def shuffle_write_seconds_batch(logical_out_mb: np.ndarray, node: NodeSpec,
                                concurrent_per_node: np.ndarray,
                                ser_mbps: np.ndarray, size_ratio: np.ndarray,
                                comp_mbps: np.ndarray,
                                codec_ratio: np.ndarray,
                                shuffle_compress: np.ndarray,
                                buffer_kb: np.ndarray,
                                bypass_threshold: np.ndarray,
                                reduce_partitions: np.ndarray,
                                map_side_agg: bool,
                                gc_factor: np.ndarray
                                ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`shuffle_write_seconds`.

    Serializer/codec models are passed as pre-gathered field arrays; the
    stage-level ``map_side_agg`` flag stays scalar (uniform across the
    batch).
    """
    logical = np.asarray(logical_out_mb, dtype=float)
    if map_side_agg:
        bypass = np.zeros(logical.shape, dtype=bool)
    else:
        bypass = reduce_partitions <= bypass_threshold
    sort_cpu = logical * SORT_CPU_S_PER_MB * np.where(bypass, 0.25, 1.0)
    tiny = bypass & (reduce_partitions > 500)
    sort_cpu[tiny] += logical[tiny] * SORT_CPU_S_PER_MB * 0.5
    ser_cpu = logical / ser_mbps
    wire_mb = logical * size_ratio
    comp_cpu = np.zeros_like(logical)
    m = np.asarray(shuffle_compress, dtype=bool)
    comp_cpu[m] = wire_mb[m] / comp_mbps[m]
    wire_mb[m] *= codec_ratio[m]
    bw = shuffle_write_bw_batch(node, np.maximum(concurrent_per_node, 1),
                                buffer_kb)
    disk_s = wire_mb / bw
    cpu_s = (sort_cpu + ser_cpu + comp_cpu) * gc_factor / node.cpu_speed
    seconds = cpu_s + disk_s
    zero = logical <= 0.0
    seconds[zero] = 0.0
    wire_mb[zero] = 0.0
    return seconds, wire_mb


def spill_seconds_batch(spill_mb: np.ndarray, exec_avail_per_task_mb: np.ndarray,
                        node: NodeSpec, concurrent_per_node: np.ndarray,
                        ser_mbps: np.ndarray, deser_mbps: np.ndarray,
                        size_ratio: np.ndarray, comp_mbps: np.ndarray,
                        decomp_mbps: np.ndarray, codec_ratio: np.ndarray,
                        spill_compress: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`spill_seconds` (plus the spill-pass arithmetic of
    :attr:`MemoryState.spill_passes`) over per-config arrays."""
    spill = np.asarray(spill_mb, dtype=float)
    avail = np.asarray(exec_avail_per_task_mb, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        raw_passes = np.minimum(1.0 + spill / avail, 3.0)
    passes = np.where((spill <= 0.0) | (avail <= 0.0), 1.0, raw_passes)
    logical = spill / 2.5
    bytes_mb = logical * size_ratio
    cpu = logical / ser_mbps + logical / deser_mbps
    m = np.asarray(spill_compress, dtype=bool)
    cpu[m] += bytes_mb[m] / comp_mbps[m] \
        + bytes_mb[m] * codec_ratio[m] / decomp_mbps[m]
    bytes_mb[m] *= codec_ratio[m]
    disk_bw = effective_disk_bw_batch(node, np.maximum(concurrent_per_node, 1))
    io = 2.0 * bytes_mb / disk_bw
    seconds = (cpu + io) * passes / node.cpu_speed
    spilled = spill * passes
    zero = spill <= 0.0
    seconds[zero] = 0.0
    spilled[zero] = 0.0
    return seconds, spilled
