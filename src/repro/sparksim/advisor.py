"""Static configuration sanity checks ("why is this config imbalanced?").

The tuners learn these pathologies from black-box evaluations; the advisor
makes them legible to humans.  Each check returns a warning describing a
structural problem — resource stranding, starvation, memory-pressure or
failure risks — before any simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import ClusterSpec, paper_cluster
from .conf import SparkConf
from .memory import RESERVED_MB, executor_memory
from .placement import place_executors

__all__ = ["ConfigWarning", "advise"]


@dataclass(frozen=True)
class ConfigWarning:
    """One detected configuration problem."""

    code: str       # short machine-readable id, e.g. "no-placement"
    severity: str   # "fatal" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


def advise(conf: SparkConf | dict, cluster: ClusterSpec | None = None
           ) -> list[ConfigWarning]:
    """Run all static checks; returns warnings sorted fatal-first."""
    if not isinstance(conf, SparkConf):
        conf = SparkConf(conf)
    cluster = cluster or paper_cluster()
    out: list[ConfigWarning] = []
    node = cluster.node

    placement = place_executors(conf, cluster)
    need_mb = conf.executor_memory_mb + conf.executor_memory_overhead_mb
    if placement.executors == 0:
        if conf.executor_cores > node.cores:
            out.append(ConfigWarning(
                "no-placement", "fatal",
                f"executors request {conf.executor_cores} cores but nodes "
                f"have {node.cores}"))
        else:
            out.append(ConfigWarning(
                "no-placement", "fatal",
                f"executors need {need_mb} MB but nodes have "
                f"{node.memory_mb} MB"))
        return out
    if placement.task_slots == 0:
        out.append(ConfigWarning(
            "no-task-slots", "fatal",
            f"spark.task.cpus={conf.task_cpus} exceeds executor cores "
            f"{conf.executor_cores}; no task can ever run"))
        return out

    # ---- resource stranding -------------------------------------------------
    per_node = placement.executors_per_node
    used_cores = per_node * conf.executor_cores
    used_mem = per_node * need_mb
    if used_cores <= node.cores // 2 and used_mem > node.memory_mb * 0.75:
        out.append(ConfigWarning(
            "cores-stranded", "warning",
            f"memory-bound packing: {used_cores}/{node.cores} cores busy "
            f"while {used_mem / 1024:.0f}/{node.memory_mb / 1024:.0f} GB "
            "committed — shrink executor memory or add cores per executor"))
    if used_mem <= node.memory_mb // 2 and used_cores > node.cores * 0.75:
        total_heap_gb = conf.executor_memory_mb / 1024
        if total_heap_gb < 4:
            out.append(ConfigWarning(
                "memory-stranded", "warning",
                f"core-bound packing with small heaps "
                f"({total_heap_gb:.1f} GB/executor): most node memory "
                "stays idle while tasks risk spilling"))

    if placement.executors < conf.executor_instances:
        out.append(ConfigWarning(
            "fewer-executors", "warning",
            f"requested {conf.executor_instances} executors but only "
            f"{placement.executors} fit the cluster"))

    # ---- memory pressure ------------------------------------------------------
    mem = executor_memory(conf)
    per_task = mem.execution_available_mb(0.0) / max(
        conf.executor_cores // conf.task_cpus, 1)
    if per_task < 192:
        out.append(ConfigWarning(
            "tiny-task-memory", "warning",
            f"~{per_task:.0f} MB of execution memory per concurrent task; "
            "typical partitions will spill or OOM"))
    if conf.executor_memory_mb < RESERVED_MB + 1024:
        out.append(ConfigWarning(
            "heap-mostly-reserved", "warning",
            f"heap {conf.executor_memory_mb} MB leaves little room beyond "
            f"the {RESERVED_MB:.0f} MB JVM-reserved region; expect GC "
            "thrash and unroll OOMs on real partitions"))

    # ---- parallelism ------------------------------------------------------------
    if conf.default_parallelism < placement.task_slots:
        out.append(ConfigWarning(
            "under-parallelized", "warning",
            f"spark.default.parallelism={conf.default_parallelism} below "
            f"the {placement.task_slots} available task slots; shuffle "
            "stages leave cores idle"))
    if conf.default_parallelism > placement.task_slots * 20:
        out.append(ConfigWarning(
            "over-parallelized", "warning",
            f"{conf.default_parallelism} shuffle partitions on "
            f"{placement.task_slots} slots: scheduling and tiny-file "
            "overhead will dominate"))

    # ---- dependent parameters -----------------------------------------------------
    if conf.offheap_enabled and conf.offheap_size_mb + need_mb > node.memory_mb:
        out.append(ConfigWarning(
            "offheap-overcommit", "warning",
            "off-heap size plus executor memory exceeds node memory"))
    if conf.serializer == "kryo" and conf.kryo_buffer_max_mb < 16:
        out.append(ConfigWarning(
            "small-kryo-buffer", "warning",
            f"kryoserializer.buffer.max={conf.kryo_buffer_max_mb} MB risks "
            "buffer-overflow failures on large records"))
    if conf.speculation and conf.speculation_multiplier < 1.2:
        out.append(ConfigWarning(
            "aggressive-speculation", "warning",
            "speculation multiplier < 1.2 duplicates a large share of "
            "healthy tasks"))

    out.sort(key=lambda w: (w.severity != "fatal", w.code))
    return out
