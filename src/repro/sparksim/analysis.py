"""Bottleneck analysis over simulated execution results.

A tuned configuration is only half the story; users also want to know
*why* a configuration is slow.  :class:`TraceAnalyzer` attributes each
stage's duration to resource components (input IO, compute, shuffle write,
shuffle fetch, spill, GC amplification, scheduling) and aggregates an
application-level bottleneck profile — the simulator-world analogue of
digging through the Spark UI.
"""

from __future__ import annotations

from dataclasses import dataclass

from .result import ExecutionResult

__all__ = ["BottleneckProfile", "TraceAnalyzer"]

_COMPONENTS = ("read", "compute", "shuffle_write", "shuffle_fetch", "spill",
               "scheduling")


@dataclass(frozen=True)
class BottleneckProfile:
    """Fraction of attributable time per resource component.

    Fractions sum to 1 over the attributable components; ``gc_overhead``
    is reported separately as the mean multiplicative GC factor, and
    ``cache_miss_fraction`` as the worst cache-read miss rate seen.
    """

    fractions: dict[str, float]
    gc_overhead: float
    cache_miss_fraction: float
    total_s: float

    @property
    def dominant(self) -> str:
        """The component with the largest share."""
        return max(self.fractions, key=self.fractions.get)

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        parts = ", ".join(f"{k} {v:.0%}" for k, v in
                          sorted(self.fractions.items(),
                                 key=lambda kv: -kv[1]) if v >= 0.01)
        extra = []
        if self.gc_overhead > 1.15:
            extra.append(f"GC inflates CPU time {self.gc_overhead:.2f}x")
        if self.cache_miss_fraction > 0.05:
            extra.append(f"cache misses reach "
                         f"{self.cache_miss_fraction:.0%} (evictions)")
        tail = ("; " + "; ".join(extra)) if extra else ""
        return (f"dominant bottleneck: {self.dominant} "
                f"({self.fractions[self.dominant]:.0%} of attributable "
                f"time). Breakdown: {parts}{tail}.")


class TraceAnalyzer:
    """Attribute simulated execution time to resource components."""

    def analyze(self, result: ExecutionResult) -> BottleneckProfile:
        """Build the application-level bottleneck profile.

        Per-task component times are weighted by each stage's task count;
        the shuffle-fetch floor is charged at the stage level.
        """
        if not result.stages:
            raise ValueError("result has no stage metrics to analyze")
        totals = {k: 0.0 for k in _COMPONENTS}
        gc_weighted = 0.0
        gc_weight = 0.0
        worst_miss = 0.0
        for s in result.stages:
            n = max(s.tasks, 1)
            totals["read"] += s.read_s * n
            totals["compute"] += s.compute_s * n
            totals["shuffle_write"] += s.shuffle_write_s * n
            totals["spill"] += s.spill_s * n
            totals["shuffle_fetch"] += s.shuffle_fetch_s
            totals["scheduling"] += s.sched_overhead_s
            gc_weighted += s.gc_factor * s.compute_s * n
            gc_weight += s.compute_s * n
            worst_miss = max(worst_miss, 1.0 - s.cache_hit_fraction)
        attributable = sum(totals.values())
        if attributable <= 0.0:
            fractions = {k: 0.0 for k in _COMPONENTS}
            fractions["compute"] = 1.0
        else:
            fractions = {k: v / attributable for k, v in totals.items()}
        gc = gc_weighted / gc_weight if gc_weight > 0 else 1.0
        return BottleneckProfile(
            fractions=fractions,
            gc_overhead=float(gc),
            cache_miss_fraction=float(worst_miss),
            total_s=float(result.duration_s),
        )

    def compare(self, before: ExecutionResult,
                after: ExecutionResult) -> str:
        """Narrate what changed between two runs of the same workload."""
        pb = self.analyze(before)
        pa = self.analyze(after)
        speedup = before.duration_s / after.duration_s \
            if after.duration_s > 0 else float("inf")
        moved = []
        for k in _COMPONENTS:
            delta = pa.fractions[k] - pb.fractions[k]
            if abs(delta) >= 0.05:
                arrow = "up" if delta > 0 else "down"
                moved.append(f"{k} {arrow} {abs(delta):.0%}")
        detail = "; ".join(moved) if moved else "similar shape"
        return (f"{speedup:.2f}x speedup ({before.duration_s:.0f}s -> "
                f"{after.duration_s:.0f}s); bottleneck "
                f"{pb.dominant} -> {pa.dominant}; {detail}.")
