"""Hardware model of the cluster the simulation runs on.

Defaults mirror the paper's testbed (§5.1): one master plus five workers,
each with two 16-core 2.1 GHz Xeon Gold 6130 CPUs (32 cores), 192 GB of
memory, a 7200-RPM 2 TB hard disk, connected by 10-Gigabit Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NodeSpec", "ClusterSpec", "paper_cluster"]


@dataclass(frozen=True)
class NodeSpec:
    """One worker node's hardware."""

    cores: int = 32
    memory_mb: int = 192 * 1024
    # Sequential bandwidth of a 7200-RPM SATA disk and its seek penalty.
    disk_bw_mbps: float = 140.0
    disk_seek_ms: float = 8.0
    # 10 GbE NIC, usable payload bandwidth.
    net_bw_mbps: float = 1150.0
    net_rtt_ms: float = 0.25
    # Relative CPU speed (1.0 = the paper's 2.1 GHz Xeon Gold 6130).
    cpu_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.memory_mb <= 0:
            raise ValueError("node must have positive cores and memory")
        if min(self.disk_bw_mbps, self.net_bw_mbps, self.cpu_speed) <= 0:
            raise ValueError("bandwidths and cpu_speed must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of worker nodes plus a master/driver node."""

    n_workers: int = 5
    node: NodeSpec = field(default_factory=NodeSpec)
    # HDFS-style replicated storage: input reads hit the local disk when the
    # task is data-local, otherwise they stream over the network.
    hdfs_replication: int = 3

    def __post_init__(self) -> None:
        if self.n_workers <= 0:
            raise ValueError("cluster must have at least one worker")
        if self.hdfs_replication < 1:
            raise ValueError("hdfs_replication must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.n_workers * self.node.cores

    @property
    def total_memory_mb(self) -> int:
        return self.n_workers * self.node.memory_mb


def paper_cluster() -> ClusterSpec:
    """The six-node testbed from §5.1 (five workers, one master)."""
    return ClusterSpec()
