"""Executor placement: which executors actually launch on the cluster.

Spark standalone launches as many of the requested executors as the worker
nodes can hold, packing by both cores and memory (heap + overhead).  A
configuration asking for more than fits simply gets fewer executors — a key
source of "imbalanced configuration" behaviour: huge executors strand cores,
tiny ones strand memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import ClusterSpec
from .conf import SparkConf

__all__ = ["Placement", "place_executors"]


@dataclass(frozen=True)
class Placement:
    """Result of executor placement.

    Attributes
    ----------
    executors:
        Number of executors actually launched (≤ requested).
    executors_per_node:
        Executors packed onto each of the busiest nodes.
    nodes_used:
        Worker nodes hosting at least one executor.
    task_slots:
        Cluster-wide concurrent task capacity,
        ``executors * (executor_cores // task_cpus)``.
    """

    executors: int
    executors_per_node: int
    nodes_used: int
    task_slots: int

    @property
    def viable(self) -> bool:
        """False when no executor fits or no task can run."""
        return self.executors > 0 and self.task_slots > 0


def place_executors(conf: SparkConf, cluster: ClusterSpec) -> Placement:
    """Pack requested executors onto worker nodes.

    Each executor consumes ``executor.cores`` cores and
    ``executor.memory + memoryOverhead`` MB.  Executors never span nodes.
    """
    node = cluster.node
    need_mem = conf.executor_memory_mb + conf.executor_memory_overhead_mb
    per_node_by_cores = node.cores // conf.executor_cores
    per_node_by_mem = node.memory_mb // need_mem
    per_node = int(min(per_node_by_cores, per_node_by_mem))
    if per_node == 0:
        return Placement(0, 0, 0, 0)

    capacity = per_node * cluster.n_workers
    launched = min(conf.executor_instances, capacity)
    # Round-robin placement: executors spread across nodes evenly.
    nodes_used = min(cluster.n_workers, launched)
    busiest = -(-launched // cluster.n_workers)  # ceil division
    slots_per_exec = conf.executor_cores // conf.task_cpus
    return Placement(
        executors=launched,
        executors_per_node=busiest,
        nodes_used=nodes_used,
        task_slots=launched * slots_per_exec,
    )
