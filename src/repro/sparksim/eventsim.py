"""Task-level event-driven stage execution.

Builds on the :mod:`repro.sparksim.engine` DES core to execute one stage's
tasks as explicit events: the driver dispatches tasks (serially, at the
dispatch cost), executors' slots pick them up, speculative copies launch
when stragglers are detected, and the stage completes when its last task
(or winning copy) finishes.

This is the *reference semantics* for stage scheduling.  The production
path (:func:`repro.sparksim.scheduler.list_schedule_fast`) is a vectorized
approximation validated against this model in the test suite; the
simulator switches to this backend with ``SparkSimulator(exact_scheduler=
True)`` via :func:`event_driven_makespan`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .conf import SparkConf
from .engine import Simulation

__all__ = ["EventDrivenStage", "event_driven_makespan"]


@dataclass
class _TaskState:
    """Book-keeping for one task attempt set."""

    duration: float
    started_at: float | None = None
    finished: bool = False
    speculative_started: bool = False


class EventDrivenStage:
    """Execute one stage's task set on a slot pool, event by event.

    Parameters
    ----------
    durations:
        Per-task base durations (already noise-inflated).
    slots:
        Concurrent task slots.
    dispatch_s:
        Serial driver dispatch cost per task launch.
    conf:
        Supplies the speculation policy (on/off, multiplier, quantile).
    speculative_copy_factor:
        A speculative copy's duration relative to the stage median
        (detection happens late, so copies behave like typical tasks).
    """

    def __init__(self, durations: np.ndarray, slots: int,
                 dispatch_s: float = 0.0, conf: SparkConf | None = None,
                 speculative_copy_factor: float = 1.0):
        durations = np.asarray(durations, dtype=float)
        if durations.ndim != 1:
            raise ValueError("durations must be 1-D")
        if np.any(durations < 0):
            raise ValueError("durations must be non-negative")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.durations = durations
        self.slots = slots
        self.dispatch_s = dispatch_s
        self.conf = conf or SparkConf()
        self.copy_factor = speculative_copy_factor
        # Filled by run():
        self.makespan = 0.0
        self.speculative_launches = 0
        self.wasted_core_s = 0.0

    # -- event handlers -----------------------------------------------------------
    def run(self) -> float:
        """Execute the stage; returns the makespan in seconds."""
        n = len(self.durations)
        if n == 0:
            return 0.0
        sim = Simulation()
        tasks = [_TaskState(float(d)) for d in self.durations]
        pending = list(range(n))       # not yet dispatched, FIFO
        free_slots = [self.slots]      # boxed int for handler mutation
        finished_count = [0]
        median = float(np.median(self.durations))
        spec_on = self.conf.speculation and n >= 2
        threshold = self.conf.speculation_multiplier * median
        quantile_count = int(np.ceil(self.conf.speculation_quantile * n))

        def try_dispatch(sim: Simulation) -> None:
            while free_slots[0] > 0 and pending:
                tid = pending.pop(0)
                st = tasks[tid]
                free_slots[0] -= 1
                st.started_at = sim.now
                launch_delay = self.dispatch_s
                sim.schedule(launch_delay + st.duration, "finish",
                             (tid, False))
                if spec_on:
                    # Check this task for speculation once the threshold
                    # would be exceeded.
                    sim.schedule(launch_delay + threshold, "spec-check", tid)

        def on_finish(sim: Simulation, ev) -> None:
            tid, is_copy = ev.payload
            st = tasks[tid]
            free_slots[0] += 1
            if st.finished:
                # The other attempt already won; this work was wasted.
                self.wasted_core_s += st.duration if not is_copy else \
                    median * self.copy_factor
                try_dispatch(sim)
                return
            st.finished = True
            finished_count[0] += 1
            if finished_count[0] == n:
                self.makespan = sim.now
                sim.stop()
                return
            try_dispatch(sim)

        def on_spec_check(sim: Simulation, ev) -> None:
            tid = ev.payload
            st = tasks[tid]
            if (st.finished or st.speculative_started
                    or finished_count[0] < quantile_count
                    or free_slots[0] <= 0):
                return
            st.speculative_started = True
            self.speculative_launches += 1
            free_slots[0] -= 1
            sim.schedule(median * self.copy_factor, "finish", (tid, True))

        sim.on("dispatch", lambda s, e: try_dispatch(s))
        sim.on("finish", on_finish)
        sim.on("spec-check", on_spec_check)
        sim.schedule(0.0, "dispatch")
        sim.run()
        if not all(t.finished for t in tasks):  # pragma: no cover - safety
            raise RuntimeError("stage ended with unfinished tasks")
        return self.makespan


def event_driven_makespan(durations: np.ndarray, conf: SparkConf,
                          slots: int, dispatch_s: float = 0.0
                          ) -> tuple[float, int]:
    """Drop-in event-driven replacement for ``stage_makespan``.

    Returns (makespan seconds, wave count) like the vectorized path.
    """
    stage = EventDrivenStage(durations, slots, dispatch_s, conf)
    makespan = stage.run()
    n = len(np.atleast_1d(durations))
    waves = -(-n // max(min(slots, n), 1)) if n else 0
    return makespan, waves
