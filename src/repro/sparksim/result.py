"""Execution results and per-stage metrics returned by the simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["RunStatus", "StageMetrics", "ExecutionResult"]


class RunStatus(enum.Enum):
    """Terminal state of a simulated application run."""

    SUCCESS = "success"
    OOM = "oom"                      # executor OutOfMemory → job aborted
    RUNTIME_ERROR = "runtime_error"  # e.g. Kryo buffer overflow, RPC limit
    INVALID = "invalid"              # no executor fits the cluster at all
    TIMEOUT = "timeout"              # killed by the tuner's execution cap


@dataclass(frozen=True)
class StageMetrics:
    """Per-stage breakdown (seconds unless noted)."""

    name: str
    tasks: int
    waves: int
    duration_s: float
    read_s: float = 0.0
    compute_s: float = 0.0
    shuffle_write_s: float = 0.0
    shuffle_fetch_s: float = 0.0
    spill_s: float = 0.0
    gc_factor: float = 1.0
    sched_overhead_s: float = 0.0
    spilled_mb: float = 0.0
    cache_hit_fraction: float = 1.0


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one simulated application execution.

    ``duration_s`` is the wall-clock the tuner observes.  For failed runs it
    is the time elapsed until the failure surfaced (tuners count it toward
    search cost, as a real cluster would have spent it).
    """

    status: RunStatus
    duration_s: float
    stages: tuple[StageMetrics, ...] = field(default_factory=tuple)
    failure_reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.SUCCESS

    def stage(self, name: str) -> StageMetrics:
        """Look up a stage's metrics by name (first match)."""
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)
