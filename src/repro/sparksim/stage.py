"""Stage-level workload description consumed by the simulator.

A workload compiles (per configuration-independent dataset descriptor) into
an ordered list of :class:`StageSpec`.  Sizes are *logical* MB — the bytes
of the serialized-on-disk representation; in-memory (deserialized) sizes
are ``logical * expansion``, and wire/cache sizes are scaled by serializer
and codec ratios at simulation time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StageSpec", "CachedRDD", "InputSource", "CacheLevel"]


class InputSource:
    """Where a stage's input partitions come from."""

    HDFS = "hdfs"        # read from the distributed filesystem
    SHUFFLE = "shuffle"  # fetched from the previous stage's map outputs
    CACHE = "cache"      # read from a cached RDD (falls back to recompute)


class CacheLevel:
    """Spark storage levels the simulator distinguishes."""

    MEMORY = "memory"          # MEMORY_ONLY: deserialized objects
    MEMORY_SER = "memory_ser"  # MEMORY_ONLY_SER: serialized (+ optional codec)


@dataclass(frozen=True)
class CachedRDD:
    """A cached dataset tracked across stages.

    ``rebuild_*`` describe the lineage cost of recomputing an evicted
    partition: re-reading its inputs and re-running the producing
    transformations.
    """

    name: str
    logical_mb: float
    level: str = CacheLevel.MEMORY
    expansion: float = 2.5
    rebuild_io_mb_per_mb: float = 1.0
    rebuild_cpu_s_per_mb: float = 0.005


@dataclass(frozen=True)
class StageSpec:
    """One stage of a Spark job.

    Attributes
    ----------
    name:
        Human-readable label (also used in per-stage metrics).
    input_mb:
        Total logical input bytes across all tasks.
    input_source:
        One of :class:`InputSource`.
    reads_cached:
        Name of the :class:`CachedRDD` read when ``input_source == CACHE``.
    compute_s_per_mb:
        Reference-core CPU seconds per logical MB of input.
    shuffle_write_ratio:
        Logical shuffle output bytes per input byte (0 = no shuffle write).
    cache_output:
        When set, the stage materializes this RDD into the block manager.
    partitions:
        Task count override; ``None`` derives it from the configuration
        (input size / ``maxPartitionBytes`` for HDFS stages,
        ``spark.default.parallelism`` for shuffle/cache stages).
    expansion:
        Deserialized working-set bytes per logical input byte.
    shuffle_agg:
        True when the shuffle write performs map-side aggregation (cannot
        use the sort-bypass path).
    broadcast_mb:
        Broadcast variable shipped to every executor before the stage.
    driver_compute_s:
        Serial driver-side work attached to the stage (model updates,
        barriers); it parallelizes with nothing, bounding the achievable
        speedup of driver-bound applications.
    output_mb:
        Logical bytes written to HDFS at stage end (e.g. TeraSort output).
    driver_collect_mb:
        Result bytes collected back to the driver (e.g. reduced centroids).
    largest_record_mb:
        Size of the largest single record (Kryo buffer ceiling check).
    unroll_fraction:
        Fraction of the working set that must be resident at once (cannot
        spill).  Stages that cache deserialized output override this with
        the full partition (Spark must materialize the block); sort-heavy
        stages use a higher value than the 0.35 default.
    """

    name: str
    input_mb: float
    input_source: str = InputSource.HDFS
    reads_cached: str | None = None
    compute_s_per_mb: float = 0.01
    shuffle_write_ratio: float = 0.0
    cache_output: CachedRDD | None = None
    partitions: int | None = None
    expansion: float = 2.5
    shuffle_agg: bool = False
    broadcast_mb: float = 0.0
    driver_compute_s: float = 0.0
    output_mb: float = 0.0
    driver_collect_mb: float = 0.0
    largest_record_mb: float = 0.5
    unroll_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.input_mb < 0:
            raise ValueError(f"stage {self.name}: input_mb must be >= 0")
        if self.input_source not in (InputSource.HDFS, InputSource.SHUFFLE,
                                     InputSource.CACHE):
            raise ValueError(f"stage {self.name}: bad input_source "
                             f"{self.input_source!r}")
        if self.input_source == InputSource.CACHE and not self.reads_cached:
            raise ValueError(f"stage {self.name}: CACHE input needs reads_cached")
        if self.shuffle_write_ratio < 0:
            raise ValueError(f"stage {self.name}: negative shuffle_write_ratio")
        if self.expansion <= 0:
            raise ValueError(f"stage {self.name}: expansion must be positive")
        if not 0.0 < self.unroll_fraction <= 1.0:
            raise ValueError(f"stage {self.name}: unroll_fraction must be "
                             "in (0, 1]")
