"""A small discrete-event simulation core.

General-purpose: an event queue ordered by (time, sequence) driving typed
events through handler callbacks.  :mod:`repro.sparksim.eventsim` builds a
task-level Spark execution model on top of it; tests use it to validate
the vectorized wave scheduler against true event-driven semantics.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue", "Simulation"]


@dataclass(order=True)
class Event:
    """One scheduled occurrence.

    Ordering is by time, then by insertion sequence (FIFO among
    simultaneous events), which keeps runs deterministic.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A min-heap of events with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        if time < 0:
            raise ValueError("event time must be non-negative")
        ev = Event(time=float(time), seq=next(self._counter), kind=kind,
                   payload=payload)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulation:
    """Event loop dispatching to registered handlers.

    Handlers receive ``(sim, event)`` and may push further events; the
    loop runs until the queue drains, a time horizon passes, or a handler
    calls :meth:`stop`.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self._handlers: dict[str, Callable[["Simulation", Event], None]] = {}
        self._stopped = False
        self.processed = 0

    def on(self, kind: str,
           handler: Callable[["Simulation", Event], None]) -> None:
        """Register the handler for an event kind (one per kind)."""
        if kind in self._handlers:
            raise ValueError(f"handler for {kind!r} already registered")
        self._handlers[kind] = handler

    def schedule(self, delay: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event *delay* after the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now + delay, kind, payload)

    def stop(self) -> None:
        """Request loop termination after the current event."""
        self._stopped = True

    def run(self, until: float | None = None) -> float:
        """Process events; returns the final simulation time.

        Parameters
        ----------
        until:
            Optional horizon: events after this time stay unprocessed and
            ``now`` is clamped to the horizon.
        """
        while self.queue and not self._stopped:
            if until is not None and self.queue.peek_time() > until:
                self.now = until
                return self.now
            ev = self.queue.pop()
            if ev.time < self.now - 1e-12:
                raise RuntimeError("event queue went backwards in time")
            self.now = ev.time
            handler = self._handlers.get(ev.kind)
            if handler is None:
                raise KeyError(f"no handler registered for event {ev.kind!r}")
            handler(self, ev)
            self.processed += 1
        return self.now
