"""Disk IO cost model.

A single 7200-RPM disk per node is shared by every task running on that
node.  Sequential streams achieve the nominal bandwidth; many concurrent
streams degrade toward random IO because the head seeks between files.
Buffer sizes matter: small shuffle write buffers flush tiny blocks and pay
a seek per flush.
"""

from __future__ import annotations

import numpy as np

from .cluster import NodeSpec

__all__ = ["effective_disk_bw", "shuffle_write_bw", "read_seconds",
           "effective_disk_bw_batch", "shuffle_write_bw_batch"]


def effective_disk_bw(node: NodeSpec, concurrent_streams: int) -> float:
    """Per-stream disk bandwidth (MB/s) with *concurrent_streams* sharing.

    Aggregate bandwidth also shrinks as streams multiply (seek overhead):
    1 stream = 100%, 8 streams ≈ 70%, 32+ streams ≈ 50% of nominal.
    """
    if concurrent_streams < 1:
        raise ValueError("concurrent_streams must be >= 1")
    agg_eff = 0.5 + 0.5 / (1.0 + (concurrent_streams - 1) / 8.0)
    return node.disk_bw_mbps * agg_eff / concurrent_streams


def shuffle_write_bw(node: NodeSpec, concurrent_streams: int,
                     buffer_kb: int) -> float:
    """Disk bandwidth for shuffle writes given the file buffer size.

    Each buffer flush costs roughly one seek; with a ``b`` KB buffer the
    seek cost per MB is ``(1024 / b) * seek``.  A 32 KB buffer on an 8 ms
    disk wastes ~0.26 s/MB worst case, so the model amortizes with stream
    interleaving (flushes from concurrent tasks batch together).
    """
    if buffer_kb <= 0:
        raise ValueError("buffer_kb must be positive")
    base = effective_disk_bw(node, concurrent_streams)
    flushes_per_mb = 1024.0 / buffer_kb
    # Interleaved flushing amortizes seeks heavily; keep a mild penalty
    # that favours 64-512 KB buffers over 16-32 KB ones.
    seek_s_per_mb = flushes_per_mb * (node.disk_seek_ms / 1000.0) * 0.05
    seconds_per_mb = 1.0 / base + seek_s_per_mb
    return 1.0 / seconds_per_mb


def effective_disk_bw_batch(node: NodeSpec,
                            concurrent_streams: np.ndarray) -> np.ndarray:
    """Vectorized :func:`effective_disk_bw` over a per-config int array.

    Element-wise bit-identical to the scalar function (same expression,
    same operation order).
    """
    c = np.asarray(concurrent_streams)
    if np.any(c < 1):
        raise ValueError("concurrent_streams must be >= 1")
    agg_eff = 0.5 + 0.5 / (1.0 + (c - 1) / 8.0)
    return node.disk_bw_mbps * agg_eff / c


def shuffle_write_bw_batch(node: NodeSpec, concurrent_streams: np.ndarray,
                           buffer_kb: np.ndarray) -> np.ndarray:
    """Vectorized :func:`shuffle_write_bw`, element-wise bit-identical."""
    buf = np.asarray(buffer_kb)
    if np.any(buf <= 0):
        raise ValueError("buffer_kb must be positive")
    base = effective_disk_bw_batch(node, concurrent_streams)
    flushes_per_mb = 1024.0 / buf
    seek_s_per_mb = flushes_per_mb * (node.disk_seek_ms / 1000.0) * 0.05
    seconds_per_mb = 1.0 / base + seek_s_per_mb
    return 1.0 / seconds_per_mb


def read_seconds(mb: float, node: NodeSpec, concurrent_streams: int) -> float:
    """Seconds to read *mb* megabytes from the local disk."""
    if mb < 0:
        raise ValueError("mb must be non-negative")
    if mb == 0:
        return 0.0
    return mb / effective_disk_bw(node, concurrent_streams)
