"""Spark cluster simulator — the reproduction's evaluation substrate.

Replaces the paper's physical 6-node Spark 2.4 testbed with a discrete-event
model of executors, the unified memory manager, shuffle, GC, network and
disk.  See DESIGN.md §2 for the substitution argument.
"""

from .analysis import BottleneckProfile, TraceAnalyzer
from .cluster import ClusterSpec, NodeSpec, paper_cluster
from .conf import SparkConf
from .memory import ExecutorMemory, executor_memory
from .placement import Placement, place_executors
from .result import ExecutionResult, RunStatus, StageMetrics
from .simulator import SparkSimulator
from .stage import CachedRDD, CacheLevel, InputSource, StageSpec

__all__ = [
    "BottleneckProfile",
    "TraceAnalyzer",
    "ClusterSpec",
    "NodeSpec",
    "paper_cluster",
    "SparkConf",
    "ExecutorMemory",
    "executor_memory",
    "Placement",
    "place_executors",
    "ExecutionResult",
    "RunStatus",
    "StageMetrics",
    "SparkSimulator",
    "StageSpec",
    "CachedRDD",
    "CacheLevel",
    "InputSource",
]
