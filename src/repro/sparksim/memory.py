"""Executor memory model: Spark's unified memory manager.

Mirrors Spark 2.x's ``UnifiedMemoryManager``:

* ``usable = heap - reserved`` (300 MB reserved for the system),
* ``unified = usable * spark.memory.fraction`` shared by execution and
  storage,
* storage may borrow all free unified memory, but execution can evict
  cached blocks back down to ``unified * spark.memory.storageFraction``
  (the eviction-immune storage floor),
* optional off-heap memory adds capacity to both regions when enabled.

The model answers two questions per stage: how much cached data fits
without eviction, and how much execution memory each concurrently running
task can claim (which determines spilling and OOM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .conf import SparkConf

__all__ = ["ExecutorMemory", "executor_memory", "execution_available_batch"]

RESERVED_MB = 300.0


@dataclass(frozen=True)
class ExecutorMemory:
    """Derived memory capacities of one executor, in MB."""

    heap_mb: float
    unified_mb: float        # execution + storage pool (on-heap)
    offheap_mb: float        # extra pool when off-heap is enabled
    storage_floor_mb: float  # cached data immune to eviction
    user_mb: float           # heap outside the unified pool (user objects)

    @property
    def total_unified_mb(self) -> float:
        """On-heap unified pool plus any off-heap pool."""
        return self.unified_mb + self.offheap_mb

    @property
    def storage_capacity_mb(self) -> float:
        """Max cached bytes when execution demand is zero."""
        return self.total_unified_mb

    def execution_available_mb(self, cached_mb: float) -> float:
        """Execution memory available given current cache occupancy.

        Execution may evict cached blocks above the storage floor, so only
        the floor (or the actual cached amount, if smaller) is off-limits.
        """
        protected = min(max(cached_mb, 0.0), self.storage_floor_mb)
        return max(self.total_unified_mb - protected, 0.0)

    def cache_fit_mb(self, execution_demand_mb: float) -> float:
        """Cached bytes that survive a stage demanding this much execution
        memory: storage keeps everything execution does not claim, but never
        less than the floor (bounded by total capacity)."""
        free = self.total_unified_mb - min(execution_demand_mb,
                                           self.total_unified_mb)
        return max(free, min(self.storage_floor_mb, self.total_unified_mb))


def execution_available_batch(total_unified_mb: np.ndarray,
                              storage_floor_mb: np.ndarray,
                              cached_mb: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`ExecutorMemory.execution_available_mb`.

    Operates on per-config arrays of the two derived capacities plus the
    current cache occupancy; element-wise bit-identical to the method.
    """
    protected = np.minimum(np.maximum(np.asarray(cached_mb, dtype=float), 0.0),
                           storage_floor_mb)
    return np.maximum(np.asarray(total_unified_mb, dtype=float) - protected,
                      0.0)


def executor_memory(conf: SparkConf) -> ExecutorMemory:
    """Compute one executor's memory regions from its configuration."""
    heap = float(conf.executor_memory_mb)
    usable = max(heap - RESERVED_MB, heap * 0.1)
    unified = usable * conf.memory_fraction
    offheap = float(conf.offheap_size_mb) if conf.offheap_enabled else 0.0
    floor = (unified + offheap) * conf.storage_fraction
    user = max(usable - unified, 0.0)
    return ExecutorMemory(
        heap_mb=heap,
        unified_mb=unified,
        offheap_mb=offheap,
        storage_floor_mb=floor,
        user_mb=user,
    )
