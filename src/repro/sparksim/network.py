"""Network cost model for shuffle fetches and remote reads.

Shuffle reads are all-to-all: every reducer fetches blocks from every
mapper node.  The per-node NIC is the bottleneck; how close a fetch gets to
line rate depends on how much data is kept in flight
(``spark.reducer.maxSizeInFlight``, ``maxReqsInFlight``) and on connection
reuse (``numConnectionsPerPeer``) — small windows leave the pipe idle
between requests.
"""

from __future__ import annotations

import numpy as np

from .cluster import NodeSpec
from .conf import SparkConf

__all__ = ["fetch_efficiency", "shuffle_fetch_seconds", "remote_read_seconds",
           "fetch_efficiency_batch", "shuffle_fetch_seconds_batch",
           "remote_read_seconds_batch"]


def fetch_efficiency(conf: SparkConf, node: NodeSpec) -> float:
    """Fraction of NIC bandwidth a reducer's fetch pipeline achieves.

    Modeled as a bandwidth-delay-product argument: with ``W`` MB in flight
    and round-trip ``rtt``, throughput ≈ min(BW, W / rtt); extra concurrent
    requests and per-peer connections recover part of the gap.
    """
    window_mb = float(conf.reducer_max_size_in_flight_mb)
    reqs = min(conf.reducer_max_reqs_in_flight, 64)
    conns = conf.shuffle_connections_per_peer
    rtt_s = node.net_rtt_ms / 1000.0
    # Effective in-flight data grows sub-linearly with extra requests and
    # connections (they overlap the same window).
    eff_window = window_mb * (1.0 + 0.15 * (min(reqs, 16) - 1) / 15.0) \
        * (1.0 + 0.1 * (conns - 1) / 7.0)
    achievable = eff_window / max(rtt_s, 1e-6)           # MB/s if latency-bound
    eff = min(1.0, achievable / node.net_bw_mbps)
    # Even huge windows leave protocol overhead on the table.
    return max(0.05, min(eff, 0.92))


def shuffle_fetch_seconds(total_mb: float, conf: SparkConf, node: NodeSpec,
                          nodes_used: int) -> float:
    """Seconds for the cluster to move *total_mb* of shuffle data.

    With executors on ``nodes_used`` nodes, a fraction ``1/nodes_used`` of
    the data is node-local; the rest crosses NICs, which operate in
    parallel across nodes.
    """
    if total_mb < 0:
        raise ValueError("total_mb must be non-negative")
    if nodes_used < 1:
        raise ValueError("nodes_used must be >= 1")
    if total_mb == 0.0:
        return 0.0
    remote_fraction = 1.0 - 1.0 / nodes_used
    remote_mb = total_mb * remote_fraction
    if remote_mb == 0.0:
        return 0.0
    per_node_mb = remote_mb / nodes_used
    bw = node.net_bw_mbps * fetch_efficiency(conf, node)
    return per_node_mb / bw


def remote_read_seconds(mb: float, node: NodeSpec) -> float:
    """Seconds to stream *mb* from a remote disk (non-local input read)."""
    if mb < 0:
        raise ValueError("mb must be non-negative")
    bw = min(node.net_bw_mbps * 0.8, node.disk_bw_mbps)
    return mb / bw if mb else 0.0


def fetch_efficiency_batch(window_mb: np.ndarray, reqs_in_flight: np.ndarray,
                           conns_per_peer: np.ndarray,
                           node: NodeSpec) -> np.ndarray:
    """Vectorized :func:`fetch_efficiency` over aligned per-config arrays.

    Takes the three configuration fields directly (already gathered into
    arrays) instead of a :class:`SparkConf`; element-wise bit-identical to
    the scalar function.
    """
    window = np.asarray(window_mb, dtype=float)
    reqs = np.minimum(reqs_in_flight, 64)
    conns = np.asarray(conns_per_peer)
    rtt_s = node.net_rtt_ms / 1000.0
    eff_window = window * (1.0 + 0.15 * (np.minimum(reqs, 16) - 1) / 15.0) \
        * (1.0 + 0.1 * (conns - 1) / 7.0)
    achievable = eff_window / max(rtt_s, 1e-6)
    eff = np.minimum(1.0, achievable / node.net_bw_mbps)
    return np.maximum(0.05, np.minimum(eff, 0.92))


def shuffle_fetch_seconds_batch(total_mb: np.ndarray, window_mb: np.ndarray,
                                reqs_in_flight: np.ndarray,
                                conns_per_peer: np.ndarray, node: NodeSpec,
                                nodes_used: np.ndarray) -> np.ndarray:
    """Vectorized :func:`shuffle_fetch_seconds`, element-wise bit-identical.

    The scalar function's early returns (no data, single node) become an
    explicit zero mask applied after the uniform arithmetic.
    """
    total = np.asarray(total_mb, dtype=float)
    nodes = np.asarray(nodes_used)
    if np.any(total < 0):
        raise ValueError("total_mb must be non-negative")
    if np.any(nodes < 1):
        raise ValueError("nodes_used must be >= 1")
    remote_fraction = 1.0 - 1.0 / nodes
    remote_mb = total * remote_fraction
    per_node_mb = remote_mb / nodes
    bw = node.net_bw_mbps * fetch_efficiency_batch(
        window_mb, reqs_in_flight, conns_per_peer, node)
    out = per_node_mb / bw
    out[(total == 0.0) | (remote_mb == 0.0)] = 0.0
    return out


def remote_read_seconds_batch(mb: np.ndarray, node: NodeSpec) -> np.ndarray:
    """Vectorized :func:`remote_read_seconds`, element-wise bit-identical."""
    mb = np.asarray(mb, dtype=float)
    if np.any(mb < 0):
        raise ValueError("mb must be non-negative")
    bw = min(node.net_bw_mbps * 0.8, node.disk_bw_mbps)
    return np.where(mb != 0.0, mb / bw, 0.0)
