"""Typed view over a native Spark configuration dictionary.

The simulator consumes configurations through this class rather than raw
dicts: unset keys fall back to Spark 2.4 defaults (taken from the parameter
definitions in :mod:`repro.space.spark_params`), and convenience accessors
expose byte/second conversions the cost models need.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..space.spark_params import spark_parameters

__all__ = ["SparkConf"]

_DEFAULTS: dict[str, Any] = {p.name: p.default for p in spark_parameters()}
_MB = 1024 * 1024


class SparkConf:
    """Immutable typed accessor over a (possibly partial) configuration."""

    def __init__(self, conf: Mapping[str, Any] | None = None):
        merged = dict(_DEFAULTS)
        if conf:
            unknown = set(conf) - set(_DEFAULTS)
            if unknown:
                raise KeyError(f"unknown Spark parameters: {sorted(unknown)}")
            merged.update(conf)
        self._conf = merged

    def __getitem__(self, key: str) -> Any:
        return self._conf[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self._conf.get(key, default)

    def as_dict(self) -> dict[str, Any]:
        """A copy of the full native configuration."""
        return dict(self._conf)

    # -- executors -----------------------------------------------------------------
    @property
    def executor_cores(self) -> int:
        return int(self._conf["spark.executor.cores"])

    @property
    def executor_memory_mb(self) -> int:
        return int(self._conf["spark.executor.memory"])

    @property
    def executor_memory_overhead_mb(self) -> int:
        return int(self._conf["spark.executor.memoryOverhead"])

    @property
    def executor_instances(self) -> int:
        return int(self._conf["spark.executor.instances"])

    @property
    def driver_cores(self) -> int:
        return int(self._conf["spark.driver.cores"])

    @property
    def driver_memory_mb(self) -> int:
        return int(self._conf["spark.driver.memory"])

    # -- memory management ------------------------------------------------------------
    @property
    def memory_fraction(self) -> float:
        return float(self._conf["spark.memory.fraction"])

    @property
    def storage_fraction(self) -> float:
        return float(self._conf["spark.memory.storageFraction"])

    @property
    def offheap_enabled(self) -> bool:
        return bool(self._conf["spark.memory.offHeap.enabled"])

    @property
    def offheap_size_mb(self) -> int:
        return int(self._conf["spark.memory.offHeap.size"])

    # -- parallelism / scheduling -------------------------------------------------------
    @property
    def default_parallelism(self) -> int:
        return int(self._conf["spark.default.parallelism"])

    @property
    def task_cpus(self) -> int:
        return int(self._conf["spark.task.cpus"])

    @property
    def locality_wait_s(self) -> float:
        return float(self._conf["spark.locality.wait"])

    @property
    def scheduler_mode(self) -> str:
        return str(self._conf["spark.scheduler.mode"])

    @property
    def speculation(self) -> bool:
        return bool(self._conf["spark.speculation"])

    @property
    def speculation_multiplier(self) -> float:
        return float(self._conf["spark.speculation.multiplier"])

    @property
    def speculation_quantile(self) -> float:
        return float(self._conf["spark.speculation.quantile"])

    @property
    def task_max_failures(self) -> int:
        return int(self._conf["spark.task.maxFailures"])

    # -- shuffle -------------------------------------------------------------------------
    @property
    def shuffle_compress(self) -> bool:
        return bool(self._conf["spark.shuffle.compress"])

    @property
    def shuffle_spill_compress(self) -> bool:
        return bool(self._conf["spark.shuffle.spill.compress"])

    @property
    def shuffle_file_buffer_kb(self) -> int:
        return int(self._conf["spark.shuffle.file.buffer"])

    @property
    def reducer_max_size_in_flight_mb(self) -> int:
        return int(self._conf["spark.reducer.maxSizeInFlight"])

    @property
    def reducer_max_reqs_in_flight(self) -> int:
        return int(self._conf["spark.reducer.maxReqsInFlight"])

    @property
    def shuffle_connections_per_peer(self) -> int:
        return int(self._conf["spark.shuffle.io.numConnectionsPerPeer"])

    @property
    def shuffle_sort_bypass_threshold(self) -> int:
        return int(self._conf["spark.shuffle.sort.bypassMergeThreshold"])

    @property
    def shuffle_service_enabled(self) -> bool:
        return bool(self._conf["spark.shuffle.service.enabled"])

    # -- serialization / compression ---------------------------------------------------------
    @property
    def broadcast_compress(self) -> bool:
        return bool(self._conf["spark.broadcast.compress"])

    @property
    def rdd_compress(self) -> bool:
        return bool(self._conf["spark.rdd.compress"])

    @property
    def compression_codec(self) -> str:
        return str(self._conf["spark.io.compression.codec"])

    @property
    def compression_block_kb(self) -> int:
        return int(self._conf["spark.io.compression.blockSize"])

    @property
    def serializer(self) -> str:
        return str(self._conf["spark.serializer"])

    @property
    def kryo_buffer_max_mb(self) -> int:
        return int(self._conf["spark.kryoserializer.buffer.max"])

    @property
    def kryo_unsafe(self) -> bool:
        return bool(self._conf["spark.kryo.unsafe"])

    @property
    def object_stream_reset(self) -> int:
        return int(self._conf["spark.serializer.objectStreamReset"])

    # -- network -------------------------------------------------------------------------------
    @property
    def network_timeout_s(self) -> float:
        return float(self._conf["spark.network.timeout"])

    @property
    def rpc_message_max_mb(self) -> int:
        return int(self._conf["spark.rpc.message.maxSize"])

    @property
    def rpc_server_threads(self) -> int:
        return int(self._conf["spark.rpc.io.serverThreads"])

    @property
    def prefer_direct_bufs(self) -> bool:
        return bool(self._conf["spark.shuffle.io.preferDirectBufs"])

    # -- storage / input ---------------------------------------------------------------------------
    @property
    def memory_map_threshold_mb(self) -> int:
        return int(self._conf["spark.storage.memoryMapThreshold"])

    @property
    def broadcast_block_mb(self) -> int:
        return int(self._conf["spark.broadcast.blockSize"])

    @property
    def max_partition_bytes(self) -> int:
        return int(self._conf["spark.files.maxPartitionBytes"]) * _MB

    @property
    def max_remote_block_to_mem_mb(self) -> int:
        return int(self._conf["spark.maxRemoteBlockSizeFetchToMem"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SparkConf(executors={self.executor_instances}x"
                f"{self.executor_cores}c/{self.executor_memory_mb}m)")
