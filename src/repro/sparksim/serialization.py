"""Serializer and compression-codec cost models.

Rates are expressed as throughput in MB/s of *uncompressed* data per core
(relative to the reference CPU) and size ratios (output bytes / input
bytes).  Numbers are drawn from published codec benchmarks and Spark tuning
guides: Kryo is roughly 3-4x faster and ~2x denser than Java serialization;
lz4/lzf/snappy are fast with moderate ratios; zstd compresses harder but
costs more CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from .conf import SparkConf

__all__ = ["SerializerModel", "CodecModel", "serializer_model", "codec_model",
           "kryo_buffer_failure"]


@dataclass(frozen=True)
class SerializerModel:
    """Costs of one serialization library."""

    name: str
    ser_mbps: float       # serialize throughput, MB/s/core
    deser_mbps: float     # deserialize throughput, MB/s/core
    size_ratio: float     # serialized bytes / in-memory bytes
    alloc_factor: float   # relative allocation pressure (drives GC)


@dataclass(frozen=True)
class CodecModel:
    """Costs of one compression codec."""

    name: str
    comp_mbps: float      # compress throughput, MB/s/core
    decomp_mbps: float    # decompress throughput, MB/s/core
    ratio: float          # compressed bytes / input bytes (shuffle-like data)


_SERIALIZERS = {
    "java": SerializerModel("java", ser_mbps=90.0, deser_mbps=120.0,
                            size_ratio=1.0, alloc_factor=1.0),
    "kryo": SerializerModel("kryo", ser_mbps=300.0, deser_mbps=380.0,
                            size_ratio=0.55, alloc_factor=0.6),
}

_CODECS = {
    "lz4":    CodecModel("lz4", comp_mbps=420.0, decomp_mbps=1800.0, ratio=0.48),
    "lzf":    CodecModel("lzf", comp_mbps=300.0, decomp_mbps=900.0, ratio=0.52),
    "snappy": CodecModel("snappy", comp_mbps=380.0, decomp_mbps=1300.0, ratio=0.50),
    "zstd":   CodecModel("zstd", comp_mbps=150.0, decomp_mbps=600.0, ratio=0.36),
}


def serializer_model(conf: SparkConf) -> SerializerModel:
    """The serializer the configuration selects (with Kryo tweaks applied)."""
    base = _SERIALIZERS[conf.serializer]
    if conf.serializer == "kryo" and conf.kryo_unsafe:
        # Unsafe IO is ~15% faster at identical density.
        return SerializerModel(base.name, base.ser_mbps * 1.15,
                               base.deser_mbps * 1.15, base.size_ratio,
                               base.alloc_factor)
    if conf.serializer == "java":
        # Frequent object-stream resets cost CPU but cap reference tables;
        # very infrequent resets bloat memory slightly.  Mild effect.
        reset = conf.object_stream_reset
        penalty = 1.0 + max(0.0, (100 - reset)) / 100 * 0.08
        return SerializerModel(base.name, base.ser_mbps / penalty,
                               base.deser_mbps / penalty, base.size_ratio,
                               base.alloc_factor)
    return base


def codec_model(conf: SparkConf) -> CodecModel:
    """The active codec, adjusted for the configured block size.

    Tiny blocks hurt both ratio and speed (per-block overhead); very large
    blocks marginally help ratio but raise memory per stream.  32-128 KB is
    the sweet spot, matching Spark guidance.
    """
    base = _CODECS[conf.compression_codec]
    block = conf.compression_block_kb
    if block < 32:
        f = 1.0 - 0.25 * (32 - block) / 28          # down to ~0.75 at 4 KB
        return CodecModel(base.name, base.comp_mbps * f, base.decomp_mbps * f,
                          min(1.0, base.ratio * (2.0 - f)))
    if block > 128:
        ratio = base.ratio * (1.0 - 0.02 * min(1.0, (block - 128) / 384))
        return CodecModel(base.name, base.comp_mbps, base.decomp_mbps, ratio)
    return base


def kryo_buffer_failure(conf: SparkConf, largest_record_mb: float) -> bool:
    """True when a record exceeds the max Kryo buffer (a runtime error)."""
    return conf.serializer == "kryo" and largest_record_mb > conf.kryo_buffer_max_mb
