"""Discrete-event Spark application simulator.

Executes a workload's stage DAG under a configuration on a modelled
cluster, producing the wall-clock duration a tuner would observe.  The
simulation is event-driven at task granularity but vectorized per stage
(per the HPC guideline of replacing Python loops with NumPy): all task
durations of a stage are drawn at once and scheduled onto executor slots by
the wave scheduler, which tests verify against an exact heap-based
event-loop scheduler.

What the model captures (and why the tuning problem stays hard):

* executor packing — cores×memory imbalance strands resources;
* Spark's unified memory manager — caching, eviction, spilling, and OOM
  cliffs as working sets cross region boundaries;
* shuffle write/fetch — serializer, codec, buffers, in-flight windows,
  NIC floors;
* GC pressure — super-linear slowdown near heap saturation;
* scheduling — waves, dispatch serialization, locality wait, speculation;
* failures — OOM, Kryo buffer overflow, RPC/result-size limits — which
  make regions of the space catastrophically bad, not merely slow;
* noise — per-run contention and per-task stragglers, so repeated
  evaluations of one configuration differ (i.i.d., as BO assumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..utils.rng import as_generator
from .cluster import ClusterSpec, paper_cluster
from .conf import SparkConf
from .disk import effective_disk_bw
from .gcmodel import gc_slowdown
from .memory import RESERVED_MB, ExecutorMemory, executor_memory
from .network import shuffle_fetch_seconds
from .placement import Placement, place_executors
from .result import ExecutionResult, RunStatus, StageMetrics
from .scheduler import stage_makespan
from .serialization import (codec_model, kryo_buffer_failure,
                            serializer_model)
from .stage import CachedRDD, CacheLevel, InputSource, StageSpec
from .taskmodel import (MEM_READ_MBPS, MemoryState, hdfs_read_seconds,
                        locality_fraction, shuffle_write_seconds,
                        spill_seconds)

__all__ = ["SparkSimulator"]

# Application startup: master handshake + executor JVM launches.
_APP_STARTUP_S = 4.0
_PER_EXECUTOR_STARTUP_S = 0.12
# Driver-side task dispatch cost (per task, serialized).
_DISPATCH_BASE_S = 0.002
# Per-stage fixed overhead (DAG scheduling, task-set construction).
_STAGE_LAUNCH_S = 0.08
# Noise magnitudes.
_RUN_NOISE_SIGMA = 0.03
_TASK_NOISE_SIGMA = 0.08
_STRAGGLER_PROB = 0.02
_STRAGGLER_RANGE = (1.5, 2.5)


@dataclass
class _CacheEntry:
    """A cached RDD's materialized state."""

    rdd: CachedRDD
    stored_mb: float          # cluster-wide bytes in the block managers
    resident_fraction: float  # surviving fraction after evictions
    partitions: int
    on_heap: bool


class SparkSimulator:
    """Runs workload stage lists under Spark configurations.

    Parameters
    ----------
    cluster:
        Hardware model; defaults to the paper's 5-worker testbed.
    exact_scheduler:
        Use the heap-based event-driven scheduler instead of the vectorized
        wave scheduler (slower; mainly for validation).
    """

    def __init__(self, cluster: ClusterSpec | None = None, *,
                 exact_scheduler: bool = False):
        self.cluster = cluster or paper_cluster()
        self.exact_scheduler = exact_scheduler

    # -- public API ---------------------------------------------------------------
    def run(self, stages: Sequence[StageSpec],
            conf: SparkConf | Mapping[str, object],
            rng: np.random.Generator | int | None = None,
            time_limit_s: float | None = None) -> ExecutionResult:
        """Simulate one application execution.

        Parameters
        ----------
        stages:
            The workload's compiled stage list (see :mod:`repro.workloads`).
        conf:
            A :class:`SparkConf` or a native configuration mapping.
        rng:
            Noise source; fix it for reproducible runs.
        time_limit_s:
            Execution cap (the paper uses 480 s): the run is killed and
            reported as TIMEOUT when simulated time crosses the cap.

        Returns
        -------
        :class:`ExecutionResult` with status, duration and stage metrics.
        """
        if not isinstance(conf, SparkConf):
            conf = SparkConf(conf)
        if not stages:
            raise ValueError("workload has no stages")
        rng = as_generator(rng)
        node = self.cluster.node

        placement = place_executors(conf, self.cluster)
        if not placement.viable:
            return ExecutionResult(RunStatus.INVALID, 8.0,
                                   failure_reason="no executor fits on any node")

        mem = executor_memory(conf)
        ser = serializer_model(conf)
        codec = codec_model(conf)
        run_noise = float(np.exp(rng.normal(0.0, _RUN_NOISE_SIGMA)))

        t = _APP_STARTUP_S + _PER_EXECUTOR_STARTUP_S * placement.executors
        cache: dict[str, _CacheEntry] = {}
        # wire bytes per logical byte of the most recent shuffle write.
        shuffle_wire_ratio = ser.size_ratio * (codec.ratio if conf.shuffle_compress
                                               else 1.0)
        metrics: list[StageMetrics] = []

        for spec in stages:
            out = self._run_stage(spec, conf, placement, mem, ser, codec,
                                  cache, shuffle_wire_ratio, rng, run_noise)
            if isinstance(out, ExecutionResult):
                # stage-level failure; charge elapsed time plus failure time
                return ExecutionResult(out.status, t + out.duration_s,
                                       tuple(metrics), out.failure_reason)
            stage_time, sm, shuffle_wire_ratio = out
            t += stage_time
            metrics.append(sm)
            if time_limit_s is not None and t > time_limit_s:
                return ExecutionResult(RunStatus.TIMEOUT, float(time_limit_s),
                                       tuple(metrics),
                                       failure_reason="execution cap reached")

        return ExecutionResult(RunStatus.SUCCESS, float(t), tuple(metrics))

    def run_batch(self, stages: Sequence[StageSpec],
                  confs: Sequence[SparkConf | Mapping[str, object]],
                  rngs=None,
                  time_limit_s: float | None = None) -> list[ExecutionResult]:
        """Simulate many configurations in one vectorized pass.

        Bit-identical to calling :meth:`run` once per configuration with
        the matching generator from *rngs* (a sequence of per-config
        generators/seeds, or a single seed/generator/None split via
        :func:`repro.utils.rng.spawn`) — property-tested in
        ``tests/sparksim/test_batch_parity.py``.  The per-stage task
        arithmetic runs as ``(B,)`` NumPy expressions across all still-
        running configurations; see :mod:`repro.sparksim.batch`.
        """
        from .batch import run_batch as _run_batch
        return _run_batch(self, stages, confs, rngs=rngs,
                          time_limit_s=time_limit_s)

    # -- stage simulation -----------------------------------------------------------
    def _run_stage(self, spec: StageSpec, conf: SparkConf,
                   placement: Placement, mem: ExecutorMemory,
                   ser, codec, cache: dict[str, _CacheEntry],
                   shuffle_wire_ratio: float, rng: np.random.Generator,
                   run_noise: float):
        node = self.cluster.node
        execs = placement.executors
        slots_per_exec = max(placement.task_slots // execs, 1)

        p = self._partitions(spec, conf, cache)
        per_task_mb = spec.input_mb / p if p else 0.0

        # Concurrency is bounded by the tasks actually in flight: a stage
        # with fewer tasks than slots does not saturate every disk/NIC,
        # and execution memory is shared only among *running* tasks.
        conc_per_exec = min(slots_per_exec, max(-(-p // execs), 1))
        conc_per_node = min(slots_per_exec * placement.executors_per_node,
                            max(-(-p // placement.nodes_used), 1))

        # ---- memory accounting ------------------------------------------------
        cached_per_exec = sum(e.stored_mb for e in cache.values()) / execs
        heap_cached = sum(e.stored_mb for e in cache.values() if e.on_heap) / execs
        working_set = per_task_mb * spec.expansion
        if spec.shuffle_write_ratio > 0.0:
            working_set += per_task_mb * spec.shuffle_write_ratio * spec.expansion * 0.5
        if spec.cache_output is not None and spec.cache_output.level == CacheLevel.MEMORY:
            unroll = per_task_mb * spec.expansion
        else:
            unroll = working_set * spec.unroll_fraction
        exec_avail = mem.execution_available_mb(cached_per_exec) / conc_per_exec
        state = MemoryState(exec_avail_per_task_mb=exec_avail,
                            working_set_mb=working_set, unroll_mb=unroll)

        # Live heap: JVM-reserved system space + on-heap cached blocks +
        # the concurrent tasks' working sets (deserialized records,
        # buffers).  A default 1 GB heap running even one real task sits
        # deep in GC-pressure territory.
        live_mb = RESERVED_MB + heap_cached \
            + working_set * conc_per_exec * 0.8
        gc = gc_slowdown(mem.heap_mb, live_mb, ser.alloc_factor)

        # ---- fast failures ------------------------------------------------------
        if spec.shuffle_write_ratio > 0.0 and \
                kryo_buffer_failure(conf, spec.largest_record_mb):
            return ExecutionResult(
                RunStatus.RUNTIME_ERROR, 10.0,
                failure_reason=f"{spec.name}: record exceeds "
                               "spark.kryoserializer.buffer.max")
        fail = self._driver_failures(spec, conf, p)
        if fail is not None:
            return fail

        # ---- per-task cost components ------------------------------------------------
        local_frac, local_delay = locality_fraction(
            conf, placement.nodes_used, self.cluster.n_workers,
            self.cluster.hdfs_replication)
        read_s, fetch_floor, cache_hit = self._read_costs(
            spec, conf, cache, per_task_mb, p, ser, codec, gc, node,
            conc_per_node, local_frac, placement.nodes_used)
        if spec.input_source == InputSource.HDFS:
            read_s += local_delay

        compute_s = per_task_mb * spec.compute_s_per_mb * gc / node.cpu_speed

        shuffle_s, wire_per_task = shuffle_write_seconds(
            per_task_mb * spec.shuffle_write_ratio, conf, node, conc_per_node,
            ser, codec, conf.default_parallelism, spec.shuffle_agg, gc)
        new_wire_ratio = shuffle_wire_ratio
        if spec.shuffle_write_ratio > 0.0:
            new_wire_ratio = (wire_per_task /
                              max(per_task_mb * spec.shuffle_write_ratio, 1e-12))

        spill_s, spilled_mb = spill_seconds(state, conf, node, conc_per_node,
                                            ser, codec)

        output_s = 0.0
        if spec.output_mb > 0.0:
            out_per_task = spec.output_mb / p
            output_s = out_per_task / effective_disk_bw(node, conc_per_node)

        # OOM check after costs are known, so the failure charges real time.
        if state.oom:
            attempt = (read_s + compute_s) * 1.5 + 12.0
            retries = min(conf.task_max_failures, 4)
            return ExecutionResult(
                RunStatus.OOM, attempt * retries,
                failure_reason=f"{spec.name}: partition working set "
                               f"{state.unroll_mb:.0f} MB exceeds per-task "
                               f"execution memory {exec_avail:.0f} MB")

        base = read_s + compute_s + shuffle_s + spill_s + output_s
        durations = base * np.exp(rng.normal(0.0, _TASK_NOISE_SIGMA, size=p))
        stragglers = rng.random(p) < _STRAGGLER_PROB
        durations[stragglers] *= rng.uniform(*_STRAGGLER_RANGE,
                                             size=int(stragglers.sum()))

        dispatch = _DISPATCH_BASE_S / (0.5 + 0.25 * min(conf.driver_cores, 6))
        if self.exact_scheduler:
            from .eventsim import event_driven_makespan
            makespan, waves = event_driven_makespan(
                durations, conf, placement.task_slots, dispatch)
        else:
            makespan, waves = stage_makespan(
                durations, conf, placement.task_slots, dispatch)
        stage_time = max(makespan, fetch_floor)
        stage_time += self._stage_overheads(spec, conf, placement, node)
        stage_time *= run_noise

        # ---- cache materialization at stage end -------------------------------------
        if spec.cache_output is not None:
            self._materialize(spec.cache_output, conf, mem, ser, codec,
                              cache, execs, p,
                              exec_demand_mb=working_set * conc_per_exec)

        sm = StageMetrics(
            name=spec.name, tasks=p, waves=waves, duration_s=float(stage_time),
            read_s=float(read_s), compute_s=float(compute_s),
            shuffle_write_s=float(shuffle_s),
            shuffle_fetch_s=float(fetch_floor), spill_s=float(spill_s),
            gc_factor=float(gc), sched_overhead_s=float(dispatch * p),
            spilled_mb=float(spilled_mb * p), cache_hit_fraction=float(cache_hit),
        )
        return float(stage_time), sm, new_wire_ratio

    # -- helpers ------------------------------------------------------------------------
    def _partitions(self, spec: StageSpec, conf: SparkConf,
                    cache: dict[str, _CacheEntry]) -> int:
        if spec.partitions is not None:
            return max(int(spec.partitions), 1)
        if spec.input_source == InputSource.HDFS:
            mb_per_part = conf.max_partition_bytes / (1024 * 1024)
            return max(int(np.ceil(spec.input_mb / mb_per_part)), 1)
        if spec.input_source == InputSource.CACHE and spec.reads_cached in cache:
            return cache[spec.reads_cached].partitions
        return max(conf.default_parallelism, 1)

    def _read_costs(self, spec: StageSpec, conf: SparkConf,
                    cache: dict[str, _CacheEntry], per_task_mb: float, p: int,
                    ser, codec, gc: float, node, conc_per_node: int,
                    local_frac: float, nodes_used: int):
        """(per-task read seconds, cluster fetch floor, cache hit fraction)."""
        fetch_floor = 0.0
        cache_hit = 1.0
        if spec.input_source == InputSource.HDFS:
            read_s = hdfs_read_seconds(per_task_mb, node, conc_per_node,
                                       local_frac, ser.deser_mbps * 1.5)
        elif spec.input_source == InputSource.SHUFFLE:
            wire_total = spec.input_mb * (ser.size_ratio *
                                          (codec.ratio if conf.shuffle_compress else 1.0))
            fetch_floor = shuffle_fetch_seconds(wire_total, conf, node, nodes_used)
            wire_per_task = wire_total / p
            cpu = per_task_mb / ser.deser_mbps
            if conf.shuffle_compress:
                cpu += wire_per_task / codec.decomp_mbps
            # Oversized remote blocks stream through disk first.
            block_mb = wire_per_task
            if block_mb > conf.max_remote_block_to_mem_mb:
                cpu += wire_per_task / effective_disk_bw(node, conc_per_node)
            read_s = cpu * gc / node.cpu_speed
        else:  # CACHE
            entry = cache.get(spec.reads_cached or "")
            if entry is None:
                # Never materialized: full lineage rebuild from HDFS.
                resident = 0.0
                rdd = CachedRDD(spec.reads_cached or "?", spec.input_mb)
            else:
                resident = entry.resident_fraction
                rdd = entry.rdd
            hit_mb = per_task_mb * resident
            miss_mb = per_task_mb - hit_mb
            cache_hit = resident
            read_s = hit_mb / MEM_READ_MBPS
            if entry is not None and entry.rdd.level == CacheLevel.MEMORY_SER:
                stored_per_mb = entry.stored_mb / max(
                    entry.rdd.logical_mb, 1e-9)
                read_s += hit_mb / ser.deser_mbps
                if conf.rdd_compress:
                    read_s += hit_mb * stored_per_mb / codec.decomp_mbps
            if miss_mb > 0.0:
                rebuild_io = hdfs_read_seconds(
                    miss_mb * rdd.rebuild_io_mb_per_mb, node, conc_per_node,
                    local_frac, ser.deser_mbps * 1.5)
                rebuild_cpu = (miss_mb * rdd.rebuild_cpu_s_per_mb
                               * gc / node.cpu_speed)
                read_s += rebuild_io + rebuild_cpu
            read_s *= gc if spec.input_source == InputSource.CACHE else 1.0
        return read_s, fetch_floor, cache_hit

    def _driver_failures(self, spec: StageSpec, conf: SparkConf,
                         p: int) -> ExecutionResult | None:
        if spec.driver_collect_mb <= 0.0:
            return None
        per_task_result = spec.driver_collect_mb / p
        if per_task_result > conf.rpc_message_max_mb:
            return ExecutionResult(
                RunStatus.RUNTIME_ERROR, 15.0,
                failure_reason=f"{spec.name}: task result "
                               f"{per_task_result:.0f} MB exceeds "
                               "spark.rpc.message.maxSize")
        if spec.driver_collect_mb > conf["spark.driver.maxResultSize"]:
            return ExecutionResult(
                RunStatus.RUNTIME_ERROR, 20.0,
                failure_reason=f"{spec.name}: collected results exceed "
                               "spark.driver.maxResultSize")
        if spec.driver_collect_mb * 2.0 > conf.driver_memory_mb * 0.8:
            return ExecutionResult(
                RunStatus.OOM, 25.0,
                failure_reason=f"{spec.name}: driver OutOfMemory collecting "
                               f"{spec.driver_collect_mb:.0f} MB")
        return None

    def _stage_overheads(self, spec: StageSpec, conf: SparkConf,
                         placement: Placement, node) -> float:
        t = _STAGE_LAUNCH_S
        if conf.scheduler_mode == "FAIR":
            t += 0.03
        if spec.driver_compute_s > 0.0:
            # Serial driver work; extra driver cores help only mildly.
            t += spec.driver_compute_s / (0.8 + 0.2 * min(conf.driver_cores, 4))
        if spec.broadcast_mb > 0.0:
            size = spec.broadcast_mb
            cpu = 0.0
            if conf.broadcast_compress:
                codec = codec_model(conf)
                cpu = size / codec.comp_mbps
                size *= codec.ratio
            torrent = size / node.net_bw_mbps \
                * (1.0 + 0.1 * np.log2(max(placement.executors, 2)))
            blocks = max(size / conf.broadcast_block_mb, 1.0)
            t += cpu + torrent + blocks * 0.001
        if spec.driver_collect_mb > 0.0:
            t += spec.driver_collect_mb / node.net_bw_mbps + 0.02
        return t

    def _materialize(self, rdd: CachedRDD, conf: SparkConf,
                     mem: ExecutorMemory, ser, codec,
                     cache: dict[str, _CacheEntry], execs: int,
                     partitions: int, exec_demand_mb: float) -> None:
        """Insert a cached RDD, evicting proportionally on overflow."""
        if rdd.level == CacheLevel.MEMORY:
            demand = rdd.logical_mb * rdd.expansion
            on_heap = True
        else:
            demand = rdd.logical_mb * ser.size_ratio
            if conf.rdd_compress:
                demand *= codec.ratio
            on_heap = not conf.offheap_enabled
        demand_per_exec = demand / execs
        capacity_per_exec = mem.cache_fit_mb(exec_demand_mb)

        existing_per_exec = sum(e.stored_mb for e in cache.values()) / execs
        free = capacity_per_exec - existing_per_exec
        stored_per_exec = min(demand_per_exec, max(free, 0.0))
        if stored_per_exec < demand_per_exec:
            # LRU-like: evict older RDDs to make room for the newcomer,
            # but never below zero; newcomer gets what fits.
            deficit = demand_per_exec - stored_per_exec
            for entry in cache.values():
                if deficit <= 0.0:
                    break
                per_exec = entry.stored_mb / execs
                take = min(per_exec, deficit)
                entry.stored_mb -= take * execs
                full = (entry.rdd.logical_mb * entry.rdd.expansion
                        if entry.rdd.level == CacheLevel.MEMORY
                        else entry.rdd.logical_mb * ser.size_ratio)
                entry.resident_fraction = entry.stored_mb / max(full, 1e-9)
                deficit -= take
                stored_per_exec += take
            stored_per_exec = min(stored_per_exec, demand_per_exec)
        resident = stored_per_exec / demand_per_exec if demand_per_exec > 0 else 1.0
        cache[rdd.name] = _CacheEntry(
            rdd=rdd, stored_mb=stored_per_exec * execs,
            resident_fraction=min(resident, 1.0),
            partitions=partitions, on_heap=on_heap)
