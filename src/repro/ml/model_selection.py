"""Cross-validation utilities (k-fold splitting, CV scoring)."""

from __future__ import annotations

from typing import Iterator, Protocol

import numpy as np

from ..utils.rng import as_generator

__all__ = ["KFold", "cross_val_score"]


class _Regressor(Protocol):  # pragma: no cover - typing helper
    def fit(self, X: np.ndarray, y: np.ndarray) -> "_Regressor": ...
    def score(self, X: np.ndarray, y: np.ndarray) -> float: ...


class KFold:
    """Split indices into *k* consecutive (optionally shuffled) folds.

    Fold sizes differ by at most one; every sample appears in exactly one
    test fold.
    """

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True,
                 rng: np.random.Generator | int | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.rng = rng

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs."""
        if n_samples < self.n_splits:
            raise ValueError(f"cannot split {n_samples} samples into "
                             f"{self.n_splits} folds")
        idx = np.arange(n_samples)
        if self.shuffle:
            idx = as_generator(self.rng).permutation(n_samples)
        sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in sizes:
            test = idx[start:start + size]
            train = np.concatenate([idx[:start], idx[start + size:]])
            yield train, test
            start += size


def cross_val_score(make_model, X: np.ndarray, y: np.ndarray, *,
                    cv: KFold | int = 5,
                    rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Per-fold R² (or model-defined) scores under k-fold cross-validation.

    Parameters
    ----------
    make_model:
        Zero-argument factory returning a fresh unfitted model; a factory
        (rather than an instance) guarantees no state leaks across folds.
    cv:
        A :class:`KFold` instance or a fold count.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if isinstance(cv, int):
        cv = KFold(cv, shuffle=True, rng=rng)
    scores = []
    for train, test in cv.split(X.shape[0]):
        model = make_model()
        model.fit(X[train], y[train])
        scores.append(model.score(X[test], y[test]))
    return np.asarray(scores, dtype=float)
