"""Mean-Decrease-in-Accuracy (permutation) importance with grouped features.

Implements the paper's parameter-ranking method (§3.3 "Ranking the
Parameters", §4 "Parameter Selection"):

1. record a baseline out-of-bag R² score of a fitted forest;
2. permute each feature column (or *group* of collinear columns, permuted
   together with a single shared permutation) and measure the drop in OOB
   R²;
3. repeat each permutation ``n_repeats`` times (the paper uses 10) and
   average the drops for a stable ranking.

An unimportant feature leaves the score unchanged when shuffled; a feature
the model relies on produces a large drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..obs import as_tracer
from ..utils.parallel import parallel_map
from ..utils.rng import as_generator
from .forest import _BaseForestRegressor
from .metrics import r2_score

__all__ = ["GroupImportance", "grouped_permutation_importance"]


@dataclass(frozen=True)
class GroupImportance:
    """Importance of one feature group.

    Attributes
    ----------
    group:
        Group label (a parameter name for singleton groups).
    columns:
        Feature-matrix column indices permuted together.
    importance:
        Mean drop in OOB R² over repeats (higher = more important).
    std:
        Standard deviation of the drop over repeats.
    """

    group: str
    columns: tuple[int, ...]
    importance: float
    std: float


def _permuted_oob_scores_batched(forest: _BaseForestRegressor,
                                 cols: tuple[int, ...],
                                 perms: np.ndarray) -> np.ndarray:
    """OOB R² of the forest with one group permuted, for every permutation.

    Equivalent to ``forest.oob_score(Xp)`` per permutation, but makes a
    single pass over the trees: for each tree the OOB rows of all repeats
    are stacked into one prediction batch, so the per-call tree traversal
    overhead is paid once per tree instead of once per (tree, repeat).
    Only the group's columns are materialized per repeat — the full
    training matrix is never copied.  Per-sample predictions, their
    accumulation order over trees, and the final R² are bit-identical to
    the per-repeat loop.
    """
    X = forest._X_train
    y = forest._y_train
    n_rep, n = perms.shape
    col_idx = np.asarray(cols, dtype=np.intp)
    Xg = X[:, col_idx]                       # (n, g) group values
    totals = np.zeros((n_rep, n), dtype=float)
    counts = np.zeros(n, dtype=np.int64)
    for t, tree in enumerate(forest.trees_):
        mask = forest.oob_mask_[t]
        if not np.any(mask):
            continue
        rows = np.nonzero(mask)[0]
        m = rows.size
        batch = np.broadcast_to(X[rows], (n_rep, m, X.shape[1])).copy()
        # Xp[rows, cols] == X[perm, cols][rows] for each repeat's perm.
        batch[:, :, col_idx] = Xg[perms[:, rows]]
        preds = tree.predict(batch.reshape(n_rep * m, X.shape[1]))
        totals[:, rows] += preds.reshape(n_rep, m)
        counts[rows] += 1
    scores = np.empty(n_rep, dtype=float)
    with np.errstate(invalid="ignore"):
        preds = totals / counts
    ok = counts > 0
    if not np.any(ok):
        raise RuntimeError("no sample has an OOB prediction; "
                           "increase n_estimators")
    for r in range(n_rep):
        scores[r] = r2_score(y[ok], preds[r, ok])
    return scores


def _permuted_oob_scores_loop(forest: _BaseForestRegressor,
                              cols: tuple[int, ...],
                              perms: np.ndarray) -> np.ndarray:
    """Reference per-repeat implementation (one full OOB pass per
    permutation); kept for parity testing and as a fallback."""
    X = forest._X_train
    scores = np.empty(perms.shape[0], dtype=float)
    for r, perm in enumerate(perms):
        Xp = X.copy()
        Xp[:, cols] = X[np.ix_(perm, cols)]
        scores[r] = forest.oob_score(Xp)
    return scores


def grouped_permutation_importance(
        forest: _BaseForestRegressor,
        groups: Mapping[str, Sequence[int]],
        *, n_repeats: int = 10,
        rng: np.random.Generator | int | None = None,
        n_jobs: int | None = None,
        batched: bool = True,
        tracer=None,
) -> list[GroupImportance]:
    """Grouped MDA importances from a fitted bootstrap forest.

    Parameters
    ----------
    forest:
        A fitted :class:`RandomForestRegressor` / :class:`ExtraTreesRegressor`
        with ``bootstrap=True`` (OOB predictions are required).
    groups:
        Mapping of group label → column indices; collinear parameters share
        a group and are permuted with one shared row permutation so their
        joint information is destroyed together.
    n_repeats:
        Independent permutations per group; drops are averaged.
    n_jobs:
        Workers scoring groups concurrently (thread backend — the work is
        numpy-dominated).  ``None`` defers to ``ROBOTUNE_JOBS``.
    batched:
        Use the single-pass batched OOB scorer (default).  ``False``
        selects the reference per-repeat loop; both produce bit-identical
        importances.
    tracer:
        Optional :class:`repro.obs.Tracer`; scoring time accumulates in
        the ``importance`` timer and the group fan-out is recorded via
        :func:`repro.utils.parallel.parallel_map`'s ``parallel.map``
        event.

    Returns
    -------
    Results sorted by decreasing mean importance.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = as_generator(rng)
    tracer = as_tracer(tracer)
    X = forest._X_train
    baseline = forest.oob_score()
    n = X.shape[0]

    # Permutations are drawn up front, in the exact order the sequential
    # loop would draw them, so results do not depend on n_jobs.
    tasks: list[tuple[str, tuple[int, ...], np.ndarray]] = []
    for label, cols in groups.items():
        cols = tuple(int(c) for c in cols)
        if not cols:
            raise ValueError(f"group {label!r} has no columns")
        if any(c < 0 or c >= X.shape[1] for c in cols):
            raise IndexError(f"group {label!r} has out-of-range columns {cols}")
        perms = np.stack([rng.permutation(n) for _ in range(n_repeats)])
        tasks.append((label, cols, perms))

    scorer = _permuted_oob_scores_batched if batched \
        else _permuted_oob_scores_loop

    def score_group(task: tuple[str, tuple[int, ...], np.ndarray]
                    ) -> GroupImportance:
        label, cols, perms = task
        drops = baseline - scorer(forest, cols, perms)
        return GroupImportance(
            group=label,
            columns=cols,
            importance=float(drops.mean()),
            std=float(drops.std(ddof=1)) if n_repeats > 1 else 0.0,
        )

    with tracer.timer("importance"):
        results = parallel_map(score_group, tasks, n_jobs=n_jobs,
                               backend="thread", tracer=tracer)
    results.sort(key=lambda g: g.importance, reverse=True)
    return results
