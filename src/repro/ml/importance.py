"""Mean-Decrease-in-Accuracy (permutation) importance with grouped features.

Implements the paper's parameter-ranking method (§3.3 "Ranking the
Parameters", §4 "Parameter Selection"):

1. record a baseline out-of-bag R² score of a fitted forest;
2. permute each feature column (or *group* of collinear columns, permuted
   together with a single shared permutation) and measure the drop in OOB
   R²;
3. repeat each permutation ``n_repeats`` times (the paper uses 10) and
   average the drops for a stable ranking.

An unimportant feature leaves the score unchanged when shuffled; a feature
the model relies on produces a large drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..utils.rng import as_generator
from .forest import _BaseForestRegressor

__all__ = ["GroupImportance", "grouped_permutation_importance"]


@dataclass(frozen=True)
class GroupImportance:
    """Importance of one feature group.

    Attributes
    ----------
    group:
        Group label (a parameter name for singleton groups).
    columns:
        Feature-matrix column indices permuted together.
    importance:
        Mean drop in OOB R² over repeats (higher = more important).
    std:
        Standard deviation of the drop over repeats.
    """

    group: str
    columns: tuple[int, ...]
    importance: float
    std: float


def grouped_permutation_importance(
        forest: _BaseForestRegressor,
        groups: Mapping[str, Sequence[int]],
        *, n_repeats: int = 10,
        rng: np.random.Generator | int | None = None,
) -> list[GroupImportance]:
    """Grouped MDA importances from a fitted bootstrap forest.

    Parameters
    ----------
    forest:
        A fitted :class:`RandomForestRegressor` / :class:`ExtraTreesRegressor`
        with ``bootstrap=True`` (OOB predictions are required).
    groups:
        Mapping of group label → column indices; collinear parameters share
        a group and are permuted with one shared row permutation so their
        joint information is destroyed together.
    n_repeats:
        Independent permutations per group; drops are averaged.

    Returns
    -------
    Results sorted by decreasing mean importance.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = as_generator(rng)
    X = forest._X_train
    baseline = forest.oob_score()
    n = X.shape[0]

    results: list[GroupImportance] = []
    for label, cols in groups.items():
        cols = tuple(int(c) for c in cols)
        if not cols:
            raise ValueError(f"group {label!r} has no columns")
        if any(c < 0 or c >= X.shape[1] for c in cols):
            raise IndexError(f"group {label!r} has out-of-range columns {cols}")
        drops = np.empty(n_repeats, dtype=float)
        for r in range(n_repeats):
            perm = rng.permutation(n)
            Xp = X.copy()
            # One shared permutation for the whole group keeps intra-group
            # value combinations intact while breaking their link to y.
            Xp[:, cols] = X[np.ix_(perm, cols)]
            drops[r] = baseline - forest.oob_score(Xp)
        results.append(GroupImportance(
            group=label,
            columns=cols,
            importance=float(drops.mean()),
            std=float(drops.std(ddof=1)) if n_repeats > 1 else 0.0,
        ))
    results.sort(key=lambda g: g.importance, reverse=True)
    return results
