"""From-scratch ML substrate: trees, forests, linear models, CV, importances.

A NumPy reimplementation of the scikit-learn pieces the paper depends on —
CART regression trees, Random Forests and Extremely Randomized Trees with
out-of-bag scoring, coordinate-descent Lasso/ElasticNet, k-fold
cross-validation, and grouped Mean-Decrease-in-Accuracy permutation
importance.
"""

from .tree import DecisionTreeRegressor, resolve_max_features
from .forest import ExtraTreesRegressor, RandomForestRegressor
from .linear import ElasticNet, Lasso, LinearRegression
from .metrics import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    recall_score,
)
from .model_selection import KFold, cross_val_score
from .importance import GroupImportance, grouped_permutation_importance

__all__ = [
    "DecisionTreeRegressor",
    "resolve_max_features",
    "RandomForestRegressor",
    "ExtraTreesRegressor",
    "Lasso",
    "ElasticNet",
    "LinearRegression",
    "r2_score",
    "mean_squared_error",
    "mean_absolute_error",
    "recall_score",
    "KFold",
    "cross_val_score",
    "GroupImportance",
    "grouped_permutation_importance",
]
