"""Bagged tree ensembles: Random Forests and Extremely Randomized Trees.

Both expose *out-of-bag* (OOB) predictions, which the paper's parameter
selection uses as the baseline for Mean-Decrease-in-Accuracy importance:
each tree is evaluated only on samples it never saw during training, giving
an unbiased generalization estimate without a held-out set.
"""

from __future__ import annotations

import numpy as np

from ..obs import as_tracer
from ..utils.parallel import parallel_map, resolve_n_jobs
from ..utils.rng import as_generator, spawn
from .metrics import r2_score
from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "ExtraTreesRegressor"]


def _fit_tree_job(task) -> tuple[DecisionTreeRegressor, np.ndarray | None]:
    """Fit one tree of the ensemble (module-level for process pools).

    Each task carries its own child generator, so the fitted tree — and
    the bootstrap/OOB split drawn from that generator — is identical
    whether tasks run serially, on threads, or across processes.
    """
    X, y, params, splitter, crng, bootstrap = task
    n = X.shape[0]
    if bootstrap:
        idx = crng.integers(0, n, size=n)
        oob = np.ones(n, dtype=bool)
        oob[idx] = False
    else:
        idx = np.arange(n)
        oob = None
    tree = DecisionTreeRegressor(splitter=splitter, rng=crng, **params)
    tree.fit(X[idx], y[idx])
    return tree, oob


class _BaseForestRegressor:
    """Common machinery for bagged regression-tree ensembles.

    ``n_jobs`` controls how many workers fit trees concurrently (see
    :func:`repro.utils.parallel.resolve_n_jobs`; ``None`` defers to the
    ``ROBOTUNE_JOBS`` environment variable).  Tree construction is
    pure-Python and GIL-bound, so the default backend is ``"process"``;
    results are independent of worker count and backend because every
    tree owns a pre-spawned child generator.
    """

    _splitter = "best"

    def __init__(self, n_estimators: int = 100, *,
                 max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | float | str | None = "third",
                 bootstrap: bool = True,
                 n_jobs: int | None = None,
                 parallel_backend: str = "process",
                 rng: np.random.Generator | int | None = None,
                 tracer=None):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.n_jobs = n_jobs
        self.parallel_backend = parallel_backend
        self.rng = rng
        self.tracer = as_tracer(tracer)
        self._fitted = False

    # -- fitting ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with len(y) == len(X)")
        n = X.shape[0]
        rng = as_generator(self.rng)
        child_rngs = spawn(rng, self.n_estimators)
        params = dict(max_depth=self.max_depth,
                      min_samples_split=self.min_samples_split,
                      min_samples_leaf=self.min_samples_leaf,
                      max_features=self.max_features)
        tasks = [(X, y, params, self._splitter, crng, self.bootstrap)
                 for crng in child_rngs]
        with self.tracer.timer("forest.fit"):
            fitted = parallel_map(_fit_tree_job, tasks,
                                  n_jobs=resolve_n_jobs(self.n_jobs),
                                  backend=self.parallel_backend,
                                  tracer=self.tracer)
        self.tracer.emit("forest.fit", {"trees": int(self.n_estimators),
                                        "n": int(n),
                                        "features": int(X.shape[1])})
        self.trees_ = [tree for tree, _ in fitted]
        # oob_mask_[t, i] is True when sample i is out-of-bag for tree t.
        self.oob_mask_ = np.zeros((self.n_estimators, n), dtype=bool)
        for t, (_, oob) in enumerate(fitted):
            if oob is not None:
                self.oob_mask_[t] = oob
        self.n_features_ = X.shape[1]
        self._X_train = X
        self._y_train = y
        self._fitted = True
        return self

    # -- prediction ---------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Average prediction over all trees."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        out = np.zeros(X.shape[0], dtype=float)
        for tree in self.trees_:
            out += tree.predict(X)
        return out / len(self.trees_)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² of :meth:`predict` on the given data."""
        return r2_score(np.asarray(y, dtype=float), self.predict(X))

    # -- out-of-bag ----------------------------------------------------------------
    def oob_prediction(self, X: np.ndarray | None = None) -> np.ndarray:
        """Per-sample prediction using only trees for which it is OOB.

        *X* defaults to the training matrix; passing a permuted copy of the
        training matrix (same row order!) yields the permuted-OOB
        predictions used by MDA importance.  Samples that are in-bag for
        every tree get NaN.
        """
        self._check_fitted()
        if not self.bootstrap:
            raise RuntimeError("OOB estimates require bootstrap=True")
        if X is None:
            X = self._X_train
        X = np.asarray(X, dtype=float)
        if X.shape != self._X_train.shape:
            raise ValueError("X must have the training matrix's shape")
        n = X.shape[0]
        total = np.zeros(n, dtype=float)
        count = np.zeros(n, dtype=np.int64)
        for t, tree in enumerate(self.trees_):
            mask = self.oob_mask_[t]
            if not np.any(mask):
                continue
            total[mask] += tree.predict(X[mask])
            count[mask] += 1
        with np.errstate(invalid="ignore"):
            pred = total / count
        pred[count == 0] = np.nan
        return pred

    def oob_score(self, X: np.ndarray | None = None) -> float:
        """OOB R² score (ignoring samples with no OOB trees)."""
        pred = self.oob_prediction(X)
        ok = ~np.isnan(pred)
        if not np.any(ok):
            raise RuntimeError("no sample has an OOB prediction; "
                               "increase n_estimators")
        return r2_score(self._y_train[ok], pred[ok])

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean-Decrease-in-Impurity importances, averaged over trees.

        Kept for the MDI-vs-MDA ablation; the paper argues (citing Strobl
        et al.) that MDI is unreliable with mixed-scale features and uses
        MDA (see :mod:`repro.ml.importance`) instead.
        """
        self._check_fitted()
        imp = np.mean([t.feature_importances_ for t in self.trees_], axis=0)
        total = imp.sum()
        return imp / total if total > 0.0 else imp

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted")


class RandomForestRegressor(_BaseForestRegressor):
    """Breiman (2001) random forest for regression.

    Bootstrap-bagged CART trees with per-split feature subsampling
    (default ``max_features="third"``, Breiman's p/3 regression heuristic).
    """

    _splitter = "best"


class ExtraTreesRegressor(_BaseForestRegressor):
    """Extremely Randomized Trees (Geurts et al., 2006) for regression.

    Splits use one uniformly random threshold per candidate feature.  Unlike
    scikit-learn's default, ``bootstrap=True`` here so OOB scores (needed by
    the paper's MDA comparison) are available out of the box.
    """

    _splitter = "random"
