"""CART regression trees (Breiman et al., 1984).

Flat-array tree representation for fast vectorized prediction.  Two split
strategies are provided:

* ``"best"`` — exhaustive variance-reduction search over sorted feature
  values (classic CART), used by :class:`~repro.ml.forest.RandomForestRegressor`;
* ``"random"`` — one uniformly random threshold per candidate feature
  (Geurts et al., 2006), used by
  :class:`~repro.ml.forest.ExtraTreesRegressor`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..utils.rng import as_generator

__all__ = ["DecisionTreeRegressor", "resolve_max_features"]

_LEAF = -1


def resolve_max_features(max_features: int | float | str | None,
                         n_features: int) -> int:
    """Resolve a ``max_features`` spec into a feature count in [1, n_features].

    Accepts an int (count), float (fraction), ``"sqrt"``, ``"log2"``,
    ``"third"`` (Breiman's p/3 heuristic for regression), or ``None``
    (all features).
    """
    if max_features is None:
        k = n_features
    elif isinstance(max_features, str):
        if max_features == "sqrt":
            k = int(math.sqrt(n_features))
        elif max_features == "log2":
            k = int(math.log2(n_features)) if n_features > 1 else 1
        elif max_features == "third":
            k = n_features // 3
        else:
            raise ValueError(f"unknown max_features spec {max_features!r}")
    elif isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValueError("fractional max_features must be in (0, 1]")
        k = int(max_features * n_features)
    else:
        k = int(max_features)
    return max(1, min(k, n_features))


@dataclass
class _Nodes:
    """Growable flat arrays describing the tree."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[float] = field(default_factory=list)

    def add(self) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        return len(self.feature) - 1


class DecisionTreeRegressor:
    """A regression tree minimizing within-node variance (squared error).

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity or minimum-size
        stopping conditions apply.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child of any split.
    max_features:
        Number of features considered per split (see
        :func:`resolve_max_features`).
    splitter:
        ``"best"`` (CART) or ``"random"`` (extremely randomized).
    rng:
        Seed or generator controlling feature subsampling and random
        thresholds.
    """

    def __init__(self, *, max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | float | str | None = None,
                 splitter: str = "best",
                 rng: np.random.Generator | int | None = None):
        if splitter not in ("best", "random"):
            raise ValueError(f"unknown splitter {splitter!r}")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self.rng = rng
        self._fitted = False

    # -- fitting ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with len(y) == len(X)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        rng = as_generator(self.rng)
        self.n_features_ = X.shape[1]
        k = resolve_max_features(self.max_features, self.n_features_)
        nodes = _Nodes()
        # Total variance-reduction gain credited to each feature (for MDI).
        gain_by_feature = np.zeros(self.n_features_, dtype=float)

        # Iterative depth-first construction with an explicit stack avoids
        # recursion limits on deep trees.
        root = nodes.add()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(X.shape[0]), 0)]
        while stack:
            node, idx, depth = stack.pop()
            y_node = y[idx]
            nodes.value[node] = float(y_node.mean())
            if (len(idx) < self.min_samples_split
                    or (self.max_depth is not None and depth >= self.max_depth)
                    or np.ptp(y_node) == 0.0):
                continue
            split = self._find_split(X, y, idx, k, rng)
            if split is None:
                continue
            feat, thr, left_idx, right_idx, gain = split
            gain_by_feature[feat] += gain
            nodes.feature[node] = feat
            nodes.threshold[node] = thr
            lid, rid = nodes.add(), nodes.add()
            nodes.left[node], nodes.right[node] = lid, rid
            stack.append((lid, left_idx, depth + 1))
            stack.append((rid, right_idx, depth + 1))

        self._feature = np.asarray(nodes.feature, dtype=np.int64)
        self._threshold = np.asarray(nodes.threshold, dtype=float)
        self._left = np.asarray(nodes.left, dtype=np.int64)
        self._right = np.asarray(nodes.right, dtype=np.int64)
        self._value = np.asarray(nodes.value, dtype=float)
        total_gain = gain_by_feature.sum()
        self.feature_importances_ = (gain_by_feature / total_gain
                                     if total_gain > 0.0 else gain_by_feature)
        self._fitted = True
        return self

    def _find_split(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray,
                    k: int, rng: np.random.Generator):
        """Best (feature, threshold) for this node, or None if unsplittable."""
        if self.splitter == "random":
            return self._find_split_random(X, y, idx, k, rng)
        return self._find_split_best(X, y, idx, k, rng)

    def _find_split_best(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray,
                         k: int, rng: np.random.Generator):
        """CART split search, vectorized across candidate features.

        Produces the same (feature, threshold, gain) the per-feature loop
        would: the first ``k`` non-constant features in permutation order
        are scored in one batch (first-occurrence-of-max tie-breaking, like
        the loop's strict ``>`` comparison), and only if none of them
        yields a positive gain does the scan extend feature-by-feature
        through the rest (sklearn-compatible fallback).
        """
        features = rng.permutation(X.shape[1])
        y_node = y[idx]
        base_sse = float(np.sum((y_node - y_node.mean()) ** 2))
        M = X[np.ix_(idx, features)]
        nonconst = np.nonzero(M.min(axis=0) != M.max(axis=0))[0]
        if nonconst.size == 0:
            return None
        first = nonconst[:k]
        thrs, gains = self._best_thresholds_batch(M[:, first], y_node,
                                                  base_sse)
        best: tuple[int, float] | None = None
        best_gain = 0.0
        if np.any(gains > 0.0):
            j = int(np.argmax(gains))
            best = (int(features[first[j]]), float(thrs[j]))
            best_gain = float(gains[j])
        else:
            for pos in nonconst[k:]:
                res = self._best_threshold(M[:, pos], y_node, base_sse)
                if res is not None:
                    best = (int(features[pos]), res[0])
                    best_gain = res[1]
                    break
        if best is None:
            return None
        feat, thr = best
        mask = X[idx, feat] <= thr
        left_idx, right_idx = idx[mask], idx[~mask]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return None
        return feat, thr, left_idx, right_idx, best_gain

    def _find_split_random(self, X: np.ndarray, y: np.ndarray,
                           idx: np.ndarray, k: int,
                           rng: np.random.Generator):
        """Extremely-randomized split search (one uniform threshold per
        candidate feature, drawn in permutation order)."""
        n_feat = X.shape[1]
        features = rng.permutation(n_feat)
        best_gain = 0.0
        best: tuple[int, float] | None = None
        y_node = y[idx]
        base_sse = float(np.sum((y_node - y_node.mean()) ** 2))
        tried = 0
        for feat in features:
            col = X[idx, feat]
            lo, hi = col.min(), col.max()
            if lo == hi:
                continue  # constant feature: not a candidate, try the next
            tried += 1
            thr = float(rng.uniform(lo, hi))
            gain = self._split_gain_at(col, y_node, thr, base_sse)
            if gain is not None and gain > best_gain:
                best_gain, best = gain, (int(feat), thr)
            # Stop after k candidate features, but if none of them yielded
            # a valid split keep scanning the rest (sklearn-compatible).
            if tried >= k and best is not None:
                break
        if best is None:
            return None
        feat, thr = best
        mask = X[idx, feat] <= thr
        left_idx, right_idx = idx[mask], idx[~mask]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return None
        return feat, thr, left_idx, right_idx, best_gain

    def _best_thresholds_batch(self, M: np.ndarray, y: np.ndarray,
                               base_sse: float
                               ) -> tuple[np.ndarray, np.ndarray]:
        """Exhaustive CART threshold search on every column of *M* at once.

        Per-column results are bit-identical to :meth:`_best_threshold`
        (same cumulative-sum formulation, evaluated along axis 0); columns
        with no valid split get gain ``-inf``.
        """
        n, f = M.shape
        order = np.argsort(M, axis=0, kind="stable")
        cs = np.take_along_axis(M, order, axis=0)
        ys = y[order]
        csum = np.cumsum(ys, axis=0)
        csum2 = np.cumsum(ys ** 2, axis=0)
        total, total2 = csum[-1], csum2[-1]
        left_n = np.arange(1, n, dtype=float)[:, None]
        m = self.min_samples_leaf
        valid = cs[1:] > cs[:-1]
        valid &= (left_n >= m) & ((n - left_n) >= m)
        ls, ls2 = csum[:-1], csum2[:-1]
        rs, rs2 = total - ls, total2 - ls2
        sse = (ls2 - ls ** 2 / left_n) + (rs2 - rs ** 2 / (n - left_n))
        sse = np.where(valid, sse, np.inf)
        best_i = np.argmin(sse, axis=0)
        cols = np.arange(f)
        best_sse = sse[best_i, cols]
        gains = base_sse - best_sse
        ok = np.isfinite(best_sse) & (gains > 0.0)
        gains = np.where(ok, gains, -np.inf)
        thrs = np.where(ok, 0.5 * (cs[best_i, cols]
                                   + cs[np.minimum(best_i + 1, n - 1), cols]),
                        np.nan)
        return thrs, gains

    def _best_threshold(self, col: np.ndarray, y: np.ndarray,
                        base_sse: float) -> tuple[float, float] | None:
        """Exhaustive CART threshold search on one feature via prefix sums."""
        order = np.argsort(col, kind="stable")
        cs, ys = col[order], y[order]
        n = len(cs)
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys ** 2)
        total, total2 = csum[-1], csum2[-1]
        # Candidate split after position i (1-based left count), only where
        # the feature value actually changes.
        left_n = np.arange(1, n)
        valid = cs[1:] > cs[:-1]
        m = self.min_samples_leaf
        valid &= (left_n >= m) & ((n - left_n) >= m)
        if not np.any(valid):
            return None
        ls, ls2 = csum[:-1], csum2[:-1]
        rs, rs2 = total - ls, total2 - ls2
        sse = (ls2 - ls ** 2 / left_n) + (rs2 - rs ** 2 / (n - left_n))
        sse = np.where(valid, sse, np.inf)
        best_i = int(np.argmin(sse))
        gain = base_sse - float(sse[best_i])
        if not np.isfinite(sse[best_i]) or gain <= 0.0:
            return None
        thr = 0.5 * (cs[best_i] + cs[best_i + 1])
        return float(thr), gain

    def _split_gain_at(self, col: np.ndarray, y: np.ndarray, thr: float,
                       base_sse: float) -> float | None:
        """Variance-reduction gain of splitting at a given threshold."""
        mask = col <= thr
        nl = int(mask.sum())
        nr = len(col) - nl
        if nl < self.min_samples_leaf or nr < self.min_samples_leaf:
            return None
        yl, yr = y[mask], y[~mask]
        sse = float(np.sum((yl - yl.mean()) ** 2) + np.sum((yr - yr.mean()) ** 2))
        gain = base_sse - sse
        return gain if gain > 0.0 else None

    # -- prediction ---------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of *X*."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"X must have shape (n, {self.n_features_})")
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        active = self._feature[node] != _LEAF
        # Advance all rows level-by-level until every row is at a leaf.
        while np.any(active):
            rows = np.nonzero(active)[0]
            cur = node[rows]
            feat = self._feature[cur]
            go_left = X[rows, feat] <= self._threshold[cur]
            node[rows] = np.where(go_left, self._left[cur], self._right[cur])
            active[rows] = self._feature[node[rows]] != _LEAF
        return self._value[node]

    @property
    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (root = depth 0)."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        depth = np.zeros(len(self._feature), dtype=np.int64)
        best = 0
        for i in range(len(self._feature)):
            if self._feature[i] != _LEAF:
                depth[self._left[i]] = depth[i] + 1
                depth[self._right[i]] = depth[i] + 1
        if len(depth):
            best = int(depth.max())
        return best
