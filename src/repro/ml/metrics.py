"""Regression and set-retrieval metrics."""

from __future__ import annotations

from typing import Collection

import numpy as np

__all__ = ["r2_score", "mean_squared_error", "mean_absolute_error", "recall_score"]


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.shape != yp.shape or yt.ndim != 1:
        raise ValueError("y_true and y_pred must be 1-D and the same length")
    if yt.size == 0:
        raise ValueError("empty inputs")
    return yt, yp


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    1.0 is a perfect fit, 0.0 matches predicting the mean, and the value is
    unbounded below for arbitrarily bad models (paper §3.3).  If ``y_true``
    is constant the score is 1.0 for exact predictions and 0.0 otherwise.
    """
    yt, yp = _validate(y_true, y_pred)
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of squared residuals."""
    yt, yp = _validate(y_true, y_pred)
    return float(np.mean((yt - yp) ** 2))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of absolute residuals."""
    yt, yp = _validate(y_true, y_pred)
    return float(np.mean(np.abs(yt - yp)))


def recall_score(truth: Collection, predicted: Collection) -> float:
    """True-positive rate of a predicted set against a ground-truth set.

    Used for Figure 7: the fraction of ground-truth high-impact parameters
    that a model trained on fewer samples still identifies.  An empty
    ground-truth set has recall 1.0 by convention (nothing to miss).
    """
    truth_set = set(truth)
    if not truth_set:
        return 1.0
    hits = len(truth_set & set(predicted))
    return hits / len(truth_set)
