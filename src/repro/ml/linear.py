"""L1/L2-regularized linear regression via cyclic coordinate descent.

Implements Lasso and ElasticNet (Friedman, Hastie & Tibshirani, 2010) —
the two linear baselines the paper compares against tree ensembles in
Figure 2.  Features and target are internally centred (and features
optionally scaled) so the intercept is handled exactly.
"""

from __future__ import annotations

import numpy as np

from .metrics import r2_score

__all__ = ["Lasso", "ElasticNet", "LinearRegression"]


def _soft_threshold(z: float, gamma: float) -> float:
    """The soft-thresholding operator S(z, gamma)."""
    if z > gamma:
        return z - gamma
    if z < -gamma:
        return z + gamma
    return 0.0


class ElasticNet:
    """Linear model with combined L1 and L2 penalties.

    Minimizes ``(1 / 2n) ||y - Xw||² + alpha * l1_ratio * ||w||₁
    + 0.5 * alpha * (1 - l1_ratio) * ||w||²``.

    Parameters
    ----------
    alpha:
        Overall regularization strength.
    l1_ratio:
        Mix between L1 (1.0 = Lasso) and L2 (0.0 = ridge-like).
    max_iter, tol:
        Coordinate-descent sweep budget and convergence threshold on the
        maximum coefficient update.
    normalize:
        Scale features to unit standard deviation before fitting
        (coefficients are rescaled back).
    """

    def __init__(self, alpha: float = 1.0, *, l1_ratio: float = 0.5,
                 max_iter: int = 1000, tol: float = 1e-6,
                 normalize: bool = True):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must be in [0, 1]")
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self.max_iter = max_iter
        self.tol = tol
        self.normalize = normalize
        self._fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ElasticNet":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with len(y) == len(X)")
        n, p = X.shape
        x_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        Xc = X - x_mean
        if self.normalize:
            x_scale = Xc.std(axis=0)
            x_scale[x_scale == 0.0] = 1.0
        else:
            x_scale = np.ones(p)
        Xc = Xc / x_scale
        yc = y - y_mean

        w = np.zeros(p)
        resid = yc.copy()  # resid = yc - Xc @ w, maintained incrementally
        col_sq = np.einsum("ij,ij->j", Xc, Xc) / n
        l1 = self.alpha * self.l1_ratio
        l2 = self.alpha * (1.0 - self.l1_ratio)
        self.n_iter_ = 0
        for sweep in range(self.max_iter):
            max_delta = 0.0
            for j in range(p):
                if col_sq[j] == 0.0:
                    continue
                wj = w[j]
                # Partial residual correlation for coordinate j.
                rho = float(Xc[:, j] @ resid) / n + col_sq[j] * wj
                new_wj = _soft_threshold(rho, l1) / (col_sq[j] + l2)
                delta = new_wj - wj
                if delta != 0.0:
                    resid -= delta * Xc[:, j]
                    w[j] = new_wj
                    max_delta = max(max_delta, abs(delta))
            self.n_iter_ = sweep + 1
            if max_delta <= self.tol:
                break

        self.coef_ = w / x_scale
        self.intercept_ = y_mean - float(self.coef_ @ x_mean)
        self.n_features_ = p
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for each row of *X*."""
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"X must have shape (n, {self.n_features_})")
        return X @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """R² of :meth:`predict` on the given data."""
        return r2_score(np.asarray(y, dtype=float), self.predict(X))


class Lasso(ElasticNet):
    """L1-only special case of :class:`ElasticNet` (``l1_ratio = 1``)."""

    def __init__(self, alpha: float = 1.0, *, max_iter: int = 1000,
                 tol: float = 1e-6, normalize: bool = True):
        super().__init__(alpha, l1_ratio=1.0, max_iter=max_iter, tol=tol,
                         normalize=normalize)


class LinearRegression(ElasticNet):
    """Unregularized least squares via the same coordinate-descent path."""

    def __init__(self, *, max_iter: int = 2000, tol: float = 1e-8,
                 normalize: bool = True):
        super().__init__(0.0, l1_ratio=0.0, max_iter=max_iter, tol=tol,
                         normalize=normalize)
