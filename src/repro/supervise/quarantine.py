"""Poison-config quarantine: strike counting and exclusion.

A configuration that repeatedly kills or times out its worker is almost
certainly *causing* the failure (an OOM-ing memory split, a partition
count that wedges the shuffle).  After ``after`` strikes the config is
quarantined: the engine stops re-proposing it and the memo buffer
refuses to resurface it (``ConfigMemoizationBuffer.block``).

Keys are the snapped unit-cube vectors' raw bytes — the same identity
the proposal dedupe uses — so a quarantined point is exactly the point
the engine would otherwise re-draw.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PoisonQuarantine", "vector_key"]


def vector_key(u: np.ndarray) -> bytes:
    """Stable identity for a unit-cube vector (exact bytes, no rounding)."""
    return np.ascontiguousarray(np.asarray(u, dtype=float)).tobytes()


class PoisonQuarantine:
    """Count strikes per config key; quarantine at the cap.

    Parameters
    ----------
    after:
        Strikes (worker kills or deadline hits) before a key is
        quarantined.  Must be >= 1.
    """

    def __init__(self, after: int = 3):
        if after < 1:
            raise ValueError("quarantine threshold must be >= 1")
        self.after = int(after)
        self._strikes: dict[bytes, int] = {}
        self._quarantined: set[bytes] = set()

    def strike(self, key: bytes) -> bool:
        """Record one failure for *key*; True if it is now quarantined."""
        n = self._strikes.get(key, 0) + 1
        self._strikes[key] = n
        if n >= self.after:
            self._quarantined.add(key)
            return True
        return False

    def strikes(self, key: bytes) -> int:
        return self._strikes.get(key, 0)

    def is_quarantined(self, key: bytes) -> bool:
        return key in self._quarantined

    @property
    def quarantined(self) -> list[bytes]:
        """Keys currently quarantined (insertion order not guaranteed)."""
        return sorted(self._quarantined)

    def __len__(self) -> int:
        return len(self._quarantined)
