"""Supervised execution: deadlines, heartbeats, speculation, quarantine.

``repro.supervise`` wraps a :class:`repro.utils.parallel.WorkerPool` so
that every in-flight evaluation is accountable (docs/ROBUSTNESS.md,
"Supervised execution"):

* **deadlines** — a wall-clock budget per evaluation, derived from a
  running quantile of completed durations plus an optional hard
  ``eval_timeout_s`` override; a task past its deadline is abandoned and
  charged to search cost like a censored run;
* **heartbeats** — each dispatch is tracked from its last sign of life,
  and tasks owned by a dead worker are reclaimed and redispatched on a
  fresh slot (``WorkerPool.replace_worker``);
* **speculative re-execution** — a straggler past the straggler
  threshold gets a duplicate on an idle slot; the first completion wins
  and the loser is abandoned;
* **poison-config quarantine** — a config that kills or times out its
  worker ``quarantine_after`` times is excluded from re-proposal.

Supervision reads the wall clock by design (an injected monotonic clock,
exempted by analysis rule RPD005): deadlines and heartbeats are facts
about real elapsed time.  It is therefore *not* bit-reproducible and is
off by default — ``BOEngine(supervise=None)`` keeps every existing code
path byte-identical to the unsupervised engine.
"""

from .deadline import DeadlinePolicy
from .quarantine import PoisonQuarantine
from .supervisor import (Completed, DeadlineHit, EvaluationSupervisor,
                         SupervisePolicy, TaskFailed)

__all__ = ["SupervisePolicy", "EvaluationSupervisor", "DeadlinePolicy",
           "PoisonQuarantine", "Completed", "DeadlineHit", "TaskFailed"]
