"""Adaptive per-evaluation deadlines from a running duration quantile.

The policy mirrors how the median guard treats *simulated* cost, but for
*wall-clock* task duration: once enough completions have been observed,
an evaluation taking longer than ``multiplier`` x the ``quantile`` of
completed durations is presumed wedged.  A hard ``eval_timeout_s`` cap
(the CLI's ``--eval-timeout``) always applies when set, even before the
quantile warms up.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DeadlinePolicy"]


class DeadlinePolicy:
    """Running-quantile deadline and straggler thresholds.

    Parameters
    ----------
    eval_timeout_s:
        Hard wall-clock cap per evaluation (None = no hard cap).
    quantile:
        Quantile of completed durations the deadline scales from.
    multiplier:
        Deadline = ``multiplier`` x quantile duration.
    straggler_multiplier:
        Speculation threshold = ``straggler_multiplier`` x quantile
        duration (must not exceed ``multiplier`` to be useful).
    min_completions:
        Completions required before the adaptive thresholds activate;
        until then only the hard cap (if any) applies.
    """

    def __init__(self, eval_timeout_s: float | None = None, *,
                 quantile: float = 0.95, multiplier: float = 3.0,
                 straggler_multiplier: float = 2.0,
                 min_completions: int = 3):
        if eval_timeout_s is not None and eval_timeout_s <= 0:
            raise ValueError("eval_timeout_s must be positive")
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if multiplier <= 1.0 or straggler_multiplier <= 1.0:
            raise ValueError("deadline multipliers must be > 1")
        if min_completions < 1:
            raise ValueError("min_completions must be >= 1")
        self.eval_timeout_s = eval_timeout_s
        self.quantile = float(quantile)
        self.multiplier = float(multiplier)
        self.straggler_multiplier = float(straggler_multiplier)
        self.min_completions = int(min_completions)
        self._durations: list[float] = []

    @property
    def n_observed(self) -> int:
        return len(self._durations)

    def observe(self, duration_s: float) -> None:
        """Fold one completed evaluation's wall-clock duration in."""
        self._durations.append(float(duration_s))

    def _scaled(self, factor: float) -> float | None:
        if len(self._durations) < self.min_completions:
            return None
        q = float(np.quantile(self._durations, self.quantile))
        return factor * max(q, 1e-9)

    def deadline_s(self) -> float | None:
        """Current per-evaluation deadline (None = unbounded)."""
        adaptive = self._scaled(self.multiplier)
        if self.eval_timeout_s is None:
            return adaptive
        if adaptive is None:
            return self.eval_timeout_s
        return min(self.eval_timeout_s, adaptive)

    def straggler_threshold_s(self) -> float | None:
        """Elapsed time past which a task counts as a straggler."""
        adaptive = self._scaled(self.straggler_multiplier)
        if adaptive is None:
            return None
        if self.eval_timeout_s is not None:
            return min(self.eval_timeout_s, adaptive)
        return adaptive
