"""The evaluation supervisor: every in-flight task is accountable.

:class:`EvaluationSupervisor` sits between an asynchronous driver (the
BO engine's ``async_workers`` loop) and a :class:`WorkerPool`.  The
driver submits *factories* — zero-argument callables that build a fresh
runnable thunk per physical dispatch, so a redispatch or speculative
twin gets its own objective view — and collects :class:`Completed`,
:class:`DeadlineHit` or :class:`TaskFailed` outcomes in completion
order.

The supervisor is the one component in the library that legitimately
reads the wall clock on a decision path (via an injected monotonic
clock; analysis rule RPD005 exempts ``supervise/``): deadlines,
heartbeats and straggler detection are facts about real elapsed time,
which is exactly why supervised runs are documented as not
bit-reproducible (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs import as_tracer
from ..utils.parallel import PoolTimeout, WorkerPool
from .deadline import DeadlinePolicy
from .quarantine import PoisonQuarantine

__all__ = ["SupervisePolicy", "EvaluationSupervisor",
           "Completed", "DeadlineHit", "TaskFailed"]


@dataclass(frozen=True)
class SupervisePolicy:
    """Knobs for supervised execution (docs/ROBUSTNESS.md).

    ``eval_timeout_s`` is the CLI's ``--eval-timeout`` hard cap; the
    adaptive deadline/straggler thresholds come from a running quantile
    of completed durations (:class:`DeadlinePolicy`).  ``speculate``
    enables straggler twins; ``quarantine_after`` is the poison-config
    strike cap; ``max_redispatch`` bounds reclaim-and-redispatch after a
    worker death.
    """

    eval_timeout_s: float | None = None
    deadline_quantile: float = 0.95
    deadline_multiplier: float = 3.0
    straggler_multiplier: float = 2.0
    min_completions: int = 3
    speculate: bool = False
    quarantine_after: int = 3
    max_redispatch: int = 1
    poll_s: float = 0.05

    def __post_init__(self) -> None:
        if self.eval_timeout_s is not None and self.eval_timeout_s <= 0:
            raise ValueError("eval_timeout_s must be positive")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.max_redispatch < 0:
            raise ValueError("max_redispatch must be >= 0")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive")

    def deadline_policy(self) -> DeadlinePolicy:
        return DeadlinePolicy(self.eval_timeout_s,
                              quantile=self.deadline_quantile,
                              multiplier=self.deadline_multiplier,
                              straggler_multiplier=self.straggler_multiplier,
                              min_completions=self.min_completions)


@dataclass(frozen=True)
class Completed:
    """A supervised evaluation finished; ``result`` is the thunk's value."""

    tag: Any
    result: Any
    duration_s: float
    speculative: bool = False  # True when the twin beat the original


@dataclass(frozen=True)
class DeadlineHit:
    """An evaluation blew its deadline and was abandoned."""

    tag: Any
    key: bytes | None
    elapsed_s: float
    deadline_s: float
    quarantined: bool


@dataclass(frozen=True)
class TaskFailed:
    """Every dispatch of an evaluation died and redispatch is exhausted."""

    tag: Any
    key: bytes | None
    error: BaseException
    quarantined: bool


class _TaskError:
    """Sentinel carrying a worker exception so the task tag is never lost."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


@dataclass
class _Task:
    tag: Any
    key: bytes | None
    factory: Callable[[], Callable[[], Any]]
    live: dict = field(default_factory=dict)     # token -> dispatch time
    twins: set = field(default_factory=set)      # speculative ordinals
    first_dispatch: float = 0.0
    last_beat: float = 0.0
    speculated: bool = False
    redispatches: int = 0
    n_dispatched: int = 0


class EvaluationSupervisor:
    """Supervise a pool: deadlines, heartbeats, speculation, quarantine.

    Parameters
    ----------
    pool:
        The :class:`WorkerPool` to dispatch on (thread backend for real
        supervision; the serial backend degenerates to FIFO execution
        with no deadline enforcement, useful for protocol tests).
    policy:
        A :class:`SupervisePolicy`.
    tracer:
        Optional tracer; emits ``supervise.speculate`` /
        ``supervise.reclaim`` / ``supervise.deadline_hit`` /
        ``supervise.quarantine`` events plus same-named counters.
    clock:
        Monotonic time source (injected so tests can fake time).
    """

    def __init__(self, pool: WorkerPool, policy: SupervisePolicy, *,
                 tracer=None, clock: Callable[[], float] = time.monotonic):
        self.pool = pool
        self.policy = policy
        self.deadlines = policy.deadline_policy()
        self.quarantine = PoisonQuarantine(policy.quarantine_after)
        self._tracer = as_tracer(tracer)
        self._clock = clock
        self._tasks: dict[Any, _Task] = {}

    # -- driver surface -----------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Distinct supervised evaluations in flight (twins don't count)."""
        return len(self._tasks)

    @property
    def free_slots(self) -> int:
        return self.pool.free_workers

    def submit(self, factory: Callable[[], Callable[[], Any]], *,
               tag: Any, key: bytes | None = None) -> None:
        """Supervise a new evaluation.

        *factory* is called once per physical dispatch (always on the
        driver's thread) and must return a fresh zero-argument thunk —
        typically closing over a newly spawned objective view.  *key*
        identifies the underlying config for quarantine accounting.
        """
        if tag in self._tasks:
            raise RuntimeError(f"task {tag!r} is already supervised")
        task = _Task(tag=tag, key=key, factory=factory)
        self._tasks[tag] = task
        self._dispatch(task)

    def heartbeat(self, tag: Any) -> None:
        """Push a task's deadline out: it showed a sign of life."""
        task = self._tasks.get(tag)
        if task is not None:
            task.last_beat = self._clock()

    def next_outcome(self) -> Completed | DeadlineHit | TaskFailed:
        """Block until one supervised evaluation settles.

        Waits are always bounded by the nearest deadline/straggler
        threshold (or the poll interval), so a wedged worker can only
        delay the supervisor until its deadline — never forever, as long
        as a deadline source (hard cap or warmed-up quantile) exists.
        """
        if not self._tasks:
            raise RuntimeError("no supervised tasks in flight")
        while True:
            swept = self._sweep()
            if swept is not None:
                return swept
            try:
                token, payload = self.pool.next_completed(
                    timeout=self._nearest_wait())
            except PoolTimeout:
                continue  # re-sweep: something is now overdue
            settled = self._settle(token, payload)
            if settled is not None:
                return settled

    # -- internals ----------------------------------------------------------------
    def _dispatch(self, task: _Task, *, twin: bool = False) -> None:
        ordinal = task.n_dispatched
        task.n_dispatched += 1
        if twin:
            task.twins.add(ordinal)
        thunk = task.factory()

        def _run(thunk=thunk):
            try:
                return thunk()
            except BaseException as exc:  # noqa: BLE001 - relayed as outcome
                return _TaskError(exc)

        token = (task.tag, ordinal)
        self.pool.submit(_run, tag=token)
        now = self._clock()
        task.live[token] = now
        task.last_beat = now
        if ordinal == 0:
            task.first_dispatch = now

    def _nearest_wait(self) -> float | None:
        """Seconds until the next deadline/straggler decision is due."""
        now = self._clock()
        deadline = self.deadlines.deadline_s()
        straggler = (self.deadlines.straggler_threshold_s()
                     if self.policy.speculate else None)
        waits = []
        for task in self._tasks.values():
            if deadline is not None:
                waits.append(task.last_beat + deadline - now)
            if straggler is not None and not task.speculated:
                waits.append(task.first_dispatch + straggler - now)
        if not waits:
            return self.policy.poll_s if self.policy.speculate else None
        return max(min(waits), 1e-3)

    def _strike(self, task: _Task) -> bool:
        if task.key is None:
            return False
        quarantined = self.quarantine.strike(task.key)
        if quarantined:
            self._tracer.emit("supervise.quarantine",
                              {"tag": str(task.tag),
                               "strikes": self.quarantine.strikes(task.key)})
            self._tracer.count("supervise.quarantine")
        return quarantined

    def _sweep(self) -> DeadlineHit | None:
        """Enforce deadlines and launch speculative twins."""
        now = self._clock()
        deadline = self.deadlines.deadline_s()
        straggler = (self.deadlines.straggler_threshold_s()
                     if self.policy.speculate else None)
        for task in list(self._tasks.values()):
            if deadline is not None and now - task.last_beat >= deadline:
                for token in list(task.live):
                    self.pool.abandon(token)
                del self._tasks[task.tag]
                quarantined = self._strike(task)
                elapsed = now - task.first_dispatch
                self._tracer.emit("supervise.deadline_hit",
                                  {"tag": str(task.tag),
                                   "deadline_s": deadline,
                                   "elapsed_s": elapsed})
                self._tracer.count("supervise.deadline_hit")
                return DeadlineHit(tag=task.tag, key=task.key,
                                   elapsed_s=elapsed, deadline_s=deadline,
                                   quarantined=quarantined)
            if (straggler is not None and not task.speculated
                    and now - task.first_dispatch >= straggler
                    and self.pool.free_workers > 0):
                task.speculated = True
                self._dispatch(task, twin=True)
                self._tracer.emit("supervise.speculate",
                                  {"tag": str(task.tag),
                                   "elapsed_s": now - task.first_dispatch,
                                   "threshold_s": straggler})
                self._tracer.count("supervise.speculate")
        return None

    def _settle(self, token: Any, payload: Any
                ) -> Completed | TaskFailed | None:
        tag = token[0]
        task = self._tasks.get(tag)
        if task is None or token not in task.live:
            return None  # stale completion of an abandoned attempt
        dispatched_at = task.live.pop(token)
        if isinstance(payload, _TaskError):
            if task.live:
                return None  # a twin is still running; let the race finish
            quarantined = self._strike(task)
            if not quarantined and task.redispatches < self.policy.max_redispatch:
                task.redispatches += 1
                self._tracer.emit("supervise.reclaim",
                                  {"tag": str(task.tag),
                                   "error": type(payload.exc).__name__,
                                   "redispatch": task.redispatches})
                self._tracer.count("supervise.reclaim")
                self._dispatch(task)
                return None
            del self._tasks[tag]
            return TaskFailed(tag=tag, key=task.key, error=payload.exc,
                              quarantined=quarantined)
        duration = self._clock() - dispatched_at
        self.deadlines.observe(duration)
        for other in list(task.live):
            self.pool.abandon(other)
        speculative = token[1] in task.twins
        if speculative:
            self._tracer.count("supervise.speculate_wins")
        del self._tasks[tag]
        return Completed(tag=tag, result=payload, duration_s=duration,
                         speculative=speculative)
