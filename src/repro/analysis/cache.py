"""Content-hash result cache for linter runs.

Two kinds of entries, matching the engine's two phases:

* **per-module** (``pm_<key>.json``) — the raw (pre-suppression)
  findings of the per-module rules plus the file's suppression table,
  keyed by the file's content hash and the module ruleset.  Sound
  because per-module results are a pure function of one file's bytes;
  whole-program rules are excluded by construction (their verdicts
  depend on every file).
* **flow** (``fl_<key>.json``) — the raw findings of the whole-program
  rules, keyed by the *tree signature*: the hash of every scanned file's
  (display, content-hash) pair.  Any edit anywhere changes the signature
  and recomputes the whole flow phase, which is exactly the soundness
  condition for interprocedural results.

Suppression matching, baseline comparison and report assembly always
happen fresh per run (they are cheap and depend on run flags), so cached
entries never encode suppression state.

Entries are disposable artifacts: corrupt or unreadable files read as
misses and are rebuilt, and writes go through a temp file + ``os.replace``
so a crashed run never leaves a torn entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding
from .suppressions import Suppression

__all__ = ["CACHE_VERSION", "ModuleResult", "ResultCache", "tree_signature"]

#: Bump on any change to the entry format or the engine's raw-finding
#: semantics; old entries then read as misses instead of mis-parsing.
CACHE_VERSION = 1


@dataclass
class ModuleResult:
    """Per-module phase output for one file (the cacheable unit)."""

    display: str
    raw: list[Finding] = field(default_factory=list)
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    parse_ok: bool = True


def tree_signature(pairs: list[tuple[str, str]]) -> str:
    """Order-independent hash of ``(display, content_sha)`` pairs."""
    digest = hashlib.sha256()
    for display, sha in sorted(pairs):
        digest.update(display.encode("utf-8"))
        digest.update(b"\0")
        digest.update(sha.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def _finding_to_dict(finding: Finding) -> dict[str, object]:
    return {"rule": finding.rule, "path": finding.path,
            "line": finding.line, "col": finding.col,
            "message": finding.message}


def _finding_from_dict(raw: dict[str, object]) -> Finding:
    return Finding(rule=str(raw["rule"]), path=str(raw["path"]),
                   line=int(raw["line"]),  # type: ignore[call-overload]
                   col=int(raw["col"]),  # type: ignore[call-overload]
                   message=str(raw["message"]))


class ResultCache:
    """Directory-backed cache with hit/miss counters."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------------
    @staticmethod
    def module_key(display: str, content_sha: str, ruleset_sig: str) -> str:
        payload = f"{CACHE_VERSION}|{display}|{content_sha}|{ruleset_sig}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @staticmethod
    def flow_key(tree_sig: str, ruleset_sig: str) -> str:
        payload = f"{CACHE_VERSION}|flow|{tree_sig}|{ruleset_sig}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- I/O ------------------------------------------------------------------
    def _read(self, path: Path) -> dict[str, object] | None:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(document, dict) \
                or document.get("version") != CACHE_VERSION:
            return None
        return document

    def _write(self, path: Path, document: dict[str, object]) -> None:
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:  # repro: noqa RPF002 -- disposable cache artifact: corrupt/missing entries read as misses and are rebuilt, so no durability protocol applies
                json.dump(document, fh)
            os.replace(tmp, path)
        except OSError:
            # A full/read-only cache dir degrades to cacheless operation.
            tmp.unlink(missing_ok=True)

    # -- per-module entries ---------------------------------------------------
    def load_module(self, key: str) -> ModuleResult | None:
        document = self._read(self.root / f"pm_{key}.json")
        if document is None:
            self.misses += 1
            return None
        try:
            raw = [_finding_from_dict(f)
                   for f in document["findings"]]  # type: ignore[union-attr]
            suppressions = {
                int(s["line"]): Suppression(
                    line=int(s["line"]), rules=tuple(s["rules"]),
                    justification=str(s["justification"]))
                for s in document["suppressions"]}  # type: ignore[union-attr]
            result = ModuleResult(display=str(document["display"]),
                                  raw=raw, suppressions=suppressions,
                                  parse_ok=bool(document["parse_ok"]))
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store_module(self, key: str, result: ModuleResult) -> None:
        self._write(self.root / f"pm_{key}.json", {
            "version": CACHE_VERSION,
            "display": result.display,
            "parse_ok": result.parse_ok,
            "findings": [_finding_to_dict(f) for f in result.raw],
            "suppressions": [
                {"line": s.line, "rules": list(s.rules),
                 "justification": s.justification}
                for s in result.suppressions.values()],
        })

    # -- flow entries ---------------------------------------------------------
    def load_flow(self, key: str) -> list[Finding] | None:
        document = self._read(self.root / f"fl_{key}.json")
        if document is None:
            self.misses += 1
            return None
        try:
            findings = [_finding_from_dict(f)
                        for f in document["findings"]]  # type: ignore[union-attr]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def store_flow(self, key: str, findings: list[Finding]) -> None:
        self._write(self.root / f"fl_{key}.json", {
            "version": CACHE_VERSION,
            "findings": [_finding_to_dict(f) for f in findings],
        })
