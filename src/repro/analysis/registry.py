"""Rule base class and the global rule registry.

Every rule is a class with a unique id (``RP<family><nnn>``), a one-line
title, a rationale naming the repo invariant it protects, and a
``check`` generator over a :class:`~repro.analysis.context.ModuleContext`.
Registration happens at import time via the :func:`register` decorator;
:mod:`repro.analysis.rules` imports every rule module so the registry is
complete after ``import repro.analysis``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator

from .context import ModuleContext
from .findings import Finding
from .suppressions import RULE_ID_RE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flow import FlowProject


class Rule:
    """One invariant check, run once per module.

    Subclasses set ``id``/``title``/``rationale`` and implement
    :meth:`check` (a plain base class rather than an ABC so the registry
    can hold ``type[Rule]`` and instantiate entries generically).
    """

    id: ClassVar[str]
    title: ClassVar[str]
    rationale: ClassVar[str]

    #: Whole-program rules set this True (see :class:`FlowRule`); the
    #: engine then runs them once per run over the project graph instead
    #: of once per module, and excludes them from the per-module result
    #: cache (their findings depend on every file, not one).
    requires_flow: ClassVar[bool] = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a :class:`Finding` for every violation in *ctx*."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST | int,
                message: str) -> Finding:
        """Build a finding anchored at *node* (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 1
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        return Finding(rule=self.id, path=ctx.display, line=line, col=col,
                       message=message)


class FlowRule(Rule):
    """Base class for whole-program (interprocedural) rules.

    Subclasses implement :meth:`check_project` over a
    :class:`repro.analysis.flow.FlowProject`; the inherited per-module
    :meth:`check` is a no-op so flow rules are inert wherever only
    single-file analysis runs (``analyze_file``, the per-rule fixture
    helper), and existing per-module rules pay zero cost for the flow
    layer's existence.
    """

    requires_flow: ClassVar[bool] = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "FlowProject") -> Iterator[Finding]:
        """Yield findings over the whole :class:`FlowProject`."""
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = getattr(cls, "id", None)
    if not isinstance(rule_id, str) or not RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule {cls.__name__} has no valid id: {rule_id!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = cls
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package populates the registry exactly once.
    from . import rules  # noqa: F401  (import-for-side-effect)


def all_rule_ids() -> list[str]:
    """Every registered rule id, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def rule_catalog() -> list[tuple[str, str, str]]:
    """``(id, title, rationale)`` for every registered rule, sorted by id."""
    _ensure_loaded()
    return [(rid, _REGISTRY[rid].title, _REGISTRY[rid].rationale)
            for rid in sorted(_REGISTRY)]


def build_rules(select: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all by default, minus *ignore*).

    Raises ``ValueError`` on an id that names no registered rule, so a
    typo in ``--select`` fails loudly instead of silently linting
    nothing.
    """
    _ensure_loaded()
    chosen = set(_REGISTRY) if select is None else set(select)
    ignored = set(ignore) if ignore is not None else set()
    unknown = sorted((chosen | ignored) - set(_REGISTRY))
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [_REGISTRY[rid]() for rid in sorted(chosen - ignored)]
