"""Text, JSON, and SARIF renderings of an :class:`AnalysisReport`.

The JSON document is versioned and schema-stable (tests pin it): CI and
tooling consume it, so fields are only ever added, never renamed.  The
SARIF document follows the 2.1.0 schema so code-scanning UIs (GitHub,
VS Code SARIF viewers) can ingest the same run CI gates on.
"""

from __future__ import annotations

import json

from .engine import AnalysisReport
from .findings import Finding
from .registry import rule_catalog

JSON_FORMAT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://json.schemastore.org/sarif-2.1.0.json")


def _finding_dict(finding: Finding) -> dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": finding.suppressed,
        "justification": finding.justification,
        "baselined": finding.baselined,
    }


def render_json(report: AnalysisReport) -> str:
    document = {
        "version": JSON_FORMAT_VERSION,
        "files_scanned": report.files_scanned,
        "rules": list(report.rule_ids),
        "summary": {
            "total": len(report.findings),
            "suppressed": len(report.suppressed),
            "unsuppressed": len(report.unsuppressed),
            "baselined": len(report.baselined),
            "active": len(report.active),
        },
        "findings": [_finding_dict(f) for f in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_text(report: AnalysisReport, *,
                show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        if finding.suppressed:
            marker = f" (suppressed: {finding.justification})"
        elif finding.baselined:
            marker = " (baselined)"
        else:
            marker = ""
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"{finding.message}{marker}")
    n_bad = len(report.active)
    tail = f"({len(report.suppressed)} suppressed)"
    if report.baselined:
        tail = (f"({len(report.suppressed)} suppressed, "
                f"{len(report.baselined)} baselined)")
    lines.append(f"{report.files_scanned} files scanned, "
                 f"{len(report.rule_ids)} rules, "
                 f"{n_bad} finding{'s' if n_bad != 1 else ''} "
                 f"{tail}")
    return "\n".join(lines)


def _sarif_result(finding: Finding,
                  rule_index: dict[str, int]) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule,
        "level": "note" if finding.suppressed else "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col},
            },
        }],
    }
    index = rule_index.get(finding.rule)
    if index is not None:
        result["ruleIndex"] = index
    suppressions: list[dict[str, object]] = []
    if finding.suppressed:
        entry: dict[str, object] = {"kind": "inSource"}
        if finding.justification:
            entry["justification"] = finding.justification
        suppressions.append(entry)
    if finding.baselined:
        suppressions.append({"kind": "external",
                             "justification": "matched baseline snapshot"})
    if suppressions:
        result["suppressions"] = suppressions
    return result


def render_sarif(report: AnalysisReport) -> str:
    """SARIF v2.1.0 document for code-scanning consumers."""
    catalog = rule_catalog()
    rule_index = {rule_id: n for n, (rule_id, _, _) in enumerate(catalog)}
    driver = {
        "name": "repro.analysis",
        "informationUri": "docs/ANALYSIS.md",
        "rules": [{
            "id": rule_id,
            "shortDescription": {"text": title},
            "fullDescription": {"text": rationale},
        } for rule_id, title, rationale in catalog],
    }
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "results": [_sarif_result(f, rule_index)
                        for f in report.findings],
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
