"""Text and JSON renderings of an :class:`AnalysisReport`.

The JSON document is versioned and schema-stable (tests pin it): CI and
tooling consume it, so fields are only ever added, never renamed.
"""

from __future__ import annotations

import json

from .engine import AnalysisReport
from .findings import Finding

JSON_FORMAT_VERSION = 1


def _finding_dict(finding: Finding) -> dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "suppressed": finding.suppressed,
        "justification": finding.justification,
    }


def render_json(report: AnalysisReport) -> str:
    document = {
        "version": JSON_FORMAT_VERSION,
        "files_scanned": report.files_scanned,
        "rules": list(report.rule_ids),
        "summary": {
            "total": len(report.findings),
            "suppressed": len(report.suppressed),
            "unsuppressed": len(report.unsuppressed),
        },
        "findings": [_finding_dict(f) for f in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_text(report: AnalysisReport, *,
                show_suppressed: bool = False) -> str:
    lines: list[str] = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        marker = f" (suppressed: {finding.justification})" \
            if finding.suppressed else ""
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"{finding.message}{marker}")
    n_bad = len(report.unsuppressed)
    lines.append(f"{report.files_scanned} files scanned, "
                 f"{len(report.rule_ids)} rules, "
                 f"{n_bad} finding{'s' if n_bad != 1 else ''} "
                 f"({len(report.suppressed)} suppressed)")
    return "\n".join(lines)
