"""Forward dataflow over function summaries.

Two interprocedural facts are computed here, both as small fixed points
over the call graph:

* **escaping parameters** — a parameter *escapes* when its value is
  captured by a worker callable submitted inside the function, or when
  it is passed (positionally or by keyword) to a project callee whose
  corresponding parameter escapes.  This is the relation that lets
  RPX001 trace a freshly-minted RNG through any number of plain calls
  into a ``WorkerPool.submit`` in another module.
* **worker reachability** — the set of project functions reachable from
  a worker callable's body through resolved call edges.  RPX002 uses it
  to find engine-state mutations that run on worker threads even though
  no single module shows both the submit and the mutation.

Both passes are conservative in the safe direction: unresolved calls
grow no edges, so the analysis under-approximates reachability and
never invents a path that cannot exist in the project source.
"""

from __future__ import annotations

from .graph import ProjectGraph
from .summaries import FunctionSummary

__all__ = ["propagate_escapes", "reachable_from",
           "tainted_args_at_call_sites"]

#: Fixed-point iteration cap (the lattice is tiny; this never binds in
#: practice, it just bounds pathological fixture graphs).
_MAX_ROUNDS = 16

#: BFS depth cap for worker reachability.
_MAX_DEPTH = 12


def _param_index(summary: FunctionSummary, name: str) -> int | None:
    params = summary.fn.param_names
    try:
        return params.index(name)
    except ValueError:
        return None


def propagate_escapes(summaries: dict[str, FunctionSummary]) -> None:
    """Fill every summary's ``escaping_params`` to a fixed point.

    Base case: a parameter captured by a worker at one of the function's
    own submit sites.  Inductive case: a parameter forwarded to a
    project callee at a position/keyword whose parameter escapes.
    """
    # Base case.
    for summary in summaries.values():
        params = set(summary.fn.param_names)
        for site in summary.submit_sites:
            for name in site.captured:
                if name in params:
                    summary.escaping_params.add(name)
    # Fixed point over forwarded arguments.
    for _ in range(_MAX_ROUNDS):
        changed = False
        for summary in summaries.values():
            params = set(summary.fn.param_names)
            for call in summary.calls:
                if call.callee is None:
                    continue
                callee = summaries.get(call.callee)
                if callee is None:
                    continue
                callee_params = callee.fn.param_names
                offset = 1 if callee.fn.cls is not None else 0
                for pos, arg in enumerate(call.arg_names):
                    if arg is None or arg not in params:
                        continue
                    idx = pos + offset
                    if idx < len(callee_params) \
                            and callee_params[idx] in callee.escaping_params \
                            and arg not in summary.escaping_params:
                        summary.escaping_params.add(arg)
                        changed = True
                for kw, arg in call.kwarg_names:
                    if arg in params and kw in callee.escaping_params \
                            and arg not in summary.escaping_params:
                        summary.escaping_params.add(arg)
                        changed = True
        if not changed:
            break


def reachable_from(roots: tuple[str, ...],
                   summaries: dict[str, FunctionSummary],
                   project: ProjectGraph
                   ) -> dict[str, tuple[str, ...]]:
    """Project functions reachable from *roots*, with one witness path.

    Returns ``{qname: (root, ..., qname)}`` — the first discovered call
    chain, used to render an explainable finding message.
    """
    paths: dict[str, tuple[str, ...]] = {}
    frontier: list[tuple[str, tuple[str, ...]]] = [
        (root, (root,)) for root in roots if root in summaries]
    depth = 0
    while frontier and depth < _MAX_DEPTH:
        next_frontier: list[tuple[str, tuple[str, ...]]] = []
        for qname, path in frontier:
            if qname in paths:
                continue
            paths[qname] = path
            summary = summaries.get(qname)
            if summary is None:
                continue
            for callee in sorted(summary.resolved_callees):
                if callee not in paths:
                    next_frontier.append((callee, path + (callee,)))
        frontier = next_frontier
        depth += 1
    return paths


def tainted_args_at_call_sites(summary: FunctionSummary,
                               summaries: dict[str, FunctionSummary]
                               ) -> list[tuple[int, str, str, str]]:
    """Fresh-RNG locals handed to callees whose parameter escapes.

    Returns ``(lineno, rng name, callee qname, callee param)`` tuples —
    the cross-module half of RPX001 (the local half is a fresh RNG
    captured directly at a submit site).
    """
    out: list[tuple[int, str, str, str]] = []
    fresh = set(summary.fresh_rngs)
    if not fresh:
        return out
    for call in summary.calls:
        if call.callee is None:
            continue
        callee = summaries.get(call.callee)
        if callee is None or not callee.escaping_params:
            continue
        callee_params = callee.fn.param_names
        offset = 1 if callee.fn.cls is not None else 0
        for pos, arg in enumerate(call.arg_names):
            if arg is None or arg not in fresh:
                continue
            idx = pos + offset
            if idx < len(callee_params) \
                    and callee_params[idx] in callee.escaping_params:
                out.append((call.lineno, arg, call.callee,
                            callee_params[idx]))
        for kw, arg in call.kwarg_names:
            if arg in fresh and kw in callee.escaping_params:
                out.append((call.lineno, arg, call.callee, kw))
    return out
