"""Per-function summaries: what each callable does to tracked entities.

A summary is the unit the dataflow pass composes: for every project
function it records, from one AST walk,

* **calls** — every call expression with its best-effort resolution to a
  project symbol (the call-graph edges);
* **RNG births** — local names bound from ``np.random.default_rng`` /
  ``as_generator`` (*fresh* streams) versus ``spawn``/``.spawn`` (*per-
  task children*, the sanctioned way to hand randomness to workers);
* **submit sites** — callables handed to ``WorkerPool.submit`` /
  ``EvaluationSupervisor.submit`` / ``parallel_map``, with the free
  names each worker captures (closure loads plus lambda/def default
  values);
* **self mutations** — assignments, augmented assignments and in-place
  mutator calls on ``self.<attr>`` (the thread-ownership facts);
* **tracer calls** — ``.emit``/``.count``/``.timer``/``.span`` on a
  tracer-shaped receiver, with the literal name when there is one and
  whether the span/timer was entered via ``with`` (the event-contract
  facts);
* **opens** — write-mode ``open()`` calls outside ``with`` items and how
  their handles are stored (the resource-lifecycle facts).

Summaries never hold live AST references beyond the owning function's
nodes, and computing them is linear in the project size.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .graph import FunctionInfo, ProjectGraph, attr_chain

__all__ = ["CallSite", "SubmitSite", "TracerCall", "OpenSite",
           "FunctionSummary", "summarize", "worker_free_names"]

#: Call names that mint a *fresh* RNG stream.
FRESH_RNG_CALLS = frozenset({"default_rng", "as_generator", "RandomState"})

#: Call names that derive per-task child streams (sanctioned for workers).
SPAWN_RNG_CALLS = frozenset({"spawn", "spawn_view"})

#: Attribute names that submit a callable to a worker pool.
SUBMIT_ATTRS = frozenset({"submit"})

#: In-place mutator methods (mirrors RPP004's list).
MUTATORS = frozenset({"append", "extend", "add", "update", "pop", "remove",
                      "insert", "clear", "setdefault"})

#: Tracer method names the event-contract rule cares about.
TRACER_METHODS = frozenset({"emit", "count", "timer", "span"})

_WRITE_MODES = frozenset("wax+")


@dataclass(frozen=True)
class CallSite:
    """One call expression and its resolution (``None`` = external)."""

    lineno: int
    callee: str | None
    attr: str | None            # trailing attribute name, resolved or not
    arg_names: tuple[str | None, ...]        # positional args that are Names
    kwarg_names: tuple[tuple[str, str], ...]  # (kw name, Name arg) pairs


@dataclass(frozen=True)
class SubmitSite:
    """A callable crossing into a worker pool."""

    lineno: int
    col: int
    kind: str                    # "submit" | "parallel_map"
    worker_label: str
    captured: tuple[str, ...]    # free names the worker closes over
    worker_qname: str | None     # resolved project function, if a bare name
    worker_calls: tuple[str, ...]  # resolved calls made inside the worker body


@dataclass(frozen=True)
class TracerCall:
    """One ``tracer.<method>(...)`` site."""

    lineno: int
    col: int
    method: str                  # emit | count | timer | span
    name: str | None             # literal first argument, if any
    literal: bool
    with_item: bool              # span/timer entered via a with statement


@dataclass(frozen=True)
class OpenSite:
    """A write-mode ``open()`` outside a ``with`` item."""

    lineno: int
    col: int
    target: str | None           # "self.<attr>" / local name / None (escapes)


@dataclass
class FunctionSummary:
    """Everything the dataflow pass needs to know about one function."""

    fn: FunctionInfo
    calls: list[CallSite] = field(default_factory=list)
    fresh_rngs: dict[str, int] = field(default_factory=dict)   # name -> line
    spawned_rngs: set[str] = field(default_factory=set)
    submit_sites: list[SubmitSite] = field(default_factory=list)
    self_mutations: list[tuple[str, int]] = field(default_factory=list)
    tracer_calls: list[TracerCall] = field(default_factory=list)
    opens: list[OpenSite] = field(default_factory=list)
    # Filled by the dataflow fixed point: parameters whose value reaches a
    # worker capture in this function or any project callee.
    escaping_params: set[str] = field(default_factory=set)

    @property
    def resolved_callees(self) -> set[str]:
        out = {c.callee for c in self.calls if c.callee is not None}
        for site in self.submit_sites:
            out.update(site.worker_calls)
        return out


def _is_rng_factory(call: ast.Call) -> tuple[bool, bool]:
    """(is fresh birth, is per-task spawn) for a call expression."""
    chain = attr_chain(call.func)
    if not chain:
        return False, False
    tail = chain[-1]
    if tail in SPAWN_RNG_CALLS:
        return False, True
    if tail in FRESH_RNG_CALLS:
        # np.random.default_rng / default_rng / rng_mod.as_generator.
        return True, False
    return False, False


def _local_defs(node: ast.AST) -> dict[str, ast.AST]:
    """Nested function definitions by name (one level is enough)."""
    out: dict[str, ast.AST] = {}
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and child is not node:
            out[child.name] = child
    return out


def _bound_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
                 ) -> set[str]:
    args = node.args
    bound = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    if not isinstance(node, ast.Lambda):
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = child.targets if isinstance(child, ast.Assign) \
                    else [child.target]
                for target in targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            bound.add(name.id)
            elif isinstance(child, (ast.For, ast.comprehension)):
                target = child.target
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
    return bound


def worker_free_names(worker: ast.AST) -> tuple[str, ...]:
    """Free names a worker callable captures from its defining scope.

    Covers closure loads (names read but never bound inside the worker)
    and default-argument values (``lambda r=runner: ...`` captures
    ``runner`` at creation time), which is how this repo's dispatch
    sites actually pass state in.
    """
    if not isinstance(worker, (ast.Lambda, ast.FunctionDef,
                               ast.AsyncFunctionDef)):
        return ()
    bound = _bound_names(worker)
    free: list[str] = []
    # ast.walk(worker) covers the body AND the default-value expressions
    # (defaults evaluate in the defining scope, so their names are
    # captures even though the parameters they initialise are bound).
    for node in ast.walk(worker):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id not in bound and node.id not in free:
            free.append(node.id)
    return tuple(free)


def _calls_in(body: ast.AST, fn: FunctionInfo,
              project: ProjectGraph) -> tuple[str, ...]:
    """Resolved project calls made anywhere inside *body*."""
    out: list[str] = []
    for node in ast.walk(body):
        if isinstance(node, ast.Call):
            qname = project.resolve_call(node.func, fn)
            if qname is not None and qname not in out:
                out.append(qname)
    return tuple(out)


def _self_attr(expr: ast.AST) -> str | None:
    """Attribute name for expressions rooted at ``self.<attr>``."""
    node = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        node = node.value
    return None


def _tracer_receiver(chain: list[str]) -> bool:
    """Whether an attribute chain reads like a tracer method call."""
    if len(chain) < 2:
        return False
    receiver = chain[-2]
    return receiver in ("tracer", "_tracer") or receiver.endswith("tracer")


def _open_write_mode(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Name) and func.id == "open"):
        return False
    mode: ast.expr | None = call.args[1] if len(call.args) >= 2 else None
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in _WRITE_MODES for ch in mode.value)
    return True


def _with_item_calls(fn_node: ast.AST) -> set[int]:
    """ids of call nodes that appear as ``with`` context expressions."""
    out: set[int] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    out.add(id(expr))
    return out


def _summarize_submit(call: ast.Call, kind: str, fn: FunctionInfo,
                      project: ProjectGraph,
                      local_defs: dict[str, ast.AST]) -> SubmitSite:
    worker = call.args[0]
    captured: tuple[str, ...] = ()
    worker_qname: str | None = None
    worker_calls: tuple[str, ...] = ()
    if isinstance(worker, ast.Lambda):
        label = "lambda"
        captured = worker_free_names(worker)
        worker_calls = _calls_in(worker, fn, project)
    elif isinstance(worker, ast.Name):
        label = repr(worker.id)
        nested = local_defs.get(worker.id)
        if nested is not None:
            captured = worker_free_names(nested)
            worker_calls = _calls_in(nested, fn, project)
        else:
            worker_qname = project.resolve_call(worker, fn)
            captured = (worker.id,)
    else:
        label = ast.unparse(worker) if hasattr(ast, "unparse") else "<expr>"
        chain = attr_chain(worker)
        if chain and chain[0] in ("self", "cls"):
            worker_qname = project.resolve_call(worker, fn)
    return SubmitSite(lineno=call.lineno, col=call.col_offset + 1,
                      kind=kind, worker_label=label, captured=captured,
                      worker_qname=worker_qname, worker_calls=worker_calls)


def summarize(fn: FunctionInfo,
              project: ProjectGraph) -> FunctionSummary:
    """Compute the summary of one project function."""
    summary = FunctionSummary(fn=fn)
    node = fn.node
    local_defs = _local_defs(node)
    with_calls = _with_item_calls(node)
    for child in ast.walk(node):
        if isinstance(child, (ast.Assign, ast.AugAssign)):
            targets = child.targets if isinstance(child, ast.Assign) \
                else [child.target]
            value = child.value
            if isinstance(value, ast.Call):
                fresh, spawned = _is_rng_factory(value)
                for target in targets:
                    if isinstance(target, ast.Name):
                        if fresh:
                            summary.fresh_rngs[target.id] = child.lineno
                            summary.spawned_rngs.discard(target.id)
                        elif spawned:
                            summary.spawned_rngs.add(target.id)
                            summary.fresh_rngs.pop(target.id, None)
            # spawn(...)[i] / spawn(...) unpacking marks every target clean.
            if isinstance(value, ast.Subscript) \
                    and isinstance(value.value, ast.Call):
                _, spawned = _is_rng_factory(value.value)
                if spawned:
                    for target in targets:
                        if isinstance(target, ast.Name):
                            summary.spawned_rngs.add(target.id)
                            summary.fresh_rngs.pop(target.id, None)
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    summary.self_mutations.append((attr, child.lineno))
        if not isinstance(child, ast.Call):
            continue
        call = child
        chain = attr_chain(call.func)
        # -- submit sites -----------------------------------------------------
        if chain and chain[-1] in SUBMIT_ATTRS and len(chain) >= 2 \
                and call.args:
            summary.submit_sites.append(
                _summarize_submit(call, "submit", fn, project, local_defs))
        elif chain and chain[-1] == "parallel_map" and call.args:
            summary.submit_sites.append(
                _summarize_submit(call, "parallel_map", fn, project,
                                  local_defs))
        # -- tracer calls -----------------------------------------------------
        if chain and chain[-1] in TRACER_METHODS and _tracer_receiver(chain):
            first = call.args[0] if call.args else None
            literal = isinstance(first, ast.Constant) \
                and isinstance(first.value, str)
            summary.tracer_calls.append(TracerCall(
                lineno=call.lineno, col=call.col_offset + 1,
                method=chain[-1],
                name=first.value if literal else None,  # type: ignore[union-attr]
                literal=literal, with_item=id(call) in with_calls))
        # -- mutator calls on self.<attr> -------------------------------------
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATORS):
            attr = _self_attr(call.func.value)
            if attr is not None:
                summary.self_mutations.append((attr, call.lineno))
        # -- write-mode opens outside with ------------------------------------
        if _open_write_mode(call) and id(call) not in with_calls:
            summary.opens.append(OpenSite(
                lineno=call.lineno, col=call.col_offset + 1,
                target=_open_target(call, node)))
        # -- the call graph edge ----------------------------------------------
        callee = project.resolve_call(call.func, fn)
        arg_names = tuple(a.id if isinstance(a, ast.Name) else None
                          for a in call.args)
        kwarg_names = tuple((kw.arg, kw.value.id) for kw in call.keywords
                            if kw.arg is not None
                            and isinstance(kw.value, ast.Name))
        summary.calls.append(CallSite(
            lineno=call.lineno, callee=callee,
            attr=chain[-1] if chain else None,
            arg_names=arg_names, kwarg_names=kwarg_names))
    return summary


def _open_target(call: ast.Call, fn_node: ast.AST) -> str | None:
    """How an open() result is stored: self attr, local name, or escape."""
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and node.value is call:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    return target.id
                attr = _self_attr(target)
                if attr is not None:
                    return f"self.{attr}"
    return None


def summarize_project(project: ProjectGraph) -> dict[str, FunctionSummary]:
    """Summaries for every project function, keyed by qname."""
    return {fn.qname: summarize(fn, project)
            for fn in project.iter_functions()}
