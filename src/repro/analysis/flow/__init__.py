"""Whole-program analysis substrate for the interprocedural rule family.

The per-module engine (:mod:`repro.analysis.engine`) hands each rule one
file; this package builds the cross-module view the ``RPX`` rules need:

* :mod:`~repro.analysis.flow.graph` — project symbol table + call graph
  over every scanned file;
* :mod:`~repro.analysis.flow.summaries` — per-function summaries of
  reads/writes/submissions with respect to tracked entities (RNGs,
  worker pools, tracers, file handles, ``self`` state);
* :mod:`~repro.analysis.flow.dataflow` — a lightweight forward
  taint/escape pass composed over those summaries.

:class:`FlowProject` bundles all three behind one lazily-computed object
that the engine builds once per run and hands to every rule with
``requires_flow = True``.  Per-module rules never pay for any of this.
"""

from __future__ import annotations

from ..context import ModuleContext
from .dataflow import propagate_escapes
from .graph import (FunctionInfo, ModuleInfo, ProjectGraph, build_project,
                    module_name_for, render_graph)
from .summaries import FunctionSummary, summarize_project

__all__ = ["FlowProject", "FunctionInfo", "FunctionSummary", "ModuleInfo",
           "ProjectGraph", "build_flow_project", "build_project",
           "module_name_for", "render_graph"]


class FlowProject:
    """The whole-program context handed to ``requires_flow`` rules."""

    def __init__(self, graph: ProjectGraph,
                 summaries: dict[str, FunctionSummary]):
        self.graph = graph
        self.summaries = summaries

    @property
    def modules(self) -> dict[str, ModuleInfo]:
        return self.graph.modules

    def render(self) -> str:
        """The ``--graph`` debug dump."""
        return render_graph(self.graph, self.summaries)


def build_flow_project(ctxs: list[ModuleContext]) -> FlowProject:
    """Graph + summaries + escape fixed point over parsed modules."""
    graph = build_project(ctxs)
    summaries = summarize_project(graph)
    propagate_escapes(summaries)
    return FlowProject(graph, summaries)
