"""Project symbol table and call graph for whole-program rules.

The per-module engine sees one file at a time; the invariants the
``RPX`` family protects (seed provenance, thread ownership, event
contracts) span modules.  This module builds the shared substrate those
rules run on:

* a **symbol table** — every module, class and function discovered under
  the scanned paths, keyed by dotted qualified name
  (``repro.core.bo.BOEngine._fold_in``);
* an **import map** per module — local name → dotted target, with
  relative imports resolved against the module's package;
* a **call resolver** — best-effort static resolution of a call
  expression inside a function to a project symbol (local functions,
  imported names, ``self.``/``cls.`` methods including project-resolvable
  base classes, ``module.attr`` chains).

Resolution is deliberately conservative: a call that cannot be resolved
to a project symbol yields ``None`` and simply grows no graph edge, so
whole-program rules under-approximate reachability rather than invent
it.  The graph is a pure function of the scanned files' contents, which
is what makes the flow-phase result cache sound (keyed by the tree
hash — see :mod:`repro.analysis.cache`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator

from ..context import ModuleContext, repro_subpath

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectGraph",
           "build_project", "module_name_for", "render_graph"]

#: Recursion guard for base-class method lookup.
_MRO_DEPTH = 8


def module_name_for(display: str) -> str:
    """Dotted module name for a display path.

    Files under a ``src/repro/`` layout (anywhere in the path, so tmpdir
    fixtures resolve identically to in-repo files) become ``repro.*``
    names; everything else gets a path-derived dotted name that is
    unique within the scan but never collides with the ``repro``
    namespace.
    """
    sub = repro_subpath(display)
    if sub is not None and sub.endswith(".py"):
        dotted = sub[:-3].replace("/", ".")
        if dotted == "__init__" or not dotted:
            return "repro"
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        return f"repro.{dotted}"
    parts = PurePosixPath(display.replace("\\", "/")).parts
    cleaned = [p for p in parts if p not in ("/", "\\")]
    stem = ".".join(cleaned)
    if stem.endswith(".py"):
        stem = stem[:-3]
    return stem.replace(":", "")


@dataclass
class FunctionInfo:
    """One module-level function or class method."""

    qname: str
    name: str
    cls: str | None
    module: str
    display: str
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        names.extend(a.arg for a in args.kwonlyargs)
        return names


@dataclass
class ClassInfo:
    """One class definition: its methods and (raw) base names."""

    qname: str
    name: str
    module: str
    bases: tuple[str, ...]          # dotted source text of each base
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qname
    lineno: int = 0


@dataclass
class ModuleInfo:
    """One parsed module plus its scope tables."""

    name: str
    ctx: ModuleContext = field(repr=False)
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def display(self) -> str:
        return self.ctx.display

    @property
    def package(self) -> str:
        """The package this module resolves relative imports against."""
        if self.display.replace("\\", "/").endswith("/__init__.py"):
            return self.name
        if "." in self.name:
            return self.name.rsplit(".", 1)[0]
        return self.name


def _dotted(expr: ast.expr) -> str | None:
    """Source-text dotted name of ``a.b.c`` expressions (else ``None``)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def attr_chain(expr: ast.expr) -> list[str]:
    """``a.b.c`` → ``["a", "b", "c"]`` (empty for non-name chains)."""
    dotted = _dotted(expr)
    return dotted.split(".") if dotted else []


def _collect_imports(module: ModuleInfo) -> None:
    """Fill ``module.imports`` with local-name → dotted-target entries.

    Function-local imports are folded into the module-wide table: the
    resolver over-approximates visibility slightly rather than modelling
    per-scope import tables.
    """
    pkg_parts = module.package.split(".")
    for node in ast.walk(module.ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                base = ".".join(anchor)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = (f"{base}.{alias.name}"
                                         if base else alias.name)


def _collect_defs(module: ModuleInfo) -> None:
    """Record module-level functions, classes, and class methods.

    Functions nested inside other functions are *not* symbols — they
    belong to their enclosing function's body and are analysed there.
    """
    def visit(body: list[ast.stmt], cls: ClassInfo | None,
              prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(qname=qname, name=stmt.name,
                                    cls=cls.name if cls else None,
                                    module=module.name,
                                    display=module.display, node=stmt)
                local = f"{cls.name}.{stmt.name}" if cls else stmt.name
                module.functions[local] = info
                if cls is not None:
                    cls.methods[stmt.name] = qname
            elif isinstance(stmt, ast.ClassDef):
                cqname = f"{prefix}.{stmt.name}"
                bases = tuple(b for b in (_dotted(base) for base in stmt.bases)
                              if b is not None)
                cinfo = ClassInfo(qname=cqname, name=stmt.name,
                                  module=module.name, bases=bases,
                                  lineno=stmt.lineno)
                module.classes[stmt.name] = cinfo
                visit(stmt.body, cinfo, cqname)

    visit(module.ctx.tree.body, None, module.name)


class ProjectGraph:
    """The whole-program view: symbols, imports, and call resolution."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.by_display: dict[str, ModuleInfo] = {
            m.display: m for m in modules}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for mod in modules:
            for fn in mod.functions.values():
                self.functions[fn.qname] = fn
            for cls in mod.classes.values():
                self.classes[cls.qname] = cls

    # -- lookup ---------------------------------------------------------------
    def module_of(self, fn: FunctionInfo) -> ModuleInfo | None:
        return self.modules.get(fn.module)

    def class_of(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.cls is None:
            return None
        mod = self.modules.get(fn.module)
        return mod.classes.get(fn.cls) if mod else None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]

    # -- resolution -----------------------------------------------------------
    def resolve_class(self, dotted: str, module: ModuleInfo) -> ClassInfo | None:
        """Resolve a dotted base-class/receiver name inside *module*."""
        if dotted in module.classes:
            return module.classes[dotted]
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            return None
        qname = f"{target}.{rest}" if rest else target
        return self.classes.get(qname)

    def _method_on(self, cls: ClassInfo, name: str,
                   depth: int = 0) -> str | None:
        if name in cls.methods:
            return cls.methods[name]
        if depth >= _MRO_DEPTH:
            return None
        mod = self.modules.get(cls.module)
        if mod is None:
            return None
        for base in cls.bases:
            base_cls = self.resolve_class(base, mod)
            if base_cls is not None:
                found = self._method_on(base_cls, name, depth + 1)
                if found is not None:
                    return found
        return None

    def resolve_call(self, func: ast.expr,
                     scope: FunctionInfo) -> str | None:
        """Best-effort qname of the project function a call targets."""
        module = self.modules.get(scope.module)
        if module is None:
            return None
        chain = attr_chain(func)
        if not chain:
            return None
        if len(chain) == 1:
            name = chain[0]
            info = module.functions.get(name)
            if info is not None:
                return info.qname
            target = module.imports.get(name)
            if target is not None and target in self.functions:
                return target
            return None
        if chain[0] in ("self", "cls") and scope.cls is not None:
            cls = self.class_of(scope)
            if cls is not None and len(chain) == 2:
                return self._method_on(cls, chain[1])
            return None
        # ClassName.method inside the defining module.
        if chain[0] in module.classes and len(chain) == 2:
            return self._method_on(module.classes[chain[0]], chain[1])
        target = module.imports.get(chain[0])
        if target is not None:
            qname = ".".join([target, *chain[1:]])
            if qname in self.functions:
                return qname
            # Imported class: Class.method references.
            cls_qname = ".".join([target, *chain[1:-1]])
            cls = self.classes.get(cls_qname)
            if cls is not None:
                return self._method_on(cls, chain[-1])
        return None


def build_project(ctxs: list[ModuleContext]) -> ProjectGraph:
    """Build the project graph from parsed module contexts."""
    modules: list[ModuleInfo] = []
    seen: set[str] = set()
    for ctx in ctxs:
        name = module_name_for(ctx.display)
        if name in seen:     # duplicate dotted name: keep display-unique
            name = f"{name}@{len(seen)}"
        seen.add(name)
        module = ModuleInfo(name=name, ctx=ctx)
        _collect_imports(module)
        _collect_defs(module)
        modules.append(module)
    return ProjectGraph(modules)


def render_graph(project: ProjectGraph,
                 summaries: dict[str, "object"] | None = None) -> str:
    """Human-readable dump of the graph (the CLI's ``--graph`` output)."""
    lines: list[str] = []
    n_fns = len(project.functions)
    n_classes = len(project.classes)
    lines.append(f"project graph: {len(project.modules)} modules, "
                 f"{n_classes} classes, {n_fns} functions")
    for name in sorted(project.modules):
        mod = project.modules[name]
        lines.append(f"module {name} [{mod.display}]")
        for cls_name in sorted(mod.classes):
            cls = mod.classes[cls_name]
            bases = f"({', '.join(cls.bases)})" if cls.bases else ""
            lines.append(f"  class {cls.name}{bases}")
        for local in sorted(mod.functions):
            fn = mod.functions[local]
            lines.append(f"  def {local}  [line {fn.lineno}]")
            if summaries is not None:
                summary = summaries.get(fn.qname)
                callees = sorted(getattr(summary, "resolved_callees", ()))
                for callee in callees:
                    lines.append(f"    -> {callee}")
    return "\n".join(lines)
