"""Per-module analysis context handed to every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from .suppressions import Suppression, SuppressionProblem, scan_suppressions

#: Packages whose modules make (or directly shape) tuner decisions; the
#: determinism rules are strictest here because any nondeterminism in
#: these paths changes the fixed-seed decision sequence.
DECISION_PACKAGES = ("core", "gp", "ml", "tuners")


def repro_subpath(display: str) -> str | None:
    """Path relative to the ``repro`` package root, or ``None``.

    Recognizes the ``src/repro/`` layout anywhere in the path, so both
    in-repo paths (``src/repro/ml/tree.py``) and test fixtures under a
    tmpdir (``/tmp/x/src/repro/ml/tree.py``) resolve the same way.
    """
    parts = PurePosixPath(display.replace("\\", "/")).parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            rest = parts[i + 2:]
            return "/".join(rest) if rest else None
    return None


@dataclass
class ModuleContext:
    """One parsed module plus its suppression table.

    Rules read the AST (``tree``), the raw ``source``, and the
    path-derived scope helpers; the engine owns suppression matching.
    """

    path: Path
    display: str
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    suppression_problems: list[SuppressionProblem] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, display: str | None = None) -> "ModuleContext":
        """Parse *path*; raises ``SyntaxError`` on unparsable source."""
        return cls.from_source(path, path.read_text(encoding="utf-8"),
                               display=display)

    @classmethod
    def from_source(cls, path: Path, source: str,
                    display: str | None = None) -> "ModuleContext":
        """Parse already-read *source* (the engine reads each file once)."""
        shown = display if display is not None else str(path)
        tree = ast.parse(source, filename=shown)
        suppressions, problems = scan_suppressions(source)
        return cls(path=path, display=shown, source=source, tree=tree,
                   suppressions=suppressions, suppression_problems=problems)

    # -- scope helpers --------------------------------------------------------
    @property
    def repro_subpath(self) -> str | None:
        """Module path relative to ``src/repro/`` (``None`` outside it)."""
        return repro_subpath(self.display)

    @property
    def in_repro_package(self) -> bool:
        return self.repro_subpath is not None

    @property
    def in_decision_path(self) -> bool:
        """Whether this module belongs to a decision-path package."""
        sub = self.repro_subpath
        if sub is None:
            return False
        return any(sub.startswith(pkg + "/") for pkg in DECISION_PACKAGES)

    def is_module(self, *subpaths: str) -> bool:
        """Whether this module is one of the given ``repro``-relative files."""
        return self.repro_subpath in subpaths
