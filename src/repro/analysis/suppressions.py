"""Inline suppression comments: ``# repro: noqa RULE-ID -- justification``.

A suppression silences one or more rule ids on exactly the line the
finding is reported on (the first line of the offending statement).  The
justification after ``--`` is mandatory: a silenced invariant with no
recorded reason is itself a finding (``RPA000``), as is a suppression
that never matches anything — stale noqa comments rot into false
documentation.

Comments are located with :mod:`tokenize` rather than a text scan, so
the marker appearing inside a string literal (as it does in this very
module's tests) is never mistaken for a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: Rule ids look like RPD001 / RPP002 / RPA000.
RULE_ID_RE = re.compile(r"^RP[A-Z]\d{3}$")

_MARKER_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)$")


@dataclass(frozen=True)
class Suppression:
    """A well-formed noqa directive on one source line."""

    line: int
    rules: tuple[str, ...]
    justification: str


@dataclass(frozen=True)
class SuppressionProblem:
    """A malformed directive (reported as an ``RPA000`` finding)."""

    line: int
    message: str


def _parse_rest(rest: str) -> tuple[tuple[str, ...], str | None, str | None]:
    """(rule ids, justification, error-message) for a directive tail."""
    head, sep, tail = rest.partition("--")
    ids = tuple(tok for tok in re.split(r"[,\s]+", head.strip()) if tok)
    if not ids:
        return (), None, "suppression names no rule id"
    bad = [tok for tok in ids if not RULE_ID_RE.match(tok)]
    if bad:
        return (), None, f"malformed rule id {bad[0]!r} in suppression"
    justification = tail.strip()
    if not sep or not justification:
        return (), None, (
            "suppression has no justification (use "
            "'# repro: noqa RULE-ID -- reason')")
    return ids, justification, None


def scan_suppressions(
        source: str,
) -> tuple[dict[int, Suppression], list[SuppressionProblem]]:
    """Extract all directives from *source*, keyed by line number."""
    suppressions: dict[int, Suppression] = {}
    problems: list[SuppressionProblem] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return suppressions, problems  # the parser reports the real error
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _MARKER_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        ids, justification, error = _parse_rest(match.group("rest"))
        if error is not None:
            problems.append(SuppressionProblem(line=line, message=error))
        else:
            assert justification is not None
            suppressions[line] = Suppression(
                line=line, rules=ids, justification=justification)
    return suppressions, problems
