"""Rule pack: importing this package registers every rule.

Families: ``RPD`` determinism, ``RPP`` parallel safety, ``RPF``
fault/journal discipline, ``RPN`` numerical hygiene, ``RPE`` public API
surface hygiene, ``RPA`` linter hygiene (suppression discipline, owned
by the engine and :mod:`repro.analysis.rules.meta`), and ``RPX``
whole-program dataflow rules (seed provenance, thread ownership, event
contracts, resource lifecycle) over :mod:`repro.analysis.flow`.
"""

from __future__ import annotations

from . import (determinism, exports, faults, interproc, meta, numerics,
               parallel)

__all__ = ["determinism", "exports", "faults", "interproc", "meta",
           "numerics", "parallel"]
