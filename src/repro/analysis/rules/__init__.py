"""Rule pack: importing this package registers every rule.

Families: ``RPD`` determinism, ``RPP`` parallel safety, ``RPF``
fault/journal discipline, ``RPN`` numerical hygiene, ``RPE`` public API
surface hygiene, ``RPA`` linter hygiene (suppression discipline, owned
by the engine and :mod:`repro.analysis.rules.meta`).
"""

from __future__ import annotations

from . import determinism, exports, faults, meta, numerics, parallel

__all__ = ["determinism", "exports", "faults", "meta", "numerics",
           "parallel"]
