"""RPF rules: fault handling and journal discipline.

The resilience layer (docs/ROBUSTNESS.md) distinguishes transient faults
from config-caused failures and guarantees crash-safe resume.  Both
guarantees die quietly if exceptions are swallowed blind or evaluation
state is written to disk without the fsync'd journal protocol.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: Modules that own durable file output.  The journal is the only writer
#: of evaluation state, the trace sink is the only writer of trace
#: records (it reuses the journal's fsync discipline), and the session
#: store is the only writer of service lifecycle state (spec/state/
#: result/lock files, all via its atomic durable-write helper);
#: everything else must either go through them or carry an explicit
#: justification.
_OWNED_IO_MODULES = ("core/journal.py", "obs/sinks.py", "serve/store.py")


def _is_swallow_body(body: list[ast.stmt]) -> bool:
    """Handler body that discards the exception without acting on it."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


@register
class BlindExceptionHandler(Rule):
    """RPF001: no bare ``except:`` and no ``except Exception: pass``."""

    id = "RPF001"
    title = "blind exception handler"
    rationale = (
        "The fault injector tags failures as transient vs config-caused; "
        "a bare except (or a swallowed Exception) erases that signal, "
        "hides real bugs, and can eat KeyboardInterrupt/SystemExit. "
        "Catch the specific types the code can actually handle.")

    _BROAD = ("Exception", "BaseException")

    def _broad_names(self, type_expr: ast.expr | None) -> list[str]:
        if type_expr is None:
            return []
        exprs = type_expr.elts if isinstance(type_expr, ast.Tuple) \
            else [type_expr]
        return [e.id for e in exprs
                if isinstance(e, ast.Name) and e.id in self._BROAD]

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:'; name the exception types this code "
                    "can actually recover from")
                continue
            broad = self._broad_names(node.type)
            if broad and _is_swallow_body(node.body):
                yield self.finding(
                    ctx, node,
                    f"'except {broad[0]}' swallows the error without "
                    "handling it; catch specific types or act on the "
                    "failure")


@register
class RawFileWrite(Rule):
    """RPF002: durable writes in ``src/repro`` must be owned."""

    id = "RPF002"
    title = "raw file write outside owned-I/O modules"
    rationale = (
        "Evaluation state must go through the fsync'd EvaluationJournal "
        "API so a crash loses at most the record in flight; ad-hoc "
        "open(...).write/Path.write_text sites are where torn, "
        "un-fsync'd state sneaks in.  Non-journal artifact writers must "
        "say what they write and why it is crash-tolerant.")

    _WRITE_MODES = frozenset("wax+")

    def _open_write_mode(self, call: ast.Call) -> bool:
        func = call.func
        if not (isinstance(func, ast.Name) and func.id == "open"):
            return False
        mode: ast.expr | None = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return False  # default mode "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(ch in self._WRITE_MODES for ch in mode.value)
        return True  # dynamic mode: assume the worst

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_repro_package or ctx.is_module(*_OWNED_IO_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._open_write_mode(node):
                yield self.finding(
                    ctx, node,
                    "open(..., 'w'/'a') outside the owned-I/O modules; "
                    "evaluation state goes through EvaluationJournal, "
                    "other artifacts need a justified suppression")
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("write_text", "write_bytes")):
                yield self.finding(
                    ctx, node,
                    f".{node.func.attr}() outside the owned-I/O modules; "
                    "evaluation state goes through EvaluationJournal, "
                    "other artifacts need a justified suppression")
