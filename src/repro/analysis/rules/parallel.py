"""RPP rules: workers handed to ``repro.utils.parallel`` must be safe.

The process backend pickles the worker callable and every item; the
thread backend shares the interpreter.  Both are deterministic only if
workers are self-contained: picklable (module-level), free of captured
``self`` state, and never mutating shared RNGs or module globals.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: Backends that never pickle the worker; a literal one of these makes a
#: closure worker safe to submit.
_PICKLE_FREE_BACKENDS = ("thread", "serial")


def _parallel_map_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name == "parallel_map":
            yield node


def _backend_is_pickle_free(call: ast.Call) -> bool:
    """True only when the backend is *statically* known not to pickle.

    ``parallel_map`` defaults to the thread backend, so an absent
    ``backend=`` kwarg is safe; a non-literal backend (e.g.
    ``self.parallel_backend``) may resolve to "process" at runtime and is
    treated as pickling.
    """
    for kw in call.keywords:
        if kw.arg == "backend":
            return (isinstance(kw.value, ast.Constant)
                    and kw.value.value in _PICKLE_FREE_BACKENDS)
    return True


def _nested_function_defs(tree: ast.Module) -> dict[str, ast.AST]:
    """Functions defined inside another function, by name."""
    nested: dict[str, ast.AST] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested[child.name] = child
    return nested


def _references_self(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Name) and n.id == "self"
               for n in ast.walk(node))


@register
class NonPicklableWorker(Rule):
    """RPP001: process-capable workers must be module-level callables."""

    id = "RPP001"
    title = "non-module-level parallel worker"
    rationale = (
        "A lambda or nested function submitted where the backend may be "
        "'process' cannot be pickled; the failure only appears once "
        "ROBOTUNE_JOBS enables the pool, long after the code merged. "
        "Define the worker at module level (functools.partial is fine).")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested = _nested_function_defs(ctx.tree)
        for call in _parallel_map_calls(ctx.tree):
            if _backend_is_pickle_free(call) or not call.args:
                continue
            worker = call.args[0]
            if isinstance(worker, ast.Lambda):
                yield self.finding(
                    ctx, call,
                    "lambda submitted to parallel_map with a possibly-"
                    "process backend; use a module-level function")
            elif isinstance(worker, ast.Name) and worker.id in nested:
                yield self.finding(
                    ctx, call,
                    f"nested function {worker.id!r} submitted to "
                    "parallel_map with a possibly-process backend; move it "
                    "to module level so it pickles")


@register
class WorkerClosesOverSelf(Rule):
    """RPP002: process-capable workers must not capture ``self``."""

    id = "RPP002"
    title = "parallel worker captures self"
    rationale = (
        "A bound method (or closure over self) submitted to a possibly-"
        "process pool drags the whole object through pickle: either it "
        "fails outright or each worker mutates a private copy, silently "
        "diverging from the serial decision sequence.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested = _nested_function_defs(ctx.tree)
        for call in _parallel_map_calls(ctx.tree):
            if _backend_is_pickle_free(call) or not call.args:
                continue
            worker = call.args[0]
            if (isinstance(worker, ast.Attribute)
                    and isinstance(worker.value, ast.Name)
                    and worker.value.id == "self"):
                yield self.finding(
                    ctx, call,
                    f"bound method self.{worker.attr} submitted to "
                    "parallel_map with a possibly-process backend; workers "
                    "must not capture self")
            elif (isinstance(worker, ast.Name) and worker.id in nested
                    and _references_self(nested[worker.id])):
                yield self.finding(
                    ctx, call,
                    f"worker {worker.id!r} closes over self; pass explicit "
                    "state through the items instead")


def _submit_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"):
            yield node


def _self_attribute(expr: ast.AST) -> str | None:
    """The attribute name when *expr* is rooted at ``self.<attr>...``."""
    while isinstance(expr, (ast.Subscript, ast.Attribute)):
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return expr.attr
        expr = expr.value
    return None


@register
class WorkerMutatesEngineState(Rule):
    """RPP004: submitted workers must not mutate shared engine state."""

    id = "RPP004"
    title = "worker callable mutates self"
    rationale = (
        "A callable handed to a pool's submit() runs on a worker thread; "
        "writing self.<attr> from it races the engine loop and makes "
        "results depend on completion order, breaking the async engine's "
        "determinism contract. Workers return results; all shared-state "
        "mutation belongs in the engine's fold-in method, on the "
        "collecting side of next_completed().")

    #: Methods that mutate their receiver in place.
    _MUTATORS = ("append", "extend", "add", "update", "pop", "remove",
                 "insert", "clear", "setdefault")

    def _mutations(self, body: ast.AST) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(body):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    attr = _self_attribute(target)
                    if attr is not None:
                        yield node, f"assigns self.{attr}"
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._MUTATORS):
                attr = _self_attribute(node.func.value)
                if attr is not None:
                    yield node, f"calls self.{attr}.{node.func.attr}()"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        nested = _nested_function_defs(ctx.tree)
        for call in _submit_calls(ctx.tree):
            if not call.args:
                continue
            worker = call.args[0]
            if isinstance(worker, ast.Lambda):
                body: ast.AST | None = worker.body
                label = "lambda"
            elif isinstance(worker, ast.Name) and worker.id in nested:
                body = nested[worker.id]
                label = repr(worker.id)
            else:
                body = None
            if body is None:
                continue
            for node, what in self._mutations(body):
                yield self.finding(
                    ctx, node,
                    f"worker {label} submitted to a pool {what}; workers "
                    "must return results and leave shared-state mutation "
                    "to the engine's fold-in method")


@register
class SharedStateMutation(Rule):
    """RPP003: no ``global`` mutation and no shared-RNG default args."""

    id = "RPP003"
    title = "shared mutable state"
    rationale = (
        "`global` rebinding from inside a function and RNGs created in a "
        "default argument are process-wide state: workers and repeated "
        "calls share one stream, so results depend on call ordering. "
        "Thread RNGs explicitly (repro.utils.rng.spawn).")

    _RNG_FACTORIES = ("default_rng", "as_generator", "RandomState")

    def _is_rng_factory(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        func = expr.func
        if isinstance(func, ast.Name):
            return func.id in self._RNG_FACTORIES
        if isinstance(func, ast.Attribute):
            return func.attr in self._RNG_FACTORIES
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx, node,
                    f"'global {', '.join(node.names)}' rebinds shared "
                    "module state from a function; pass state explicitly")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                defaults = list(node.args.defaults)
                defaults.extend(d for d in node.args.kw_defaults
                                if d is not None)
                for default in defaults:
                    if self._is_rng_factory(default):
                        yield self.finding(
                            ctx, default,
                            "RNG constructed in a default argument is "
                            "shared across every call; default to None and "
                            "coerce via repro.utils.rng.as_generator")


#: Attribute calls that block forever when called with no arguments.
#: Requiring *zero positional args* keeps the usual false positives out:
#: ``d.get(key)``, ``",".join(parts)`` and ``os.path.join(a, b)`` all
#: take positionals, while ``queue.get()``, ``future.result()`` and
#: ``thread.join()`` without a ``timeout=`` are unbounded waits.
_BLOCKING_ATTRS = ("get", "result", "join")


@register
class UnboundedBlockingCall(Rule):
    """RPP005: no unbounded blocking waits outside the pool layer."""

    id = "RPP005"
    title = "unbounded blocking call"
    rationale = (
        "queue.get(), Future.result() and Thread.join() with no timeout "
        "wait forever: one hung worker then wedges the whole engine, which "
        "is exactly the failure mode the supervision layer exists to "
        "prevent (docs/ROBUSTNESS.md).  All blocking waits belong in "
        "utils/parallel.py (whose waits are bounded or abandonable) and "
        "supervise/ (which owns the deadline machinery); everywhere else, "
        "pass a timeout and handle the expiry.")

    _ALLOWED_MODULES = ("utils/parallel.py",)

    def _exempt(self, ctx: ModuleContext) -> bool:
        sub = ctx.repro_subpath
        if sub is None:      # tests, benchmarks, tools — out of scope
            return True
        return (sub.startswith("supervise/")
                or ctx.is_module(*self._ALLOWED_MODULES))

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self._exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_ATTRS):
                continue
            if node.args:
                continue  # positional args rule out the blocking overloads
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield self.finding(
                ctx, node,
                f".{node.func.attr}() call with no timeout blocks "
                "unboundedly on a hung task; pass timeout= (and handle "
                "the expiry) or route the wait through utils/parallel "
                "or repro.supervise")
