"""RPA rules: the linter polices its own escape hatch.

A suppression is a recorded debt: it must name the rule it silences and
say why the violation is acceptable.  Malformed directives are reported
here; *unused* directives (a noqa whose rule never fires on that line)
are detected by the engine after all rules run, and reported under the
same id so one ``--select RPA000`` covers all suppression hygiene.
"""

from __future__ import annotations

from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register
from .. import registry


@register
class SuppressionHygiene(Rule):
    """RPA000: suppressions must be well-formed and name real rules."""

    id = "RPA000"
    title = "suppression hygiene"
    rationale = (
        "An unjustified or stale '# repro: noqa' silences an invariant "
        "with no audit trail; every suppression must name a registered "
        "rule, carry a '-- justification', and actually match a "
        "finding.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for problem in ctx.suppression_problems:
            yield self.finding(ctx, problem.line, problem.message)
        known = set(registry.all_rule_ids())
        for sup in ctx.suppressions.values():
            for rule_id in sup.rules:
                if rule_id not in known:
                    yield self.finding(
                        ctx, sup.line,
                        f"suppression names unknown rule {rule_id!r}")
