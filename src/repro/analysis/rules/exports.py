"""RPE rules: public API surface hygiene.

``repro.core.__init__`` is the package's front door; every name in its
``__all__`` is a promise that someone consumes it.  An export nothing in
the package (or the benchmark suite) references is either dead weight or
an API kept alive for external users only — the first should be removed,
the second must say so explicitly with a justified suppression, so the
public surface never grows by accretion.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..context import ModuleContext, repro_subpath
from ..findings import Finding
from ..registry import FlowRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..flow import FlowProject

#: Directories (relative to the repo root) whose modules count as call
#: sites.  Tests deliberately do not: a test-only export has no consumer.
_CALLER_DIRS = ("src/repro", "benchmarks")


def _all_entries(tree: ast.Module) -> list[tuple[str, int]]:
    """``(name, line)`` for every string element of a module's ``__all__``."""
    out: list[tuple[str, int]] = []
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    out.append((elt.value, elt.lineno))
    return out


def _origin_modules(tree: ast.Module) -> dict[str, str]:
    """Map each imported name to the relative module it comes from."""
    origins: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.level >= 1 and node.module:
            for alias in node.names:
                origins[alias.asname or alias.name] = node.module
    return origins


@register
class DeadCoreExport(FlowRule):
    """RPE001: every ``repro.core`` export has a non-test call site.

    A whole-program rule since its verdict depends on *every* scanned
    module, not just ``core/__init__.py`` — which is also why it must
    never enter the per-module result cache.  In project mode caller
    sources come from the already-parsed graph; the single-file path
    (``analyze_file``) keeps the original disk scan as a fallback so the
    rule still works without a project.
    """

    id = "RPE001"
    title = "public export without a call site"
    rationale = (
        "A name exported from repro.core that nothing in src/repro or "
        "benchmarks/ references is untested API surface growing by "
        "accretion: remove it, or suppress with a justification naming "
        "the external consumer it serves.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_module("core/__init__.py"):
            return
        yield from self._check_init(ctx, self._caller_sources(ctx.path))

    def check_project(self, project: "FlowProject") -> Iterator[Finding]:
        init: ModuleContext | None = None
        callers: list[tuple[str, str]] = []
        bench_scanned = False
        for mod in project.modules.values():
            ctx = mod.ctx
            if ctx.is_module("core/__init__.py"):
                init = ctx
            sub = ctx.repro_subpath
            display = ctx.display.replace("\\", "/")
            if sub is not None:
                if not display.endswith("/__init__.py"):
                    callers.append((sub, ctx.source))
            elif "benchmarks/" in display or display.startswith("benchmarks"):
                bench_scanned = True
                callers.append((display, ctx.source))
        if init is None:
            return
        if not bench_scanned:
            # Benchmarks outside the scan still count as consumers, so a
            # src-only run reports the same surface as a full run.
            callers.extend(self._bench_sources(init.path))
        yield from self._check_init(init, callers)

    def _check_init(self, ctx: ModuleContext,
                    callers: list[tuple[str, str]]) -> Iterator[Finding]:
        entries = _all_entries(ctx.tree)
        if not entries:
            return
        origins = _origin_modules(ctx.tree)
        for name, line in entries:
            origin = origins.get(name)
            # The defining module and re-exporting __init__ files do not
            # count as consumers — only genuine call sites do.
            skip = {f"core/{origin.lstrip('.')}.py"} if origin else set()
            pattern = re.compile(rf"\b{re.escape(name)}\b")
            if not any(pattern.search(text)
                       for sub, text in callers if sub not in skip):
                yield self.finding(
                    ctx, line,
                    f"export {name!r} has no call site in "
                    f"{' or '.join(_CALLER_DIRS)}; remove it or suppress "
                    "with the external consumer it serves")

    @staticmethod
    def _caller_sources(init_path: Path) -> list[tuple[str, str]]:
        """``(repro-relative-or-bench path, source)`` for candidate callers."""
        pkg_root = init_path.resolve().parent.parent       # src/repro
        out: list[tuple[str, str]] = []
        for py in sorted(pkg_root.rglob("*.py")):
            if py.name == "__init__.py":
                continue
            try:
                out.append((py.relative_to(pkg_root).as_posix(),
                            py.read_text(encoding="utf-8")))
            except (OSError, UnicodeDecodeError):
                continue
        out.extend(DeadCoreExport._bench_sources(init_path))
        return out

    @staticmethod
    def _bench_sources(init_path: Path) -> list[tuple[str, str]]:
        repo_root = init_path.resolve().parent.parent.parent.parent
        bench = repo_root / "benchmarks"
        out: list[tuple[str, str]] = []
        if bench.is_dir():
            for py in sorted(bench.rglob("*.py")):
                try:
                    out.append((f"benchmarks/{py.relative_to(bench).as_posix()}",
                                py.read_text(encoding="utf-8")))
                except (OSError, UnicodeDecodeError):
                    continue
        return out
