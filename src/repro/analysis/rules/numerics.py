"""RPN rules: numerical hygiene on the surrogate/decision path.

The GP layer owns the one place where ill-conditioned linear algebra is
allowed to fail and retry with jitter (gp/gpr.py); everywhere else a raw
factorization, an exact float comparison, or an unguarded std
denominator turns a degenerate observation window into a crash or NaN
decisions (the all-censored case a fault-heavy session produces).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: Factorization/solve primitives that require the caller to own
#: conditioning (jitter retry, fallback): allowed only under gp/.
_FACTORIZATIONS = frozenset({
    "cholesky", "cho_factor", "cho_solve", "solve", "solve_triangular",
    "inv", "lstsq",
})

_LINALG_MODULES = ("numpy.linalg", "scipy.linalg")


@register
class RawFactorizationOutsideGP(Rule):
    """RPN001: linalg factorizations stay inside ``gp/``."""

    id = "RPN001"
    title = "raw linalg factorization outside gp/"
    rationale = (
        "gp/gpr.py owns the jitter-retry and refit fallback for "
        "ill-conditioned covariance; a raw np.linalg.cholesky/solve "
        "elsewhere crashes on the first degenerate window instead of "
        "degrading gracefully.  Route through the GP layer or a guarded "
        "helper.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        sub = ctx.repro_subpath
        if sub is None or sub.startswith("gp/"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _FACTORIZATIONS
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr == "linalg"):
                    yield self.finding(
                        ctx, node,
                        f"raw linalg.{func.attr}() outside gp/; only the "
                        "GP layer owns the jitter retry for "
                        "ill-conditioned systems")
            elif (isinstance(node, ast.ImportFrom)
                    and node.module in _LINALG_MODULES):
                for alias in node.names:
                    if alias.name in _FACTORIZATIONS:
                        yield self.finding(
                            ctx, node,
                            f"import of {node.module}.{alias.name} outside "
                            "gp/; factorizations live behind the GP "
                            "layer's conditioning guards")


@register
class FloatLiteralEquality(Rule):
    """RPN002: no ``==``/``!=`` against non-zero float literals."""

    id = "RPN002"
    title = "float-literal equality"
    rationale = (
        "Exact equality against a float literal is representation "
        "roulette after any arithmetic; compare with a tolerance "
        "(math.isclose / np.isclose) or restructure.  Comparing against "
        "exactly 0.0 is allowed: it is the idiomatic degenerate-data "
        "check (identical targets, zero spread) and involves no "
        "rounding.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparands = [node.left, *node.comparators]
            relevant = [op for op in node.ops
                        if isinstance(op, (ast.Eq, ast.NotEq))]
            if not relevant:
                continue
            for comp in comparands:
                if (isinstance(comp, ast.Constant)
                        and isinstance(comp.value, float)
                        and comp.value != 0.0):
                    yield self.finding(
                        ctx, node,
                        f"equality comparison against float literal "
                        f"{comp.value!r}; use a tolerance "
                        "(math.isclose/np.isclose)")
                    break


@register
class UnguardedStdDenominator(Rule):
    """RPN003: std/var denominators route through guarded helpers."""

    id = "RPN003"
    title = "unguarded std/var denominator"
    rationale = (
        "Dividing by a freshly computed std/var explodes on the "
        "degenerate windows fault-heavy sessions produce (all "
        "evaluations censored at one cap => zero spread => inf/NaN "
        "decisions).  Route through a floor-guarded helper like "
        "repro.core.bo._safe_std.")

    def _computes_spread(self, expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("std", "var")):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            denominator: ast.expr | None = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                denominator = node.right
            elif (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Div)):
                denominator = node.value
            if denominator is not None and self._computes_spread(denominator):
                yield self.finding(
                    ctx, node,
                    "division by a raw .std()/.var(); use a floor-guarded "
                    "helper (_safe_std) so degenerate windows cannot "
                    "produce inf/NaN")
