"""RPX rules: whole-program invariants over the flow layer.

The per-module families catch violations visible in one file; these four
run on the :class:`repro.analysis.flow.FlowProject` (symbol table + call
graph + per-function summaries + taint pass) and protect the invariants
that span modules:

* **RPX001** — a fresh RNG must not cross into a worker callable; only
  per-task spawned children may (the exact bug class the golden parity
  digests detect only after the fact).
* **RPX002** — engine-owner state (``BOEngine``,
  ``EvaluationSupervisor``, ``PoisonQuarantine``) must not be mutated by
  anything *reachable* from a worker-submitted callable; all folding
  happens on the collecting side (generalizes RPP004 from syntactic
  self-mutation to real cross-function reachability).
* **RPX003** — every tracer event/counter/timer/span name must resolve
  statically to the typed catalogs in ``obs/events.py``, and spans and
  timers must be entered via ``with`` so nesting is balanced on every
  path.
* **RPX004** — journal/trace file handles opened outside ``with`` must
  be provably closed *and* fsynced by their owning scope (extends
  RPF002's ownership discipline beyond module boundaries).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from ..registry import FlowRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..flow import FlowProject
    from ..flow.summaries import FunctionSummary

#: Classes whose mutable state is owned by a single driving thread.
OWNER_CLASSES = frozenset({"BOEngine", "EvaluationSupervisor",
                           "PoisonQuarantine"})

#: Catalog variables read from ``obs/events.py`` by RPX003.
_CATALOG_VARS = {"emit": "EVENT_TYPES", "count": "COUNTERS",
                 "timer": "TIMERS", "span": "SPANS"}


@register
class SeedProvenance(FlowRule):
    """RPX001: fresh RNGs must not cross into worker callables."""

    id = "RPX001"
    title = "fresh RNG crosses into a worker"
    rationale = (
        "A Generator born from default_rng/as_generator is one stream; "
        "capturing it in a callable submitted to WorkerPool/parallel_map "
        "makes draws depend on completion order, which silently changes "
        "the fixed-seed decision sequence.  Spawn a child per task "
        "(repro.utils.rng.spawn / Generator.spawn) and pass children "
        "through the work items instead.")

    def check_project(self, project: "FlowProject") -> Iterator[Finding]:
        from ..flow.dataflow import tainted_args_at_call_sites
        for qname in sorted(project.summaries):
            summary = project.summaries[qname]
            display = summary.fn.display
            # Local half: a fresh RNG captured directly at a submit site.
            fresh = set(summary.fresh_rngs)
            for site in summary.submit_sites:
                for name in site.captured:
                    if name in fresh:
                        yield Finding(
                            rule=self.id, path=display, line=site.lineno,
                            col=site.col,
                            message=(f"worker {site.worker_label} submitted "
                                     f"via {site.kind} captures RNG "
                                     f"{name!r} born at line "
                                     f"{summary.fresh_rngs[name]}; spawn a "
                                     "per-task child instead"))
            # Cross-module half: a fresh RNG forwarded to a callee whose
            # parameter (transitively) escapes into a worker.
            for lineno, rng, callee, param in tainted_args_at_call_sites(
                    summary, project.summaries):
                yield Finding(
                    rule=self.id, path=display, line=lineno, col=1,
                    message=(f"RNG {rng!r} born at line "
                             f"{summary.fresh_rngs[rng]} flows into "
                             f"{callee}() whose parameter {param!r} is "
                             "captured by a worker callable; spawn "
                             "per-task children at the dispatch site"))


@register
class ThreadOwnership(FlowRule):
    """RPX002: worker-reachable code must not mutate engine-owner state."""

    id = "RPX002"
    title = "worker-reachable mutation of engine-owner state"
    rationale = (
        "BOEngine/EvaluationSupervisor/PoisonQuarantine attributes are "
        "folded by exactly one thread (the _fold_in-style collecting "
        "side of next_completed()); a method that mutates them and is "
        "reachable from a submitted callable runs on a worker thread and "
        "races the owner, making results depend on completion order. "
        "Workers return results; the engine folds them.")

    def check_project(self, project: "FlowProject") -> Iterator[Finding]:
        from ..flow.dataflow import reachable_from
        for qname in sorted(project.summaries):
            summary = project.summaries[qname]
            for site in summary.submit_sites:
                roots = tuple(site.worker_calls)
                if site.worker_qname is not None:
                    roots = roots + (site.worker_qname,)
                if not roots:
                    continue
                paths = reachable_from(roots, project.summaries,
                                       project.graph)
                for reached in sorted(paths):
                    target = project.summaries.get(reached)
                    if target is None or not target.self_mutations:
                        continue
                    cls = target.fn.cls
                    if cls not in OWNER_CLASSES:
                        continue
                    attr, _line = target.self_mutations[0]
                    chain = " -> ".join(paths[reached])
                    yield Finding(
                        rule=self.id, path=summary.fn.display,
                        line=site.lineno, col=site.col,
                        message=(f"worker {site.worker_label} submitted "
                                 f"via {site.kind} reaches "
                                 f"{reached}() which mutates "
                                 f"{cls}.{attr} (path: {chain}); route the "
                                 "mutation through the engine's single-"
                                 "owner fold-in on the collecting side"))


@register
class EventContract(FlowRule):
    """RPX003: tracer names must resolve to the typed catalogs."""

    id = "RPX003"
    title = "tracer call off the typed catalog"
    rationale = (
        "obs/events.py is the single source of truth for event, counter, "
        "timer and span names: reporting, validation and the docs all key "
        "off it.  A name emitted anywhere else that the catalog does not "
        "carry is invisible to validate_trace and the summary fold-ups; "
        "a span/timer built but not entered via 'with' records nothing "
        "and silently unbalances nesting.")

    def _catalogs(self, project: "FlowProject") -> dict[str, set[str]] | None:
        events = project.modules.get("repro.obs.events")
        if events is None:
            return None
        found: dict[str, set[str]] = {}
        for node in events.ctx.tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not (isinstance(target, ast.Name) and isinstance(value, ast.Dict)):
                continue
            if target.id in _CATALOG_VARS.values():
                found[target.id] = {
                    k.value for k in value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)}
        if "EVENT_TYPES" not in found:
            return None
        return found

    def check_project(self, project: "FlowProject") -> Iterator[Finding]:
        catalogs = self._catalogs(project)
        if catalogs is None:
            return
        for qname in sorted(project.summaries):
            summary = project.summaries[qname]
            display = summary.fn.display
            sub = _module_subpath(display)
            if sub is None or sub.startswith("obs/"):
                continue
            for call in summary.tracer_calls:
                catalog_name = _CATALOG_VARS[call.method]
                catalog = catalogs.get(catalog_name)
                if call.method in ("timer", "span") and not call.with_item:
                    yield Finding(
                        rule=self.id, path=display, line=call.lineno,
                        col=call.col,
                        message=(f"tracer.{call.method}(...) not entered "
                                 "via 'with': the context manager records "
                                 "nothing unless entered, and span nesting "
                                 "must balance on every path"))
                if not call.literal:
                    yield Finding(
                        rule=self.id, path=display, line=call.lineno,
                        col=call.col,
                        message=(f"tracer.{call.method}() name is not a "
                                 "string literal, so it cannot be checked "
                                 f"against obs.events.{catalog_name}; use "
                                 "a literal from the catalog"))
                elif catalog is not None and call.name not in catalog:
                    yield Finding(
                        rule=self.id, path=display, line=call.lineno,
                        col=call.col,
                        message=(f"tracer.{call.method}({call.name!r}) "
                                 "names no entry in obs.events."
                                 f"{catalog_name}; add it to the catalog "
                                 "with a one-line description"))


@register
class ResourceLifecycle(FlowRule):
    """RPX004: non-``with`` write handles must be closed and fsynced."""

    id = "RPX004"
    title = "write handle without a proven close+fsync path"
    rationale = (
        "The crash-safety story (docs/ROBUSTNESS.md) rests on every "
        "durable writer flushing and fsyncing before a crash can tear "
        "state: a write-mode handle opened outside 'with' whose owning "
        "scope shows no .close() call and no os.fsync(fh.fileno()) is a "
        "torn-state hole that no single-module rule can see when the "
        "open and the close live in different methods.")

    def check_project(self, project: "FlowProject") -> Iterator[Finding]:
        for qname in sorted(project.summaries):
            summary = project.summaries[qname]
            display = summary.fn.display
            if _module_subpath(display) is None:
                continue          # only src/repro owns durable state
            for site in summary.opens:
                if site.target is None:
                    yield Finding(
                        rule=self.id, path=display, line=site.lineno,
                        col=site.col,
                        message=("write-mode open() outside 'with' whose "
                                 "handle escapes unnamed; use a with-block "
                                 "or store it where close+fsync is "
                                 "provable"))
                    continue
                scope = self._owning_nodes(site.target, summary, project)
                closed = any(_calls_method_on(node, site.target, "close")
                             for node in scope)
                fsynced = any(_fsyncs(node, site.target) for node in scope)
                if closed and fsynced:
                    continue
                missing = [w for w, ok in (("close", closed),
                                           ("fsync", fsynced)) if not ok]
                where = "class" if site.target.startswith("self.") \
                    else "function"
                yield Finding(
                    rule=self.id, path=display, line=site.lineno,
                    col=site.col,
                    message=(f"write handle {site.target} has no "
                             f"{' or '.join(missing)} call in its owning "
                             f"{where}; durable writers must close and "
                             "fsync on every path (or use 'with')"))

    @staticmethod
    def _owning_nodes(target: str, summary: "FunctionSummary",
                      project: "FlowProject") -> list[ast.AST]:
        """The AST nodes to search for close/fsync evidence."""
        fn = summary.fn
        if not target.startswith("self."):
            return [fn.node]
        cls = project.graph.class_of(fn)
        if cls is None:
            return [fn.node]
        nodes: list[ast.AST] = []
        for method_qname in cls.methods.values():
            info = project.graph.functions.get(method_qname)
            if info is not None:
                nodes.append(info.node)
        return nodes


def _module_subpath(display: str) -> str | None:
    from ..context import repro_subpath
    return repro_subpath(display)


def _matches_target(expr: ast.expr, target: str) -> bool:
    """Whether *expr* is the stored handle (``name`` or ``self.attr``)."""
    from ..flow.graph import attr_chain
    chain = attr_chain(expr)
    if target.startswith("self."):
        return chain == ["self", target[5:]]
    return chain == [target]


def _calls_method_on(node: ast.AST, target: str, method: str) -> bool:
    for child in ast.walk(node):
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == method
                and _matches_target(child.func.value, target)):
            return True
    return False


def _fsyncs(node: ast.AST, target: str) -> bool:
    """``os.fsync(<target>.fileno())`` appears somewhere under *node*."""
    from ..flow.graph import attr_chain
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        chain = attr_chain(child.func)
        if chain[-1:] != ["fsync"] or not child.args:
            continue
        arg = child.args[0]
        if (isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "fileno"
                and _matches_target(arg.func.value, target)):
            return True
    return False
