"""RPD rules: fixed-seed decision sequences must be reproducible.

Tuner decisions are a deterministic function of the seed and the
evaluation outcomes (docs/ROBUSTNESS.md); anything that injects ambient
state — the process-global RNG, the wall clock, hash-order iteration —
silently breaks resume parity and cross-run comparisons.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from ..registry import Rule, register

#: Legacy ``numpy.random`` module-level API (shared global state).  The
#: explicit-Generator API (``default_rng``, ``Generator``,
#: ``SeedSequence``, bit generators) is the sanctioned replacement and is
#: not listed here.
LEGACY_NUMPY_RANDOM = frozenset({
    "seed", "get_state", "set_state", "RandomState",
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "random_integers", "choice", "shuffle", "permutation",
    "bytes", "uniform", "normal", "standard_normal", "lognormal",
    "beta", "binomial", "exponential", "gamma", "poisson", "dirichlet",
    "multivariate_normal", "triangular", "weibull", "laplace",
})

#: Wall-clock reads that leak real time into decision paths.
_WALL_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "process_time",
             "process_time_ns"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty if not a pure name chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


@register
class GlobalNumpyRNG(Rule):
    """RPD001: no legacy ``np.random.<fn>`` global-RNG usage."""

    id = "RPD001"
    title = "legacy numpy global RNG"
    rationale = (
        "Decisions must flow from a seeded np.random.Generator threaded "
        "through call sites (repro.utils.rng); the module-level "
        "np.random API draws from shared process state, so results "
        "depend on import order and on unrelated components.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (len(chain) == 3 and chain[0] in ("np", "numpy")
                        and chain[1] == "random"
                        and chain[2] in LEGACY_NUMPY_RANDOM):
                    yield self.finding(
                        ctx, node,
                        f"call to global-RNG np.random.{chain[2]}(); thread "
                        "a seeded np.random.Generator instead "
                        "(repro.utils.rng.as_generator)")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in LEGACY_NUMPY_RANDOM:
                            yield self.finding(
                                ctx, node,
                                f"import of global-RNG numpy.random."
                                f"{alias.name}; use the Generator API")


@register
class StdlibRandom(Rule):
    """RPD002: no stdlib ``random`` module."""

    id = "RPD002"
    title = "stdlib random module"
    rationale = (
        "random.* draws from a hidden module-global Mersenne Twister that "
        "cannot be threaded, snapshotted into the journal, or spawned for "
        "workers; all randomness goes through numpy Generators.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "import of stdlib 'random'; use a seeded "
                            "np.random.Generator instead")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    ctx, node,
                    "import from stdlib 'random'; use a seeded "
                    "np.random.Generator instead")


@register
class WallClockInDecisionPath(Rule):
    """RPD003: no wall-clock reads in decision-path modules."""

    id = "RPD003"
    title = "wall clock in decision path"
    rationale = (
        "core/, gp/, ml/ and tuners/ compute decisions that must replay "
        "bit-identically from the journal; reading the wall clock there "
        "makes decisions a function of machine speed.  Wall-clock "
        "accounting belongs to the guard/harness layers, which measure "
        "but never decide.")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_decision_path or ctx.is_module("core/guard.py"):
            # MedianGuard owns the repo's execution-time accounting.
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if len(chain) < 2:
                continue
            base, attr = chain[-2], chain[-1]
            if attr in _WALL_CLOCK_ATTRS.get(base, ()):
                yield self.finding(
                    ctx, node,
                    f"wall-clock read {'.'.join(chain)}() in a decision-path "
                    "module; decisions must depend only on seed and "
                    "journaled outcomes")


#: The monotonic-clock family: legitimate only inside the observability
#: layer (``obs/``) and the guard's execution-time accounting.
_MONOTONIC_FNS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns",
})


@register
class ClockOutsideObservability(Rule):
    """RPD005: monotonic-clock reads outside obs/ and core/guard.py."""

    id = "RPD005"
    title = "monotonic clock outside the observability layer"
    rationale = (
        "All timing flows through the tracer (repro.obs), which takes an "
        "injected clock: spans and tracer.timer() blocks are the sanctioned "
        "way to measure a component, and they keep timing out of decision "
        "paths and out of determinism tests.  A direct time.monotonic()/"
        "perf_counter() call anywhere else creates a second, untraceable "
        "timing source.  core/guard.py (the execution-time accountant) and "
        "supervise/ (deadlines and heartbeats are facts about real elapsed "
        "time; its clock is injected and it is documented as "
        "non-bit-reproducible) are the only exemptions.")

    _ALLOWED_MODULES = ("core/guard.py",)

    def _exempt(self, ctx: ModuleContext) -> bool:
        sub = ctx.repro_subpath
        if sub is None:      # tests, benchmarks, tools — out of scope
            return True
        return (sub.startswith(("obs/", "supervise/"))
                or ctx.is_module(*self._ALLOWED_MODULES))

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self._exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (len(chain) >= 2 and chain[-2] == "time"
                        and chain[-1] in _MONOTONIC_FNS):
                    yield self.finding(
                        ctx, node,
                        f"direct {'.'.join(chain)}() call outside repro.obs; "
                        "time the block with tracer.timer()/tracer.span() "
                        "so the read stays inside the observability layer")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _MONOTONIC_FNS:
                        yield self.finding(
                            ctx, node,
                            f"import of time.{alias.name} outside repro.obs; "
                            "use tracer.timer()/tracer.span() instead")


def _is_unordered(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")):
        return True
    return False


@register
class UnorderedIteration(Rule):
    """RPD004: no iteration over unordered set expressions."""

    id = "RPD004"
    title = "iteration over unordered set"
    rationale = (
        "Set iteration order depends on hash salting and insertion "
        "history, so feeding it into sampling or tie-breaking changes "
        "decisions between runs; wrap in sorted(...) to fix an order. "
        "(dict/dict.keys() iteration is insertion-ordered and allowed.)")

    _MATERIALIZERS = ("list", "tuple", "enumerate", "iter")

    def _offending_iters(self, node: ast.AST) -> Iterator[ast.expr]:
        if isinstance(node, ast.For) and _is_unordered(node.iter):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_unordered(gen.iter):
                    yield gen.iter
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in self._MATERIALIZERS
                and node.args and _is_unordered(node.args[0])):
            yield node.args[0]

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            for iter_expr in self._offending_iters(node):
                yield self.finding(
                    ctx, iter_expr,
                    "iterating an unordered set expression; wrap it in "
                    "sorted(...) so downstream tie-breaking/sampling is "
                    "order-stable")
