"""Findings baselines: grandfather existing debt, gate only regressions.

A baseline is a snapshot of a run's unsuppressed findings.  Comparing a
later run against it marks every finding that already existed as
*baselined* — reported, but not failing the run — so a new rule can land
with its existing findings grandfathered while any **new** violation
still gates CI.

Entries are keyed by ``rule|path|message`` (not line numbers, which
shift on every unrelated edit) and carry a count, so two identical
violations in one file baseline independently: fixing one and adding
another does not cancel out.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding

__all__ = ["BASELINE_VERSION", "finding_key", "load_baseline",
           "apply_baseline", "write_baseline"]

BASELINE_VERSION = 1


def finding_key(finding: Finding) -> str:
    """The line-number-free identity a baseline entry matches on."""
    return f"{finding.rule}|{finding.path}|{finding.message}"


def write_baseline(findings: Iterable[Finding], path: str | Path) -> int:
    """Snapshot the unsuppressed findings; returns the entry count."""
    counts = Counter(finding_key(f) for f in findings if not f.suppressed)
    document = {"version": BASELINE_VERSION,
                "entries": dict(sorted(counts.items()))}
    Path(path).write_text(  # repro: noqa RPF002 -- baseline snapshots are operator-requested lint artifacts, not evaluation state; a torn write fails JSON parsing loudly on the next --baseline run
        json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return sum(counts.values())


def load_baseline(path: str | Path) -> Counter[str]:
    """Parse a baseline file; raises ``ValueError`` on a bad document."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(document, dict) \
            or document.get("version") != BASELINE_VERSION \
            or not isinstance(document.get("entries"), dict):
        raise ValueError(f"{path} is not a version-{BASELINE_VERSION} "
                         "baseline file")
    counts: Counter[str] = Counter()
    for key, count in document["entries"].items():
        if not isinstance(key, str) or not isinstance(count, int) \
                or count < 1:
            raise ValueError(f"malformed baseline entry: {key!r}")
        counts[key] = count
    return counts


def apply_baseline(findings: Sequence[Finding],
                   counts: Counter[str]) -> list[Finding]:
    """Mark grandfathered findings, consuming baseline entry counts.

    Findings are matched in report order; suppressed findings never
    consume an entry (they already do not fail the run).
    """
    remaining = Counter(counts)
    out: list[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if not finding.suppressed and remaining[key] > 0:
            remaining[key] -= 1
            out.append(finding.as_baselined())
        else:
            out.append(finding)
    return out
