"""Command-line entry point: ``python -m repro.analysis``.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import analyze_paths
from .registry import rule_catalog
from .reporters import render_json, render_text


def _split_ids(values: list[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(tok for tok in value.replace(",", " ").split() if tok)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("AST-based invariant linter: determinism, parallel "
                     "safety, fault discipline, numerical hygiene "
                     "(docs/ANALYSIS.md)"))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--select", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, title, rationale in rule_catalog():
            print(f"{rule_id}  {title}")
            print(f"        {rationale}")
        return 0
    select = _split_ids(args.select) or None
    ignore = _split_ids(args.ignore) or None
    try:
        report = analyze_paths(args.paths, select=select, ignore=ignore)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
