"""Command-line entry point: ``python -m repro.analysis``.

Exit codes: 0 clean, 1 active (unsuppressed, unbaselined) findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .engine import analyze_paths, build_project_for
from .registry import rule_catalog
from .reporters import render_json, render_sarif, render_text


def _split_ids(values: list[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(tok for tok in value.replace(",", " ").split() if tok)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("AST-based invariant linter: determinism, parallel "
                     "safety, fault discipline, numerical hygiene, and "
                     "whole-program dataflow rules (docs/ANALYSIS.md)"))
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--select", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="IDS",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=("thread-pool width for the per-module phase (default: the "
              "ROBOTUNE_JOBS environment variable; unset means serial)"))
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=("content-hash result cache directory; unchanged files skip "
              "per-module rules, an unchanged tree skips the whole-program "
              "phase"))
    parser.add_argument(
        "--graph", action="store_true",
        help=("print the project symbol table / call graph the "
              "whole-program rules run on, instead of linting"))
    snapshot = parser.add_mutually_exclusive_group()
    snapshot.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=("compare against a findings snapshot: findings present in "
              "it are reported but do not fail the run"))
    snapshot.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write a findings snapshot for later --baseline runs and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, title, rationale in rule_catalog():
            print(f"{rule_id}  {title}")
            print(f"        {rationale}")
        return 0
    select = _split_ids(args.select) or None
    ignore = _split_ids(args.ignore) or None
    if args.graph:
        try:
            project = build_project_for(args.paths)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(project.render())
        return 0
    try:
        report = analyze_paths(args.paths, select=select, ignore=ignore,
                               n_jobs=args.jobs, cache_dir=args.cache_dir,
                               baseline=args.baseline)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline is not None:
        from .baseline import write_baseline
        count = write_baseline(report.findings, args.write_baseline)
        print(f"baseline written: {count} finding"
              f"{'s' if count != 1 else ''} -> {args.write_baseline}")
        return 0
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report, show_suppressed=args.show_suppressed))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
