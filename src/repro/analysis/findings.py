"""Finding data type shared by rules, the engine, and the reporters."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``line``/``col`` are 1-based (matching compiler diagnostics).  A
    *suppressed* finding matched a ``# repro: noqa`` comment carrying its
    rule id; it is kept in the report (with its justification) so the
    JSON output is a complete audit trail, but it does not fail the run.
    A *baselined* finding matched an entry in a ``--baseline`` snapshot:
    grandfathered debt that is reported but does not fail the run either
    (see :mod:`repro.analysis.baseline`).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str | None = None
    baselined: bool = False

    def suppress(self, justification: str) -> "Finding":
        return replace(self, suppressed=True, justification=justification)

    def as_baselined(self) -> "Finding":
        return replace(self, baselined=True)

    @property
    def active(self) -> bool:
        """Whether this finding should fail the run."""
        return not self.suppressed and not self.baselined

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)
