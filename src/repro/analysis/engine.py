"""File discovery, rule execution, and suppression matching."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .context import ModuleContext
from .findings import Finding
from .registry import Rule, all_rule_ids, build_rules

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", ".mypy_cache", ".ruff_cache"})

#: Id under which engine-level problems (syntax errors, unused
#: suppressions) are reported; mirrors rules/meta.py.
META_RULE_ID = "RPA000"


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one linter run over a set of paths."""

    findings: tuple[Finding, ...]
    files_scanned: int
    rule_ids: tuple[str, ...]

    @property
    def unsuppressed(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def suppressed(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def exit_code(self) -> int:
        return 1 if self.unsuppressed else 0


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root] if root.suffix == ".py" else []
        elif root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
                and not any(part.endswith(".egg-info") for part in p.parts))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                out.append(path)
    return out


def _apply_suppressions(ctx: ModuleContext,
                        raw: list[Finding],
                        meta_active: bool) -> list[Finding]:
    """Mark suppressed findings and report stale suppressions."""
    out: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in raw:
        sup = ctx.suppressions.get(finding.line)
        if sup is not None and finding.rule in sup.rules:
            used.add((finding.line, finding.rule))
            out.append(finding.suppress(sup.justification))
        else:
            out.append(finding)
    if meta_active:
        known = set(all_rule_ids())
        for sup in ctx.suppressions.values():
            for rule_id in sup.rules:
                if rule_id in known and (sup.line, rule_id) not in used:
                    out.append(Finding(
                        rule=META_RULE_ID, path=ctx.display, line=sup.line,
                        col=1,
                        message=(f"unused suppression: {rule_id} reports no "
                                 "finding on this line")))
    return out


def analyze_file(path: Path, rules: Sequence[Rule],
                 display: str | None = None) -> list[Finding]:
    """Run *rules* over one file, returning suppression-resolved findings."""
    shown = display if display is not None else str(path)
    try:
        ctx = ModuleContext.parse(path, display=shown)
    except (SyntaxError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [Finding(rule=META_RULE_ID, path=shown, line=line, col=1,
                        message=f"file does not parse: {exc.__class__.__name__}: {exc}")]
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))
    meta_active = any(rule.id == META_RULE_ID for rule in rules)
    resolved = _apply_suppressions(ctx, raw, meta_active)
    resolved.sort(key=Finding.sort_key)
    return resolved


def analyze_paths(paths: Sequence[str | Path], *,
                  select: Iterable[str] | None = None,
                  ignore: Iterable[str] | None = None) -> AnalysisReport:
    """Lint every Python file under *paths* with the selected rules."""
    rules = build_rules(select=select, ignore=ignore)
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for path in files:
        findings.extend(analyze_file(path, rules))
    findings.sort(key=Finding.sort_key)
    return AnalysisReport(findings=tuple(findings),
                          files_scanned=len(files),
                          rule_ids=tuple(rule.id for rule in rules))
