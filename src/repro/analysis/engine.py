"""File discovery, rule execution, caching, and suppression matching.

The engine runs in two phases:

1. **per-module** — every rule with ``requires_flow = False`` checks one
   :class:`~repro.analysis.context.ModuleContext` at a time.  This phase
   is embarrassingly parallel (``n_jobs`` fans it out over
   :func:`repro.utils.parallel.parallel_map`) and cacheable per file by
   content hash (:mod:`repro.analysis.cache`).
2. **flow** — rules with ``requires_flow = True`` run once over the
   whole-program :class:`~repro.analysis.flow.FlowProject`.  Their
   result is a function of every scanned file, so it is cached by the
   *tree signature* and recomputed whenever any file changes.

Suppression matching runs after both phases, per file, over the merged
raw findings — so one ``# repro: noqa`` grammar covers per-module and
whole-program rules alike, and stale-suppression detection (RPA000)
sees the complete picture.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .cache import ModuleResult, ResultCache, tree_signature
from .context import ModuleContext
from .findings import Finding
from .registry import Rule, all_rule_ids, build_rules
from .suppressions import Suppression

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flow import FlowProject

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", ".mypy_cache", ".ruff_cache"})

#: Id under which engine-level problems (syntax errors, unused
#: suppressions) are reported; mirrors rules/meta.py.
META_RULE_ID = "RPA000"


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one linter run over a set of paths."""

    findings: tuple[Finding, ...]
    files_scanned: int
    rule_ids: tuple[str, ...]
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def unsuppressed(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def suppressed(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def baselined(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.baselined)

    @property
    def active(self) -> tuple[Finding, ...]:
        """Findings that fail the run: neither suppressed nor baselined."""
        return tuple(f for f in self.findings if f.active)

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root] if root.suffix == ".py" else []
        elif root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
                and not any(part.endswith(".egg-info") for part in p.parts))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for path in candidates:
            if path not in seen:
                seen.add(path)
                out.append(path)
    return out


def _resolve_suppressions(display: str,
                          suppressions: dict[int, Suppression],
                          raw: list[Finding],
                          meta_active: bool) -> list[Finding]:
    """Mark suppressed findings and report stale suppressions."""
    out: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in raw:
        sup = suppressions.get(finding.line)
        if sup is not None and finding.rule in sup.rules:
            used.add((finding.line, finding.rule))
            out.append(finding.suppress(sup.justification))
        else:
            out.append(finding)
    if meta_active:
        known = set(all_rule_ids())
        for sup in suppressions.values():
            for rule_id in sup.rules:
                if rule_id in known and (sup.line, rule_id) not in used:
                    out.append(Finding(
                        rule=META_RULE_ID, path=display, line=sup.line,
                        col=1,
                        message=(f"unused suppression: {rule_id} reports no "
                                 "finding on this line")))
    return out


def _parse_error_finding(display: str, exc: Exception) -> Finding:
    line = getattr(exc, "lineno", 1) or 1
    return Finding(rule=META_RULE_ID, path=display, line=line, col=1,
                   message=("file does not parse: "
                            f"{exc.__class__.__name__}: {exc}"))


def analyze_file(path: Path, rules: Sequence[Rule],
                 display: str | None = None) -> list[Finding]:
    """Run *rules* over one file, returning suppression-resolved findings.

    Single-file analysis: whole-program (``requires_flow``) rules fall
    back to their per-module ``check`` here, which for most of them is a
    no-op — use :func:`analyze_paths` for the full rule set.
    """
    shown = display if display is not None else str(path)
    try:
        ctx = ModuleContext.parse(path, display=shown)
    except (SyntaxError, UnicodeDecodeError) as exc:
        return [_parse_error_finding(shown, exc)]
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))
    meta_active = any(rule.id == META_RULE_ID for rule in rules)
    resolved = _resolve_suppressions(ctx.display, ctx.suppressions, raw,
                                     meta_active)
    resolved.sort(key=Finding.sort_key)
    return resolved


def _check_module(ctx: ModuleContext,
                  module_rules: Sequence[Rule]) -> ModuleResult:
    raw: list[Finding] = []
    for rule in module_rules:
        raw.extend(rule.check(ctx))
    return ModuleResult(display=ctx.display, raw=raw,
                        suppressions=dict(ctx.suppressions), parse_ok=True)


def build_project_for(paths: Sequence[str | Path]) -> "FlowProject":
    """Parse every file under *paths* into a :class:`FlowProject`.

    Powers the CLI's ``--graph`` debug dump; unparsable files are
    skipped (the lint run is where they get reported).
    """
    from .flow import build_flow_project
    ctxs: list[ModuleContext] = []
    for path in iter_python_files(paths):
        try:
            ctxs.append(ModuleContext.parse(path, display=str(path)))
        except (SyntaxError, UnicodeDecodeError):
            continue
    return build_flow_project(ctxs)


def analyze_paths(paths: Sequence[str | Path], *,
                  select: Iterable[str] | None = None,
                  ignore: Iterable[str] | None = None,
                  n_jobs: int | None = None,
                  cache_dir: str | Path | None = None,
                  baseline: str | Path | None = None) -> AnalysisReport:
    """Lint every Python file under *paths* with the selected rules.

    ``n_jobs`` fans the per-module phase out over a thread pool
    (``None`` defers to ``ROBOTUNE_JOBS``, matching every other
    parallel entry point in the library); ``cache_dir`` enables the
    content-hash result cache; ``baseline`` marks findings present in a
    prior snapshot as grandfathered (see :mod:`repro.analysis.baseline`).
    """
    from ..utils.parallel import parallel_map

    rules = build_rules(select=select, ignore=ignore)
    module_rules = [r for r in rules if not r.requires_flow]
    flow_rules = [r for r in rules if r.requires_flow]
    meta_active = any(rule.id == META_RULE_ID for rule in rules)
    files = iter_python_files(paths)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    module_sig = "|".join(r.id for r in module_rules)
    flow_sig = "|".join(r.id for r in flow_rules)

    # Read + hash every file exactly once.
    entries: list[tuple[Path, str, str, bytes]] = []
    for path in files:
        display = str(path)
        data = path.read_bytes()
        entries.append((path, display,
                        hashlib.sha256(data).hexdigest(), data))

    # -- phase 1: per-module rules (parallel, cached per content hash) --------
    results: dict[str, ModuleResult] = {}
    ctxs: dict[str, ModuleContext] = {}
    pending: list[tuple[Path, str, str, bytes]] = []
    for entry in entries:
        _, display, sha, _ = entry
        cached = cache.load_module(
            cache.module_key(display, sha, module_sig)) if cache else None
        if cached is not None:
            results[display] = cached
        else:
            pending.append(entry)

    def _lint_one(entry: tuple[Path, str, str, bytes]
                  ) -> tuple[ModuleResult, ModuleContext | None]:
        path, display, _, data = entry
        try:
            ctx = ModuleContext.from_source(
                path, data.decode("utf-8"), display=display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            return (ModuleResult(display=display,
                                 raw=[_parse_error_finding(display, exc)],
                                 parse_ok=False), None)
        return _check_module(ctx, module_rules), ctx

    if pending:
        for entry, (result, ctx) in zip(
                pending, parallel_map(_lint_one, pending, n_jobs=n_jobs,
                                      backend="thread")):
            _, display, sha, _ = entry
            results[display] = result
            if ctx is not None:
                ctxs[display] = ctx
            if cache is not None:
                cache.store_module(
                    cache.module_key(display, sha, module_sig), result)

    # -- phase 2: whole-program rules (cached by tree signature) --------------
    flow_raw: list[Finding] = []
    if flow_rules and entries:
        tree_sig = tree_signature([(d, s) for _, d, s, _ in entries])
        flow_cache_key = cache.flow_key(tree_sig, flow_sig) if cache else ""
        cached_flow = cache.load_flow(flow_cache_key) if cache else None
        if cached_flow is not None:
            flow_raw = cached_flow
        else:
            ordered: list[ModuleContext] = []
            for path, display, _, data in entries:
                if not results[display].parse_ok:
                    continue
                ctx = ctxs.get(display)
                if ctx is None:
                    try:
                        ctx = ModuleContext.from_source(
                            path, data.decode("utf-8"), display=display)
                    except (SyntaxError, UnicodeDecodeError):
                        continue
                ordered.append(ctx)
            from .flow import build_flow_project
            project = build_flow_project(ordered)
            for rule in flow_rules:
                flow_raw.extend(rule.check_project(project))
            if cache is not None:
                cache.store_flow(flow_cache_key, flow_raw)

    # -- merge + suppression resolution ---------------------------------------
    by_display: dict[str, list[Finding]] = {d: list(r.raw)
                                            for d, r in results.items()}
    for finding in flow_raw:
        by_display.setdefault(finding.path, []).append(finding)
    findings: list[Finding] = []
    for display in by_display:
        result = results.get(display)
        suppressions = result.suppressions if result is not None else {}
        findings.extend(_resolve_suppressions(
            display, suppressions, by_display[display], meta_active))
    findings.sort(key=Finding.sort_key)

    # -- baseline comparison ---------------------------------------------------
    if baseline is not None:
        from .baseline import apply_baseline, load_baseline
        findings = apply_baseline(findings, load_baseline(baseline))

    return AnalysisReport(findings=tuple(findings),
                          files_scanned=len(files),
                          rule_ids=tuple(rule.id for rule in rules),
                          cache_hits=cache.hits if cache else 0,
                          cache_misses=cache.misses if cache else 0)
