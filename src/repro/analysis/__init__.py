"""AST-based invariant linter for the repro codebase (docs/ANALYSIS.md).

The repo's headline guarantee — fixed-seed decision sequences stay
bit-identical across the perf, resilience, and gradient/batch layers — is
enforced end-to-end by the parity tests, but those catch violations only
on exercised paths and long after they are introduced.  This package
moves the underlying invariants from "tested" to "enforced by
construction": a small rule framework walks every module's AST and
rejects constructs that are known to break determinism, parallel safety,
fault discipline, or numerical hygiene, before any test runs.

Rule families (see :mod:`repro.analysis.rules`):

* ``RPD`` — determinism: no global-RNG calls, no wall-clock reads in
  decision paths, no iteration over unordered collections.
* ``RPP`` — parallel safety: workers handed to
  :func:`repro.utils.parallel.parallel_map` must be picklable and must
  not mutate shared state.
* ``RPF`` — fault/journal discipline: no blind exception swallowing, no
  file writes that bypass the owned-I/O modules.
* ``RPN`` — numerical hygiene: factorizations stay inside ``gp/`` (which
  owns the jitter retry), no float-literal equality, guarded std
  denominators.
* ``RPA`` — linter hygiene: suppressions must name a rule and carry a
  justification, and must actually match a finding.
* ``RPX`` — whole-program dataflow (:mod:`repro.analysis.flow`): seed
  provenance across module boundaries, thread ownership of engine
  state, tracer names against the typed event catalogs, and file-handle
  lifecycles that span methods.

Per-module rules see one file at a time and cache per content hash;
``RPX`` rules run once per invocation over a project symbol table +
call graph + dataflow summaries and recompute whenever any scanned file
changes.

Run it as ``python -m repro.analysis [paths] [--select/--ignore]
[--format json|sarif] [--jobs N] [--cache-dir DIR] [--baseline FILE |
--write-baseline FILE] [--graph]``; suppress a finding inline with
``# repro: noqa RULE-ID -- justification``.
"""

from __future__ import annotations

from .engine import (AnalysisReport, analyze_paths, build_project_for,
                     iter_python_files)
from .findings import Finding
from .registry import (FlowRule, Rule, all_rule_ids, build_rules, register,
                       rule_catalog)

__all__ = [
    "AnalysisReport",
    "Finding",
    "FlowRule",
    "Rule",
    "all_rule_ids",
    "analyze_paths",
    "build_project_for",
    "build_rules",
    "iter_python_files",
    "register",
    "rule_catalog",
]
