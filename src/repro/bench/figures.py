"""Figure-specific computations (model comparisons, recall sweeps, surfaces).

Each helper returns plain data structures; :mod:`repro.bench.experiments`
renders them into the textual tables/series the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.selection import ParameterSelector
from ..core.tuner import ROBOTuneResult
from ..gp.gpr import GaussianProcessRegressor
from ..ml.forest import ExtraTreesRegressor, RandomForestRegressor
from ..ml.linear import ElasticNet, Lasso
from ..ml.metrics import recall_score
from ..ml.model_selection import cross_val_score
from ..sampling.lhs import latin_hypercube
from ..space.space import ConfigSpace
from ..space.spark_params import spark_space
from ..tuners.objective import WorkloadObjective
from ..utils.rng import as_generator
from ..workloads.registry import get_workload

__all__ = ["FIG2_MODELS", "model_r2_scores", "selection_recall_sweep",
           "response_surface", "collect_lhs_times"]

#: Figure 2's four models, in the paper's order.
FIG2_MODELS: dict[str, Callable[[], object]] = {
    "Lasso": lambda: Lasso(0.01),
    "ElasticNet": lambda: ElasticNet(0.01, l1_ratio=0.5),
    "RF": lambda: RandomForestRegressor(100, max_features=0.5, rng=11),
    "ET": lambda: ExtraTreesRegressor(100, max_features=0.5, rng=12),
}


def collect_lhs_times(workload: str, dataset: str, n_samples: int,
                      rng: np.random.Generator | int | None = None,
                      *, space: ConfigSpace | None = None,
                      time_limit_s: float = 480.0):
    """Execute *n_samples* LHS configurations; returns (U, times)."""
    rng = as_generator(rng)
    space = space or spark_space()
    wl = get_workload(workload, dataset)
    objective = WorkloadObjective(wl, space, rng=rng,
                                  time_limit_s=time_limit_s)
    U = latin_hypercube(n_samples, space.dim, rng)
    y = np.array([objective(u).objective for u in U])
    return U, y


def model_r2_scores(U: np.ndarray, y: np.ndarray, *, cv: int = 5,
                    log_target: bool = True,
                    rng: np.random.Generator | int | None = None,
                    models: dict[str, Callable[[], object]] | None = None,
                    ) -> dict[str, float]:
    """Figure 2: mean k-fold R² for each candidate model."""
    rng = as_generator(rng)
    target = np.log(np.maximum(y, 1e-9)) if log_target else y
    out: dict[str, float] = {}
    for name, make in (models or FIG2_MODELS).items():
        scores = cross_val_score(make, U, target, cv=cv, rng=rng)
        out[name] = float(scores.mean())
    return out


@dataclass(frozen=True)
class RecallPoint:
    """Recall of one (workload, sample-count) cell in Figure 7."""

    workload: str
    n_samples: int
    recall: float
    selected: tuple[str, ...]


def selection_recall_sweep(workload: str, dataset: str = "D1", *,
                           ground_truth_samples: int = 200,
                           sample_counts: Sequence[int] = (150, 125, 100, 75,
                                                           50, 25),
                           rng: np.random.Generator | int | None = None,
                           selector_kwargs: dict | None = None,
                           ) -> list[RecallPoint]:
    """Figure 7: recall of selected parameters vs selection-sample count.

    The ground truth is the selection from ``ground_truth_samples`` LHS
    samples (paper: 200); smaller models are trained on prefixes of the
    same evaluated sample set (subsampling, as decreasing budgets would).
    """
    rng = as_generator(rng)
    space = spark_space()
    wl = get_workload(workload, dataset)
    objective = WorkloadObjective(wl, space, rng=rng)
    kwargs = dict(n_samples=ground_truth_samples, n_repeats=5)
    kwargs.update(selector_kwargs or {})
    selector = ParameterSelector(rng=rng, **kwargs)
    evals = selector.collect(objective, space)
    truth = set(selector.select(space, evals).selected)

    points = [RecallPoint(workload, ground_truth_samples, 1.0,
                          tuple(sorted(truth)))]
    for n in sample_counts:
        sel = selector.select(space, evals[:n])
        points.append(RecallPoint(
            workload, n, recall_score(truth, set(sel.selected)),
            tuple(sorted(sel.selected))))
    return points


def response_surface(result: ROBOTuneResult, *,
                     at_iterations: Sequence[int] = (25, 50, 75),
                     grid: int = 21,
                     x_param: str = "spark.executor.cores",
                     y_param: str = "spark.executor.memory",
                     ) -> dict[int, dict[str, np.ndarray]]:
    """Figure 9: the GP's perceived cores-vs-memory response surface.

    For each requested iteration count ``k``, a GP is fit on the session's
    first ``k`` evaluations (in the reduced space) and evaluated over a
    grid of the two axis parameters, with every other selected parameter
    pinned at the incumbent's value.  Returns
    ``{k: {"xs", "ys", "mean", "points"}}`` where ``mean[i, j]`` is the
    posterior mean at ``(xs[j], ys[i])`` in native units.
    """
    space = result.reduced_space
    if space is None:
        raise ValueError("result has no reduced space (not a ROBOTune run?)")
    for p in (x_param, y_param):
        if p not in space:
            raise KeyError(f"{p} was not selected in this session")
    xi, yi = space.index_of(x_param), space.index_of(y_param)
    evals = result.evaluations
    out: dict[int, dict[str, np.ndarray]] = {}
    axis = np.linspace(0.0, 1.0, grid)
    for k in at_iterations:
        k = min(k, len(evals))
        if k < 2:
            continue
        X = np.vstack([e.vector for e in evals[:k]])
        y = np.asarray([e.objective for e in evals[:k]])
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        best = X[int(np.argmin(y))]
        G = np.tile(best, (grid * grid, 1))
        xx, yy = np.meshgrid(axis, axis)
        G[:, xi] = xx.ravel()
        G[:, yi] = yy.ravel()
        mean = gp.predict(G).reshape(grid, grid)
        xs = np.array([space[x_param].from_unit(u) for u in axis], dtype=float)
        ys = np.array([space[y_param].from_unit(u) for u in axis], dtype=float)
        out[k] = {"xs": xs, "ys": ys, "mean": mean,
                  "points": X[:, [xi, yi]].copy()}
    return out
