"""ASCII rendering of figure data: heatmaps and scatter planes.

The paper's Figures 8 and 9 are 2-D plots (sampling scatter and GP
response surfaces over the cores×memory plane).  These helpers render the
same data as terminal text so the benchmark reports stay self-contained —
darker glyphs mean *better* (lower predicted execution time) to match the
paper's "lighter colour denotes better" inverted, i.e. we mark good
regions with dense characters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ascii_heatmap", "ascii_scatter"]

# Light -> dense glyph ramp.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, *, x_labels: Sequence[str] | None = None,
                  y_labels: Sequence[str] | None = None,
                  invert: bool = True, title: str | None = None,
                  points: np.ndarray | None = None) -> str:
    """Render a matrix as an ASCII heatmap.

    Parameters
    ----------
    values:
        ``(rows, cols)`` matrix; row 0 is drawn at the bottom (y grows up).
    invert:
        If True (default), *low* values map to dense glyphs — right for
        execution-time surfaces where low is good.
    points:
        Optional ``(n, 2)`` array of (col, row) fractional grid coordinates
        overlaid as ``o`` markers (sampled configurations).
    x_labels / y_labels:
        Axis-end labels (first and last shown).
    """
    M = np.asarray(values, dtype=float)
    if M.ndim != 2:
        raise ValueError("values must be a 2-D matrix")
    lo, hi = float(np.nanmin(M)), float(np.nanmax(M))
    span = hi - lo if hi > lo else 1.0
    norm = (M - lo) / span
    if invert:
        norm = 1.0 - norm
    idx = np.clip((norm * (len(_RAMP) - 1)).round().astype(int), 0,
                  len(_RAMP) - 1)
    grid = [[_RAMP[idx[r, c]] for c in range(M.shape[1])]
            for r in range(M.shape[0])]
    if points is not None:
        for col, row in np.asarray(points, dtype=float):
            r = int(round(row))
            c = int(round(col))
            if 0 <= r < M.shape[0] and 0 <= c < M.shape[1]:
                grid[r][c] = "o"

    lines = []
    if title:
        lines.append(title)
    for r in range(M.shape[0] - 1, -1, -1):
        prefix = ""
        if y_labels is not None:
            if r == M.shape[0] - 1:
                prefix = f"{y_labels[-1]:>8} "
            elif r == 0:
                prefix = f"{y_labels[0]:>8} "
            else:
                prefix = " " * 9
        lines.append(prefix + "|" + "".join(grid[r]) + "|")
    if x_labels is not None:
        pad = " " * 9 if y_labels is not None else ""
        width = M.shape[1]
        left, right = str(x_labels[0]), str(x_labels[-1])
        gap = max(width - len(left) - len(right), 1)
        lines.append(pad + " " + left + " " * gap + right)
    if points is not None:
        lines.append("('o' = sampled configuration; dense glyphs = "
                     "better predicted time)")
    return "\n".join(lines)


def ascii_scatter(x: np.ndarray, y: np.ndarray, *, width: int = 40,
                  height: int = 16, title: str | None = None,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render points as an ASCII density scatter (1-9, then ``#``)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D and the same length")
    if x.size == 0:
        raise ValueError("no points to plot")
    gx = np.clip(((x - x.min()) / (np.ptp(x) or 1.0) * (width - 1)).astype(int),
                 0, width - 1)
    gy = np.clip(((y - y.min()) / (np.ptp(y) or 1.0) * (height - 1)).astype(int),
                 0, height - 1)
    counts = np.zeros((height, width), dtype=int)
    np.add.at(counts, (gy, gx), 1)
    lines = []
    if title:
        lines.append(title)
    for r in range(height - 1, -1, -1):
        row = "".join(
            " " if c == 0 else (str(c) if c <= 9 else "#")
            for c in counts[r])
        lines.append("|" + row + "|")
    lines.append(f" {x_label}: [{x.min():g}, {x.max():g}]   "
                 f"{y_label}: [{y.min():g}, {y.max():g}]")
    return "\n".join(lines)
