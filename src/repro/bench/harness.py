"""Multi-session experiment harness.

Runs the paper's evaluation protocol (§5.1): every tuner gets the same
budget (100 executions) and per-configuration cap (480 s); each workload is
tuned on its three datasets; trials repeat the whole sweep with fresh
seeds.  Within one trial a tuner's knowledge stores (ROBOTune's parameter
-selection cache and memoization buffer) persist across the datasets of a
workload — D1 runs cold, D2/D3 run warm — matching how the paper
evaluates memoized sampling (Figure 6).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core.memo import ConfigMemoizationBuffer, ParameterSelectionCache
from ..core.selection import ParameterSelector
from ..core.transfer import WorkloadMapper
from ..core.tuner import ROBOTune
from ..core.warmstart import journal_paths
from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..obs import JsonlTraceWriter, Tracer, load_trace, summarize
from ..space.spark_params import spark_space
from ..sparksim.cluster import ClusterSpec
from ..tuners.base import Tuner, TuningResult
from ..tuners.bestconfig import BestConfig
from ..tuners.gunther import Gunther
from ..tuners.objective import DEFAULT_TIME_LIMIT_S, WorkloadObjective
from ..tuners.random_search import RandomSearch
from ..utils.parallel import parallel_map
from ..workloads.datasets import DATASET_LABELS
from ..workloads.registry import all_workload_names, get_workload

__all__ = ["SessionRecord", "StudyResult", "ComparisonStudy", "TUNER_NAMES"]

TUNER_NAMES = ("ROBOTune", "BestConfig", "Gunther", "RandomSearch")


@dataclass(frozen=True)
class SessionRecord:
    """One tuning session's outcome (one bar of Figures 3/4)."""

    tuner: str
    workload: str
    dataset: str
    trial: int
    best_time_s: float
    search_cost_s: float
    selection_cost_s: float
    cache_hit: bool
    curve: np.ndarray                       # best-so-far per iteration
    exec_times: np.ndarray                  # per-evaluation cost (Figure 5)
    cores_mem: np.ndarray                   # (n, 2) sampled executor
                                            # cores/memory (Figure 8)
    statuses: tuple[str, ...]
    result: TuningResult | None = None
    n_transient: int = 0                    # fault-caused failures surfaced
    n_retries: int = 0                      # extra attempts spent on faults
    trace_path: str | None = None           # JSONL trace (trace_dir studies)


@dataclass
class StudyResult:
    """All sessions of a comparison study, with lookup helpers."""

    records: list[SessionRecord] = field(default_factory=list)

    def filter(self, *, tuner: str | None = None, workload: str | None = None,
               dataset: str | None = None) -> list[SessionRecord]:
        out = self.records
        if tuner is not None:
            out = [r for r in out if r.tuner == tuner]
        if workload is not None:
            out = [r for r in out if r.workload == workload]
        if dataset is not None:
            out = [r for r in out if r.dataset == dataset]
        return list(out)

    def mean_best_time(self, tuner: str, workload: str, dataset: str) -> float:
        recs = self.filter(tuner=tuner, workload=workload, dataset=dataset)
        if not recs:
            raise KeyError(f"no sessions for {tuner}/{workload}/{dataset}")
        return float(np.mean([r.best_time_s for r in recs]))

    def mean_search_cost(self, tuner: str, workload: str, dataset: str) -> float:
        recs = self.filter(tuner=tuner, workload=workload, dataset=dataset)
        if not recs:
            raise KeyError(f"no sessions for {tuner}/{workload}/{dataset}")
        return float(np.mean([r.search_cost_s for r in recs]))

    def trace_summaries(self) -> list:
        """Per-session :class:`~repro.obs.TraceSummary` objects.

        Loads every record's JSONL trace (sessions run without a
        ``trace_dir`` are skipped); feed the result to
        :func:`repro.obs.render_aggregate` for the cross-tuner table.
        """
        return [summarize(load_trace(r.trace_path))
                for r in self.records if r.trace_path]


class ComparisonStudy:
    """Runs the 4-tuner × 5-workload × 3-dataset × N-trial comparison.

    Parameters
    ----------
    budget:
        Evaluations per session (paper: 100).
    trials:
        Independent sweeps per workload (paper: 5 per dataset).
    workloads / datasets / tuners:
        Subsets for cheaper runs; default to the paper's full grid.
    keep_results:
        Attach the full :class:`TuningResult` to each record (needed by
        Figures 8/9; costs memory).
    fault_rate / retries:
        Transient-fault injection for robustness studies: every session's
        objective is wrapped in a :class:`~repro.faults.FaultInjector`
        with a plan seeded from the session's grid coordinates (so fault
        sequences are reproducible and identical across tuners for the
        same coordinate), retrying transient failures up to *retries*
        times.  Rate 0 (the default) leaves objectives unwrapped.
    n_jobs / parallel_backend:
        Workers for running independent ``(trial, workload, tuner)``
        sweeps concurrently (each sweep still visits its datasets in
        order, because the knowledge stores are shared within a sweep).
        Every session is seeded from its grid coordinates, so results
        and record order are identical for any worker count.  The
        ``"process"`` backend requires a picklable *selector_factory*.
    batch_size:
        Points per BO round for ROBOTune sessions (see
        :class:`~repro.core.tuner.ROBOTune` ``batch_size``); other
        tuners are unaffected.  The default 1 keeps the paper's serial
        loop.
    async_workers:
        Asynchronous BO worker count for ROBOTune sessions (see
        :class:`~repro.core.tuner.ROBOTune` ``async_workers``); other
        tuners are unaffected.  Mutually exclusive with
        ``batch_size > 1``.
    supervise:
        Optional :class:`~repro.supervise.SupervisePolicy` for ROBOTune
        sessions (requires ``async_workers >= 1``): deadlines,
        reclaim-and-redispatch, speculation and poison-config quarantine
        around every asynchronous evaluation.  See docs/ROBUSTNESS.md.
    map_workloads:
        Share one :class:`~repro.core.transfer.WorkloadMapper` across all
        workloads of a ``(trial, tuner)`` sweep (ROBOTune sessions only).
        The sweep unit widens from ``(trial, workload, tuner)`` to
        ``(trial, tuner)`` — knowledge stores and the mapper persist
        across workloads, so a later workload whose probe signature
        matches an earlier one skips its selection run (probe cost is
        charged to ``search_cost_s``).  Per-session seeds are unchanged,
        so non-ROBOTune records are identical in either mode.
    warm_start:
        Directory of prior-session journals forwarded to every ROBOTune
        session (see :class:`~repro.core.tuner.ROBOTune` ``warm_start``).
        Fail-fast validated at construction; ``None`` starts cold.
    trace_dir:
        Directory for per-session JSONL traces.  Each session gets its
        own file (``{tuner}-{workload}-{dataset}-trial{N}.jsonl``) and
        its own :class:`~repro.obs.Tracer`, constructed inside the
        session so the ``"process"`` backend never pickles one; the
        record's ``trace_path`` points at the file and
        :meth:`StudyResult.trace_summaries` folds them back up.  ``None``
        (the default) traces nothing.
    """

    def __init__(self, *, budget: int = 100, trials: int = 5,
                 workloads: Sequence[str] | None = None,
                 datasets: Sequence[str] | None = None,
                 tuners: Sequence[str] | None = None,
                 cluster: ClusterSpec | None = None,
                 time_limit_s: float = DEFAULT_TIME_LIMIT_S,
                 keep_results: bool = False,
                 fault_rate: float = 0.0,
                 retries: int = 2,
                 selector_factory: Callable[[np.random.Generator], ParameterSelector] | None = None,
                 n_jobs: int | None = None,
                 parallel_backend: str = "process",
                 batch_size: int = 1,
                 async_workers: int = 0,
                 supervise=None,
                 map_workloads: bool = False,
                 warm_start: str | Path | None = None,
                 trace_dir: str | Path | None = None,
                 base_seed: int = 0):
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if async_workers < 0:
            raise ValueError(f"async_workers must be >= 0, got {async_workers}")
        if async_workers > 0 and batch_size > 1:
            raise ValueError("async_workers and batch_size > 1 are mutually "
                             "exclusive")
        if supervise is not None and async_workers < 1:
            raise ValueError("supervise requires async_workers >= 1")
        self.fault_rate = fault_rate
        self.retries = retries
        self.batch_size = batch_size
        self.async_workers = async_workers
        self.supervise = supervise
        self.budget = budget
        self.trials = trials
        self.workloads = list(workloads or all_workload_names())
        self.datasets = list(datasets or DATASET_LABELS)
        self.tuners = list(tuners or TUNER_NAMES)
        unknown = set(self.tuners) - set(TUNER_NAMES)
        if unknown:
            raise ValueError(f"unknown tuners: {sorted(unknown)}")
        self.map_workloads = bool(map_workloads)
        if warm_start is not None:
            journal_paths(warm_start)  # fail fast before any session runs
        # Stored as a plain string to keep the study picklable.
        self.warm_start = str(warm_start) if warm_start is not None else None
        self.cluster = cluster
        self.time_limit_s = time_limit_s
        self.keep_results = keep_results
        self.selector_factory = selector_factory
        self.n_jobs = n_jobs
        self.parallel_backend = parallel_backend
        # Stored as a plain string to keep the study picklable for the
        # process backend.
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.base_seed = base_seed
        self.space = spark_space()

    # -- tuner construction ------------------------------------------------------
    def _make_tuner(self, name: str, rng: np.random.Generator,
                    stores: dict,
                    mapper: WorkloadMapper | None = None) -> Tuner:
        if name == "ROBOTune":
            selector = (self.selector_factory(rng) if self.selector_factory
                        else ParameterSelector(n_repeats=5, rng=rng))
            return ROBOTune(selector=selector,
                            selection_cache=stores["cache"],
                            memo_buffer=stores["memo"],
                            batch_size=self.batch_size,
                            async_workers=self.async_workers,
                            supervise=self.supervise,
                            warm_start=self.warm_start,
                            mapper=mapper, rng=rng)
        if name == "BestConfig":
            return BestConfig()
        if name == "Gunther":
            return Gunther()
        if name == "RandomSearch":
            return RandomSearch()
        raise ValueError(name)

    # -- execution ---------------------------------------------------------------------
    def run(self, progress: Callable[[str], None] | None = None) -> StudyResult:
        """Execute every session of the study grid.

        The ``(trial, workload, tuner)`` sweeps are independent (each one
        starts fresh knowledge stores) and run concurrently under
        ``n_jobs``; datasets within a sweep stay sequential so D2/D3 see
        the warm stores D1 populated.  Records are appended in the same
        nested order the sequential loop produced.
        """
        if self.map_workloads:
            # Whole-grid sweeps: the mapper and knowledge stores persist
            # across every workload of a (trial, tuner) pair.
            sweeps = [(trial, None, tuner_name)
                      for trial in range(self.trials)
                      for tuner_name in self.tuners]
        else:
            sweeps = [(trial, workload, tuner_name)
                      for trial in range(self.trials)
                      for workload in self.workloads
                      for tuner_name in self.tuners]
        sweep_records = parallel_map(self._run_sweep, sweeps,  # repro: noqa RPP002 -- ComparisonStudy is picklable by design (plain config attrs only); process-backend round-trip is covered by tests/bench/test_harness_parallel.py
                                     n_jobs=self.n_jobs,
                                     backend=self.parallel_backend)
        study = StudyResult()
        for recs in sweep_records:
            for rec in recs:
                study.records.append(rec)
                if progress is not None:
                    progress(f"{rec.tuner} {rec.workload}/{rec.dataset} "
                             f"trial {rec.trial}: best={rec.best_time_s:.0f}s "
                             f"cost={rec.search_cost_s / 60:.0f}min")
        return study

    def _run_sweep(self, sweep: tuple[int, str | None, str]
                   ) -> list[SessionRecord]:
        """All datasets of one (trial, workload, tuner) sweep, in order.

        A ``None`` workload (``map_workloads`` mode) visits every
        workload of the grid with shared stores and a shared mapper.
        """
        trial, workload, tuner_name = sweep
        # Knowledge stores persist across this workload's datasets
        # within one (trial, tuner) sweep.
        stores = {"cache": ParameterSelectionCache(),
                  "memo": ConfigMemoizationBuffer()}
        mapper = WorkloadMapper(self.space) if workload is None else None
        workloads = self.workloads if workload is None else [workload]
        return [self._run_session(tuner_name, wl, dataset, trial, stores,
                                  mapper)
                for wl in workloads for dataset in self.datasets]

    def _run_session(self, tuner_name: str, workload: str, dataset: str,
                     trial: int, stores: dict,
                     mapper: WorkloadMapper | None = None) -> SessionRecord:
        # Stable across processes (unlike builtin hash, which is salted).
        key = f"{self.base_seed}|{tuner_name}|{workload}|{dataset}|{trial}"
        seed = zlib.crc32(key.encode())
        rng = np.random.default_rng(seed)
        wl = get_workload(workload, dataset)
        objective = WorkloadObjective(wl, self.space, cluster=self.cluster,
                                      time_limit_s=self.time_limit_s,
                                      rng=np.random.default_rng(seed + 1))
        tracer = trace_path = None
        if self.trace_dir:
            directory = Path(self.trace_dir)
            directory.mkdir(parents=True, exist_ok=True)
            # The session seed is part of the filename: it folds in the
            # study's base_seed, so two studies sharing one trace_dir
            # (different base seeds, same grid) never collide on the
            # (tuner, workload, dataset, trial) coordinates alone —
            # JsonlTraceWriter refuses to append to an existing trace.
            trace_path = str(directory / f"{tuner_name}-{workload}-{dataset}"
                                         f"-trial{trial}-s{seed:08x}.jsonl")
            tracer = Tracer(JsonlTraceWriter(trace_path),
                            meta={"tuner": tuner_name, "workload": workload,
                                  "dataset": dataset, "trial": trial,
                                  "budget": self.budget, "seed": int(seed)})
        if self.fault_rate > 0.0:
            retry = RetryPolicy(max_retries=self.retries) \
                if self.retries else None
            objective = FaultInjector(
                objective, FaultPlan(self.fault_rate, seed=seed + 2),
                retry=retry, tracer=tracer)
        tuner = self._make_tuner(tuner_name, rng, stores, mapper)
        try:
            result = tuner.tune(objective, self.budget, rng=rng,
                                tracer=tracer)
        finally:
            if tracer is not None:
                tracer.close()
        try:
            best_time_s = result.best_time_s
        except RuntimeError:
            # Every evaluation failed (possible under heavy fault
            # injection): record the session as NaN instead of aborting
            # the whole study.
            best_time_s = float("nan")
        return SessionRecord(
            tuner=tuner_name, workload=workload, dataset=dataset, trial=trial,
            best_time_s=best_time_s,
            search_cost_s=result.search_cost_s,
            selection_cost_s=result.selection_cost_s,
            cache_hit=getattr(result, "selection_cache_hit", False),
            curve=result.best_curve(),
            exec_times=np.asarray([e.cost_s for e in result.evaluations]),
            cores_mem=np.asarray(
                [(e.config["spark.executor.cores"],
                  e.config["spark.executor.memory"])
                 for e in result.evaluations], dtype=float)
            if result.evaluations else np.empty((0, 2)),
            statuses=tuple(e.status.value for e in result.evaluations),
            result=result if self.keep_results else None,
            n_transient=sum(e.transient for e in result.evaluations),
            n_retries=sum(e.attempts - 1 for e in result.evaluations),
            trace_path=trace_path,
        )
