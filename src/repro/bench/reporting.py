"""Plain-text table and series rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "section"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str | None = None,
                 float_fmt: str = "{:.2f}") -> str:
    """Render an ASCII table (floats formatted, columns padded)."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float],
                  *, x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure series as aligned (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    rows = [(x, float(y)) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name,
                        float_fmt="{:.3f}")


def section(title: str) -> str:
    """A separator heading for multi-part reports."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
