"""Dependency-free SVG charts for the reproduced figures.

matplotlib is not available offline, so the benchmark harness renders its
figures as hand-built SVG: grouped bar charts (Figures 3/4), line charts
(Figure 6), and heatmaps (Figure 9).  Output is valid standalone SVG 1.1
viewable in any browser.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence
from xml.sax.saxutils import escape

import numpy as np

__all__ = ["svg_grouped_bars", "svg_line_chart", "svg_heatmap"]

# A small colour-blind-friendly palette.
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00")

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _header(width: int, height: int, title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" {_FONT} '
        f'font-size="14" font-weight="bold">{escape(title)}</text>',
    ]


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / n
    mag = 10 ** math.floor(math.log10(raw))
    step = min(s * mag for s in (1, 2, 5, 10) if s * mag >= raw)
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + 1e-9:
        if t >= lo - 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def svg_grouped_bars(groups: Sequence[str],
                     series: Mapping[str, Sequence[float]], *,
                     title: str = "", y_label: str = "",
                     width: int = 900, height: int = 360,
                     baseline: float | None = None) -> str:
    """A grouped bar chart (one bar per series within each group).

    ``baseline`` draws a horizontal reference line (e.g. 1.0 for
    ratios scaled to Random Search).
    """
    series = {k: list(v) for k, v in series.items()}
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ValueError(f"series {name!r} has {len(vals)} values for "
                             f"{len(groups)} groups")
    if not groups or not series:
        raise ValueError("need at least one group and one series")
    ml, mr, mt, mb = 60, 20, 40, 70
    pw, ph = width - ml - mr, height - mt - mb
    vmax = max(max(v) for v in series.values())
    if baseline is not None:
        vmax = max(vmax, baseline)
    vmax *= 1.1
    out = _header(width, height, title)

    # Axes and y ticks.
    for t in _nice_ticks(0.0, vmax):
        y = mt + ph - t / vmax * ph
        out.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{width - mr}" '
                   f'y2="{y:.1f}" stroke="#ddd"/>')
        out.append(f'<text x="{ml - 6}" y="{y + 4:.1f}" text-anchor="end" '
                   f'{_FONT} font-size="10">{t:g}</text>')
    gw = pw / len(groups)
    bw = gw * 0.8 / len(series)
    for gi, gname in enumerate(groups):
        for si, (sname, vals) in enumerate(series.items()):
            v = max(float(vals[gi]), 0.0)
            h = v / vmax * ph
            x = ml + gi * gw + gw * 0.1 + si * bw
            y = mt + ph - h
            color = PALETTE[si % len(PALETTE)]
            out.append(f'<rect x="{x:.1f}" y="{y:.1f}" width="{bw:.1f}" '
                       f'height="{h:.1f}" fill="{color}"/>')
        gx = ml + gi * gw + gw / 2
        out.append(f'<text x="{gx:.1f}" y="{mt + ph + 14}" '
                   f'text-anchor="middle" {_FONT} font-size="9" '
                   f'transform="rotate(35 {gx:.1f} {mt + ph + 14})">'
                   f'{escape(str(gname))}</text>')
    if baseline is not None:
        y = mt + ph - baseline / vmax * ph
        out.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{width - mr}" '
                   f'y2="{y:.1f}" stroke="#333" stroke-dasharray="4 3"/>')
    out.extend(_legend(series.keys(), ml, height - 16))
    if y_label:
        out.append(f'<text x="14" y="{mt + ph / 2}" {_FONT} font-size="11" '
                   f'text-anchor="middle" '
                   f'transform="rotate(-90 14 {mt + ph / 2})">'
                   f'{escape(y_label)}</text>')
    out.append("</svg>")
    return "\n".join(out)


def svg_line_chart(series: Mapping[str, tuple[Sequence[float],
                                              Sequence[float]]], *,
                   title: str = "", x_label: str = "", y_label: str = "",
                   width: int = 700, height: int = 380,
                   log_y: bool = False) -> str:
    """A multi-series line chart; each series is ``name: (xs, ys)``."""
    if not series:
        raise ValueError("need at least one series")
    pts = {k: (np.asarray(x, dtype=float), np.asarray(y, dtype=float))
           for k, (x, y) in series.items()}
    for name, (x, y) in pts.items():
        if x.shape != y.shape or x.ndim != 1 or x.size == 0:
            raise ValueError(f"series {name!r} malformed")
    all_x = np.concatenate([x for x, _ in pts.values()])
    all_y = np.concatenate([y for _, y in pts.values()])
    finite = np.isfinite(all_y)
    if not finite.any():
        raise ValueError("no finite y values")
    ylo, yhi = float(all_y[finite].min()), float(all_y[finite].max())
    if log_y:
        if ylo <= 0:
            raise ValueError("log_y requires positive values")
        ylo, yhi = math.log10(ylo), math.log10(yhi)
    if yhi == ylo:
        yhi = ylo + 1.0
    xlo, xhi = float(all_x.min()), float(all_x.max())
    if xhi == xlo:
        xhi = xlo + 1.0
    ml, mr, mt, mb = 60, 20, 40, 60
    pw, ph = width - ml - mr, height - mt - mb

    def sx(v: float) -> float:
        return ml + (v - xlo) / (xhi - xlo) * pw

    def sy(v: float) -> float:
        vv = math.log10(v) if log_y else v
        return mt + ph - (vv - ylo) / (yhi - ylo) * ph

    out = _header(width, height, title)
    for t in _nice_ticks(ylo, yhi):
        y = mt + ph - (t - ylo) / (yhi - ylo) * ph
        label = f"{10 ** t:g}" if log_y else f"{t:g}"
        out.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{width - mr}" '
                   f'y2="{y:.1f}" stroke="#ddd"/>')
        out.append(f'<text x="{ml - 6}" y="{y + 4:.1f}" text-anchor="end" '
                   f'{_FONT} font-size="10">{label}</text>')
    for t in _nice_ticks(xlo, xhi):
        x = sx(t)
        out.append(f'<text x="{x:.1f}" y="{mt + ph + 16}" '
                   f'text-anchor="middle" {_FONT} font-size="10">{t:g}</text>')
    for si, (name, (x, y)) in enumerate(pts.items()):
        color = PALETTE[si % len(PALETTE)]
        ok = np.isfinite(y)
        coords = " ".join(f"{sx(float(a)):.1f},{sy(float(b)):.1f}"
                          for a, b in zip(x[ok], y[ok]))
        out.append(f'<polyline points="{coords}" fill="none" '
                   f'stroke="{color}" stroke-width="2"/>')
    out.extend(_legend(pts.keys(), ml, height - 14))
    if x_label:
        out.append(f'<text x="{ml + pw / 2}" y="{mt + ph + 34}" '
                   f'text-anchor="middle" {_FONT} font-size="11">'
                   f'{escape(x_label)}</text>')
    if y_label:
        out.append(f'<text x="14" y="{mt + ph / 2}" {_FONT} font-size="11" '
                   f'text-anchor="middle" '
                   f'transform="rotate(-90 14 {mt + ph / 2})">'
                   f'{escape(y_label)}</text>')
    out.append("</svg>")
    return "\n".join(out)


def svg_heatmap(values: np.ndarray, *, title: str = "",
                x_labels: Sequence[str] | None = None,
                y_labels: Sequence[str] | None = None,
                invert: bool = True, width: int = 520,
                height: int = 460,
                points: np.ndarray | None = None) -> str:
    """A heatmap; with ``invert`` low values render hot (good regions)."""
    M = np.asarray(values, dtype=float)
    if M.ndim != 2:
        raise ValueError("values must be 2-D")
    ml, mr, mt, mb = 60, 20, 40, 50
    pw, ph = width - ml - mr, height - mt - mb
    rows, cols = M.shape
    cw, ch = pw / cols, ph / rows
    lo, hi = float(np.nanmin(M)), float(np.nanmax(M))
    span = hi - lo if hi > lo else 1.0
    out = _header(width, height, title)
    for r in range(rows):
        for c in range(cols):
            v = (M[r, c] - lo) / span
            if invert:
                v = 1.0 - v
            # Blue (cold/slow) to warm yellow (fast).
            red = int(255 * v)
            green = int(220 * v * 0.9 + 20)
            blue = int(180 * (1 - v) + 40)
            x = ml + c * cw
            y = mt + ph - (r + 1) * ch  # row 0 at the bottom
            out.append(f'<rect x="{x:.1f}" y="{y:.1f}" width="{cw + 0.5:.1f}" '
                       f'height="{ch + 0.5:.1f}" '
                       f'fill="rgb({red},{green},{blue})"/>')
    if points is not None:
        for c, r in np.asarray(points, dtype=float):
            x = ml + (c + 0.5) * cw
            y = mt + ph - (r + 0.5) * ch
            out.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
                       f'fill="none" stroke="black" stroke-width="1.2"/>')
    if x_labels is not None:
        out.append(f'<text x="{ml}" y="{mt + ph + 16}" {_FONT} '
                   f'font-size="10">{escape(str(x_labels[0]))}</text>')
        out.append(f'<text x="{ml + pw}" y="{mt + ph + 16}" '
                   f'text-anchor="end" {_FONT} font-size="10">'
                   f'{escape(str(x_labels[-1]))}</text>')
    if y_labels is not None:
        out.append(f'<text x="{ml - 6}" y="{mt + ph}" text-anchor="end" '
                   f'{_FONT} font-size="10">{escape(str(y_labels[0]))}</text>')
        out.append(f'<text x="{ml - 6}" y="{mt + 10}" text-anchor="end" '
                   f'{_FONT} font-size="10">{escape(str(y_labels[-1]))}</text>')
    out.append("</svg>")
    return "\n".join(out)


def _legend(names, x0: float, y: float) -> list[str]:
    out = []
    x = x0
    for i, name in enumerate(names):
        color = PALETTE[i % len(PALETTE)]
        out.append(f'<rect x="{x}" y="{y - 9}" width="10" height="10" '
                   f'fill="{color}"/>')
        out.append(f'<text x="{x + 14}" y="{y}" {_FONT} font-size="11">'
                   f'{escape(str(name))}</text>')
        x += 14 + 7 * len(str(name)) + 18
    return out
