"""One entry per paper artifact: renders tables/series from study data.

Index (see DESIGN.md §4):

=========  ==================================================================
E-T1       Table 1 — workloads and datasets
E-F2       Figure 2 — model R² comparison (Lasso/ElasticNet/RF/ET)
E-F3       Figure 3 — best-config execution time scaled to Random Search
E-F4       Figure 4 — search cost scaled to Random Search
E-F5       Figure 5 — execution-time distribution (medians, p90 tails)
E-F6       Figure 6 — min-execution-time-per-iteration, cold vs memoized
E-T2       Table 2 — iterations to reach within 1/5/10% of best
E-F7       Figure 7 — parameter-selection recall vs sample count
E-F8       Figure 8 — sampling behaviour in the cores×memory plane
E-F9       Figure 9 — GP response surface over tuning iterations
E-DEF      §5.2 text — tuned vs default-configuration comparison
E-ROB      docs/ROBUSTNESS.md — tuner quality degradation vs transient
           fault rate (not a paper artifact; added with the resilience
           layer)
=========  ==================================================================
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sparksim.conf import SparkConf
from ..sparksim.simulator import SparkSimulator
from ..utils.stats import geometric_mean
from .asciiplot import ascii_heatmap, ascii_scatter
from .svgplot import svg_grouped_bars, svg_heatmap, svg_line_chart
from ..workloads.datasets import DATASET_LABELS, SCALE_UNITS, TABLE1
from ..workloads.registry import WORKLOADS, get_workload
from .figures import RecallPoint, response_surface
from .harness import ComparisonStudy, StudyResult
from .reporting import format_table, section

__all__ = [
    "render_table1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_table2",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "run_default_comparison",
    "run_robustness_experiment",
    "svg_fig3",
    "svg_fig4",
    "svg_fig6",
    "svg_fig9",
]

_ABBREV = {name: cls.abbrev for name, cls in WORKLOADS.items()}


# --------------------------------------------------------------------------- E-T1
def render_table1() -> str:
    """Table 1 plus a sanity simulation of each cell under a sane config."""
    rows = []
    for name, datasets in TABLE1.items():
        scales = ", ".join(f"{d.scale:g}" for d in datasets)
        rows.append((f"{WORKLOADS[name].abbrev} ({name})",
                     f"{scales} ({SCALE_UNITS[name]})"))
    return format_table(["Workload", "Input Datasets (D1, D2, D3)"], rows,
                        title="Table 1: Workloads and their datasets")


# --------------------------------------------------------------------------- E-F2
def render_fig2(scores: dict[str, dict[str, float]]) -> str:
    """Figure 2 from ``{"PR-D1": {"Lasso": r2, ...}, ...}``."""
    models = list(next(iter(scores.values())).keys())
    rows = [[cell] + [scores[cell][m] for m in models] for cell in scores]
    return format_table(["Dataset"] + models, rows,
                        title="Figure 2: cross-validated R² per model "
                              "(higher is better)")


# --------------------------------------------------------------------------- E-F3/F4
def _scaled_table(study: StudyResult, metric: str, title: str,
                  baseline: str = "RandomSearch") -> str:
    tuners = [t for t in ("ROBOTune", "BestConfig", "Gunther", baseline)
              if study.filter(tuner=t)]
    getter = {"best": study.mean_best_time,
              "cost": study.mean_search_cost}[metric]
    rows = []
    ratios: dict[str, list[float]] = {t: [] for t in tuners}
    workloads = sorted({r.workload for r in study.records},
                       key=list(WORKLOADS).index)
    datasets = sorted({r.dataset for r in study.records})
    for wl in workloads:
        for ds in datasets:
            try:
                base = getter(baseline, wl, ds)
            except KeyError:
                continue
            row: list[object] = [f"{_ABBREV[wl]}-{ds}"]
            for t in tuners:
                val = getter(t, wl, ds) / base
                row.append(val)
                ratios[t].append(val)
            rows.append(row)
    gm_row: list[object] = ["geo-mean"]
    gm_row += [geometric_mean(ratios[t]) for t in tuners]
    rows.append(gm_row)
    return format_table(["Workload"] + tuners, rows, title=title)


def render_fig3(study: StudyResult) -> str:
    """Figure 3: execution time of suggested configs scaled to RS
    (lower is better)."""
    return _scaled_table(study, "best",
                         "Figure 3: best-config execution time scaled to "
                         "Random Search (lower is better)")


def render_fig4(study: StudyResult) -> str:
    """Figure 4: search cost scaled to RS (lower is better)."""
    return _scaled_table(study, "cost",
                         "Figure 4: search cost scaled to Random Search "
                         "(lower is better)")


def _ratio_series(study: StudyResult, metric: str,
                  baseline: str = "RandomSearch"):
    """(group labels, {tuner: ratios}) for the bar-chart figures."""
    tuners = [t for t in ("ROBOTune", "BestConfig", "Gunther", baseline)
              if study.filter(tuner=t)]
    getter = {"best": study.mean_best_time,
              "cost": study.mean_search_cost}[metric]
    workloads = sorted({r.workload for r in study.records},
                       key=list(WORKLOADS).index)
    datasets = sorted({r.dataset for r in study.records})
    groups: list[str] = []
    series: dict[str, list[float]] = {t: [] for t in tuners}
    for wl in workloads:
        for ds in datasets:
            try:
                base = getter(baseline, wl, ds)
            except KeyError:
                continue
            groups.append(f"{_ABBREV[wl]}-{ds}")
            for t in tuners:
                series[t].append(getter(t, wl, ds) / base)
    return groups, series


def svg_fig3(study: StudyResult) -> str:
    """Figure 3 as an SVG grouped bar chart."""
    groups, series = _ratio_series(study, "best")
    return svg_grouped_bars(
        groups, series, baseline=1.0,
        title="Figure 3: best-config execution time scaled to Random "
              "Search (lower is better)",
        y_label="time / RandomSearch")


def svg_fig4(study: StudyResult) -> str:
    """Figure 4 as an SVG grouped bar chart."""
    groups, series = _ratio_series(study, "cost")
    return svg_grouped_bars(
        groups, series, baseline=1.0,
        title="Figure 4: search cost scaled to Random Search "
              "(lower is better)",
        y_label="cost / RandomSearch")


def svg_fig6(study: StudyResult, workload: str = "pagerank") -> dict[str, str]:
    """Figure 6 as SVG line charts, one file per dataset."""
    out: dict[str, str] = {}
    for ds in ("D1", "D3"):
        series = {}
        for t in ("ROBOTune", "BestConfig", "Gunther", "RandomSearch"):
            recs = study.filter(tuner=t, workload=workload, dataset=ds)
            if not recs:
                continue
            n = min(len(r.curve) for r in recs)
            mean = np.nanmean(
                np.vstack([np.where(np.isfinite(r.curve[:n]), r.curve[:n],
                                    np.nan) for r in recs]), axis=0)
            series[t] = (np.arange(1, n + 1), mean)
        if series:
            out[f"fig6_{_ABBREV[workload]}_{ds}.svg"] = svg_line_chart(
                series,
                title=f"Figure 6 [{_ABBREV[workload]}-{ds}]: min execution "
                      "time per iteration",
                x_label="iteration", y_label="best time (s)")
    return out


def svg_fig9(result, at_iterations: Sequence[int] = (25, 50, 75)
             ) -> dict[str, str]:
    """Figure 9 as SVG heatmaps, one file per iteration snapshot."""
    surfaces = response_surface(result, at_iterations=at_iterations)
    out: dict[str, str] = {}
    for k, surf in surfaces.items():
        grid = surf["mean"].shape[0]
        pts = surf["points"] * (grid - 1)
        out[f"fig9_iter{k}.svg"] = svg_heatmap(
            surf["mean"], invert=True, points=pts,
            x_labels=[f"{surf['xs'][0]:.0f} cores",
                      f"{surf['xs'][-1]:.0f} cores"],
            y_labels=[f"{surf['ys'][0] / 1024:.0f} GB",
                      f"{surf['ys'][-1] / 1024:.0f} GB"],
            title=f"Figure 9: GP response surface after {k} iterations "
                  "(warm = predicted fast)")
    return out


# --------------------------------------------------------------------------- E-F5
def render_fig5(study: StudyResult,
                workloads: Sequence[str] = ("pagerank", "kmeans")) -> str:
    """Figure 5: distribution of per-evaluation execution time.

    The paper reports medians and the 90th-percentile tail of each tuner's
    sampled-configuration execution times, as multiples of ROBOTune's.
    """
    parts = []
    for wl in workloads:
        base = np.concatenate([r.exec_times
                               for r in study.filter(tuner="ROBOTune",
                                                     workload=wl)])
        if base.size == 0:
            continue
        rows = []
        for t in ("ROBOTune", "BestConfig", "Gunther", "RandomSearch"):
            recs = study.filter(tuner=t, workload=wl)
            if not recs:
                continue
            times = np.concatenate([r.exec_times for r in recs])
            rows.append((t,
                         float(np.median(times)),
                         float(np.median(times) / np.median(base)),
                         float(np.percentile(times, 90)),
                         float(np.percentile(times, 90)
                               / np.percentile(base, 90))))
        parts.append(format_table(
            ["Tuner", "median (s)", "median/ROBOTune", "p90 (s)",
             "p90/ROBOTune"],
            rows,
            title=f"Figure 5 [{_ABBREV[wl]}]: execution-time distribution"))
    return "\n\n".join(parts)


# --------------------------------------------------------------------------- E-F6
def render_fig6(study: StudyResult, workload: str = "pagerank",
                datasets: Sequence[str] = ("D1", "D3"),
                checkpoints: Sequence[int] = (1, 5, 10, 20, 30, 40, 60, 80,
                                              100)) -> str:
    """Figure 6: minimum execution time at each iteration, cold (D1) vs
    memoized (D3), all tuners."""
    parts = []
    for ds in datasets:
        rows = []
        tuners = ("ROBOTune", "BestConfig", "Gunther", "RandomSearch")
        for it in checkpoints:
            row: list[object] = [it]
            for t in tuners:
                recs = study.filter(tuner=t, workload=workload, dataset=ds)
                if not recs:
                    row.append(float("nan"))
                    continue
                vals = [r.curve[min(it, len(r.curve)) - 1] for r in recs]
                finite = [v for v in vals if np.isfinite(v)]
                row.append(float(np.mean(finite)) if finite else float("inf"))
            rows.append(row)
        parts.append(format_table(
            ["iteration"] + list(tuners), rows,
            title=f"Figure 6 [{_ABBREV[workload]}-{ds}]: min execution "
                  f"time (s) by iteration"))
    return "\n\n".join(parts)


# --------------------------------------------------------------------------- E-T2
def iterations_to_within(curve: np.ndarray, fraction: float) -> int | None:
    """First 1-based iteration whose best-so-far is within *fraction* of
    the session's final best."""
    finite = curve[np.isfinite(curve)]
    if finite.size == 0:
        return None
    target = finite.min() * (1.0 + fraction)
    hits = np.nonzero(curve <= target)[0]
    return int(hits[0]) + 1 if hits.size else None


def render_table2(study: StudyResult,
                  fractions: Sequence[float] = (0.01, 0.05, 0.10)) -> str:
    """Table 2: ROBOTune's average iterations to reach within 1/5/10% of
    the best achieved time."""
    rows = []
    workloads = sorted({r.workload for r in study.records},
                       key=list(WORKLOADS).index)
    for wl in workloads:
        recs = study.filter(tuner="ROBOTune", workload=wl)
        if not recs:
            continue
        row: list[object] = [wl]
        for frac in fractions:
            its = [iterations_to_within(r.curve, frac) for r in recs]
            its = [i for i in its if i is not None]
            row.append(float(np.mean(its)) if its else float("nan"))
        rows.append(row)
    headers = ["Workload"] + [f"Within {f:.0%}" for f in fractions]
    return format_table(headers, rows,
                        title="Table 2: avg iterations to reach within a "
                              "percentage of the best achieved time",
                        float_fmt="{:.0f}")


# --------------------------------------------------------------------------- E-F7
def render_fig7(points_by_workload: dict[str, list[RecallPoint]]) -> str:
    """Figure 7: recall vs number of parameter-selection samples."""
    counts = sorted({p.n_samples for pts in points_by_workload.values()
                     for p in pts}, reverse=True)
    rows = []
    for wl, pts in points_by_workload.items():
        by_n = {p.n_samples: p.recall for p in pts}
        rows.append([_ABBREV.get(wl, wl)] +
                    [by_n.get(n, float("nan")) for n in counts])
    data = np.array([[r[1 + i] for i in range(len(counts))] for r in rows],
                    dtype=float)
    rows.append(["average"] + [float(v) for v in np.nanmean(data, axis=0)])
    return format_table(["Workload"] + [str(n) for n in counts], rows,
                        title="Figure 7: recall of selected parameters vs "
                              "selection-sample count")


# --------------------------------------------------------------------------- E-F8
def render_fig8(study: StudyResult, workload: str = "pagerank",
                dataset: str = "D3") -> str:
    """Figure 8: sampling behaviour in the cores-vs-memory plane.

    The paper shows scatter plots; the textual rendering reports, per
    tuner, how concentrated the sampling is: the fraction of samples
    falling inside the densest 20%x20% cell of the (log-memory, cores)
    plane, plus overall coverage (fraction of a 5x5 grid's cells visited).
    A high densest-cell share with high coverage = exploitation plus
    exploration (ROBOTune); uniform low shares = pure exploration.
    """
    rows = []
    for t in ("ROBOTune", "BestConfig", "Gunther", "RandomSearch"):
        recs = study.filter(tuner=t, workload=workload, dataset=dataset)
        if not recs:
            continue
        pts = np.vstack([r.cores_mem for r in recs])
        cores = pts[:, 0] / 32.0
        logmem = np.log(pts[:, 1] / 1024.0) / np.log(180.0)
        gx = np.clip((cores * 5).astype(int), 0, 4)
        gy = np.clip((logmem * 5).astype(int), 0, 4)
        hist = np.zeros((5, 5))
        np.add.at(hist, (gx, gy), 1)
        densest = float(hist.max() / hist.sum())
        coverage = float((hist > 0).sum() / 25.0)
        rows.append((t, len(pts), densest, coverage))
    table = format_table(
        ["Tuner", "samples", "densest-cell share", "grid coverage"], rows,
        title=f"Figure 8 [{_ABBREV[workload]}-{dataset}]: cores x memory "
              "sampling concentration")
    plots = []
    for t in ("ROBOTune", "RandomSearch"):
        recs = study.filter(tuner=t, workload=workload, dataset=dataset)
        if not recs:
            continue
        pts = np.vstack([r.cores_mem for r in recs])
        plots.append(ascii_scatter(
            pts[:, 0], np.log(pts[:, 1]), width=36, height=12,
            title=f"\n{t} sampling (x = cores, y = log memory):",
            x_label="cores", y_label="log-mem"))
    return table + "\n" + "\n".join(plots)


# --------------------------------------------------------------------------- E-F9
def render_fig9(result, at_iterations: Sequence[int] = (25, 50, 75)) -> str:
    """Figure 9: GP response surface summary at several iterations.

    Prints, per iteration count, where the GP believes the best region is
    (the grid minimizer in native cores/memory units) and the fraction of
    the plane it considers within 20% of that minimum — shrinking values
    show the model sharpening around the promising region.
    """
    surfaces = response_surface(result, at_iterations=at_iterations)
    rows = []
    plots = []
    for k, surf in surfaces.items():
        mean = surf["mean"]
        i, j = np.unravel_index(np.argmin(mean), mean.shape)
        best = float(mean[i, j])
        near = float((mean <= best * 1.2).mean())
        rows.append((k, float(surf["xs"][j]), float(surf["ys"][i] / 1024.0),
                     best, near))
        grid = mean.shape[0]
        pts = surf["points"]
        # Map observed (x, y) unit-ish coordinates onto grid cells.
        xs, ys = surf["xs"], surf["ys"]
        px = np.interp(pts[:, 0], np.linspace(0, 1, grid),
                       np.arange(grid))
        py = np.interp(pts[:, 1], np.linspace(0, 1, grid),
                       np.arange(grid))
        plots.append(ascii_heatmap(
            mean, invert=True, points=np.column_stack([px, py]),
            x_labels=[f"{xs[0]:.0f}c", f"{xs[-1]:.0f}c"],
            y_labels=[f"{ys[0] / 1024:.0f}g", f"{ys[-1] / 1024:.0f}g"],
            title=f"\nGP posterior mean after {k} iterations "
                  "(dense = predicted fast):"))
    table = format_table(
        ["iteration", "best cores", "best memory (GB)",
         "perceived min (s)", "near-optimal area"],
        rows, title="Figure 9: GP perceived response surface over iterations")
    return table + "\n" + "\n".join(plots)


# --------------------------------------------------------------------------- E-DEF
def run_default_comparison(study: StudyResult | None = None, *,
                           simulator: SparkSimulator | None = None,
                           rng: int = 2024) -> str:
    """§5.2: tuned configurations vs the Spark default configuration.

    Defaults run uncapped (the paper reports their raw slowdowns and
    failures); the tuned reference is the mean ROBOTune best time from the
    study when available.
    """
    sim = simulator or SparkSimulator()
    rows = []
    for wl in WORKLOADS:
        for ds in DATASET_LABELS:
            workload = get_workload(wl, ds)
            res = sim.run(workload.build_stages(), SparkConf(), rng=rng)
            tuned: float | None = None
            if study is not None:
                try:
                    tuned = study.mean_best_time("ROBOTune", wl, ds)
                except KeyError:
                    tuned = None
            label = f"{_ABBREV[wl]}-{ds}"
            if not res.ok:
                rows.append((label, res.status.value,
                             float("nan"), tuned if tuned else float("nan"),
                             "default fails: " + res.failure_reason[:40]))
            else:
                speedup = res.duration_s / tuned if tuned else float("nan")
                rows.append((label, "success", res.duration_s,
                             tuned if tuned else float("nan"),
                             f"{speedup:.1f}x speedup" if tuned else "-"))
    return format_table(
        ["Workload", "default status", "default (s)", "tuned (s)", "note"],
        rows, title="§5.2: default configuration vs tuned (uncapped)")


# --------------------------------------------------------------------------- E-ROB
def run_robustness_experiment(*, workload: str = "pagerank",
                              dataset: str = "D1", budget: int = 50,
                              trials: int = 2,
                              fault_rates: Sequence[float] = (0.0, 0.05,
                                                              0.1, 0.2),
                              retries: int = 2,
                              tuners: Sequence[str] = ("ROBOTune",
                                                       "RandomSearch"),
                              base_seed: int = 0,
                              n_jobs: int | None = None) -> str:
    """Tuner quality degradation under transient fault injection.

    Sweeps *fault_rates* over otherwise-identical comparison studies (one
    workload/dataset to keep the cost of the sweep reasonable).  Because
    the fault plan is seeded from the session's grid coordinates and the
    injector always executes the wrapped objective, the underlying
    simulator draws are identical across rates — differences in the
    reported best time are attributable to the faults themselves.

    Reports, per (rate, tuner): the mean best execution time (NaN-mean,
    since an all-failed session records NaN), its degradation relative to
    the same tuner's fault-free mean, the mean search cost (retry backoff
    included), and the total transient failures surfaced / retries spent.
    """
    first: dict[str, float] = {}
    rows = []
    for rate in fault_rates:
        study = ComparisonStudy(budget=budget, trials=trials,
                                workloads=[workload], datasets=[dataset],
                                tuners=list(tuners), fault_rate=rate,
                                retries=retries, base_seed=base_seed,
                                n_jobs=n_jobs).run()
        for tuner in tuners:
            recs = study.filter(tuner=tuner)
            best = float(np.nanmean([r.best_time_s for r in recs]))
            cost = float(np.mean([r.search_cost_s for r in recs]))
            first.setdefault(tuner, best)
            base = first[tuner]
            degr = (best - base) / base * 100.0 if base else float("nan")
            rows.append((f"{rate:.2f}", tuner, best, f"{degr:+.1f}%",
                         cost / 60.0,
                         sum(r.n_transient for r in recs),
                         sum(r.n_retries for r in recs)))
    table = format_table(
        ["fault rate", "tuner", "mean best (s)", "vs fault-free",
         "cost (min)", "transient", "retries"],
        rows,
        title=f"E-ROB: fault-rate sweep ({workload}/{dataset}, "
              f"budget {budget}, {trials} trials, {retries} retries)")
    return section("Robustness: tuning under transient faults") \
        + "\n" + table
