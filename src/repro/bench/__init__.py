"""Experiment harness regenerating every table and figure of the paper."""

from .experiments import (
    iterations_to_within,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    run_default_comparison,
)
from .figures import (
    FIG2_MODELS,
    collect_lhs_times,
    model_r2_scores,
    response_surface,
    selection_recall_sweep,
)
from .asciiplot import ascii_heatmap, ascii_scatter
from .harness import TUNER_NAMES, ComparisonStudy, SessionRecord, StudyResult
from .reporting import format_series, format_table, section

__all__ = [
    "ComparisonStudy",
    "StudyResult",
    "SessionRecord",
    "TUNER_NAMES",
    "render_table1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_table2",
    "run_default_comparison",
    "iterations_to_within",
    "FIG2_MODELS",
    "collect_lhs_times",
    "model_r2_scores",
    "selection_recall_sweep",
    "response_surface",
    "format_table",
    "format_series",
    "section",
    "ascii_heatmap",
    "ascii_scatter",
]
