"""Gunther (Liao, Datta & Willke, Euro-Par 2013) reimplemented for Spark.

A genetic algorithm with the "aggressive selection and mutation" the
Gunther paper describes: a randomly initialized population whose size
scales with the number of tuned parameters (two extra individuals per
parameter), truncation selection keeping only the fittest quarter,
uniform crossover among survivors, and high-rate Gaussian mutation.

Per ROBOTune §5.1, this reimplementation is augmented with a static
threshold that stops imbalanced configurations from running too long.
"""

from __future__ import annotations

import numpy as np

from ..obs import as_tracer, evaluation_data
from ..sampling.random_sampling import uniform_samples
from ..utils.rng import as_generator
from .base import Objective, Tuner, TuningResult, workload_key

__all__ = ["Gunther"]


class Gunther(Tuner):
    """Genetic search with aggressive selection and mutation.

    Parameters
    ----------
    population:
        Individuals per generation; ``None`` uses Gunther's rule of
        ``base + 2 per parameter`` (capped at half the budget so at least
        two generations run).
    survivor_fraction:
        Fraction kept by truncation selection (aggressive: 0.25).
    mutation_rate / mutation_sigma:
        Per-gene mutation probability and Gaussian step size.
    static_threshold_s:
        Per-run kill threshold; ``None`` uses the objective's own cap.
    """

    name = "Gunther"

    def __init__(self, *, population: int | None = None,
                 survivor_fraction: float = 0.25,
                 mutation_rate: float = 0.25, mutation_sigma: float = 0.15,
                 static_threshold_s: float | None = None):
        if population is not None and population < 4:
            raise ValueError("population must be >= 4")
        if not 0.0 < survivor_fraction < 1.0:
            raise ValueError("survivor_fraction must be in (0, 1)")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if mutation_sigma <= 0:
            raise ValueError("mutation_sigma must be positive")
        self.population = population
        self.survivor_fraction = survivor_fraction
        self.mutation_rate = mutation_rate
        self.mutation_sigma = mutation_sigma
        self.static_threshold_s = static_threshold_s

    def _population_size(self, dim: int, budget: int) -> int:
        if self.population is not None:
            pop = self.population
        else:
            pop = 8 + 2 * dim  # "increases by two for each new parameter"
        return max(4, min(pop, budget // 2 if budget >= 8 else budget))

    def tune(self, objective: Objective, budget: int,
             rng: np.random.Generator | int | None = None,
             tracer=None) -> TuningResult:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = as_generator(rng)
        tracer = as_tracer(tracer)
        result = TuningResult(tuner=self.name, workload=workload_key(objective))
        dim = objective.space.dim
        pop_size = self._population_size(dim, budget)

        def evaluate(U: np.ndarray) -> np.ndarray:
            fitness = np.empty(len(U))
            for i, u in enumerate(U):
                if len(result.evaluations) >= budget:
                    fitness[i:] = np.inf
                    return fitness
                ev = objective(u, self.static_threshold_s)
                idx = len(result.evaluations)
                result.evaluations.append(ev)
                tracer.emit("eval.result", evaluation_data(idx, ev))
                tracer.count("evals")
                fitness[i] = ev.objective if ev.ok else np.inf
            return fitness

        with tracer.span("tune", tuner=self.name, budget=int(budget)):
            # Random initial population — a significant share of the
            # budget, which §5.2 identifies as Gunther's
            # exploration/exploitation imbalance.
            pop = uniform_samples(min(pop_size, budget), dim, rng)
            fit = evaluate(pop)

            generation = 0
            while len(result.evaluations) < budget:
                order = np.argsort(fit)
                n_keep = max(2, int(len(pop) * self.survivor_fraction))
                elite = pop[order[:n_keep]]
                n_children = min(pop_size, budget - len(result.evaluations))
                children = np.empty((n_children, dim))
                for c in range(n_children):
                    pa, pb = elite[rng.integers(0, n_keep, size=2)]
                    mask = rng.random(dim) < 0.5       # uniform crossover
                    child = np.where(mask, pa, pb)
                    mutate = rng.random(dim) < self.mutation_rate
                    child = child + mutate * rng.normal(
                        0.0, self.mutation_sigma, size=dim)
                    children[c] = np.clip(child, 0.0, 1.0)
                child_fit = evaluate(children)
                # Generational replacement with elitism: survivors +
                # children compete for the next generation.
                pool = np.vstack([elite, children])
                pool_fit = np.concatenate([fit[order[:n_keep]], child_fit])
                order = np.argsort(pool_fit)[:pop_size]
                pop, fit = pool[order], pool_fit[order]
                generation += 1
                finite = fit[np.isfinite(fit)]
                tracer.emit("gunther.generation",
                            {"generation": generation,
                             "survivors": int(n_keep),
                             "children": int(n_children),
                             "best_fitness": float(finite.min())
                             if finite.size else None})

        return result
