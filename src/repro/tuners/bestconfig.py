"""BestConfig (Zhu et al., SoCC 2017) reimplemented from its paper.

Two cooperating algorithms:

* **Divide & Diverge Sampling (DDS)** — divide every parameter range into
  ``k`` intervals and pick samples so that, per parameter, each chosen
  sample lies in a different interval ("diverging" the coverage).  This is
  a Latin-hypercube-style stratification over the current search bounds.
* **Recursive Bound & Search (RBS)** — after a round of sampling, bound a
  new (smaller) search space around the best point found — the
  hyper-rectangle spanned by its neighbouring samples in each dimension —
  and recurse with another DDS round inside the bounds.

With the paper's recommended sample-set size of 100 and ROBOTune's budget
of 100 evaluations, only a single DDS round runs and no recursive
bounding happens — which is exactly how §5.2 explains BestConfig's
random-search-like behaviour.  Smaller ``round_size`` values enable real
recursion.
"""

from __future__ import annotations

import numpy as np

from ..obs import as_tracer, evaluation_data
from ..sampling.lhs import latin_hypercube
from ..utils.rng import as_generator
from .base import Evaluation, Objective, Tuner, TuningResult, workload_key

__all__ = ["BestConfig"]


class BestConfig(Tuner):
    """Divide-and-diverge sampling plus recursive bound-and-search.

    Parameters
    ----------
    round_size:
        Samples per DDS round (the BestConfig paper suggests 100).
    static_threshold_s:
        Per-run kill threshold; BestConfig adapts it downward to the best
        time seen so far times ``threshold_scale`` (its "modify the
        threshold during runtime" policy noted in §5.3).
    threshold_scale:
        Multiplier on the best observed time for the adaptive threshold.
    """

    name = "BestConfig"

    def __init__(self, *, round_size: int = 100,
                 static_threshold_s: float | None = None,
                 threshold_scale: float = 8.0):
        if round_size < 2:
            raise ValueError("round_size must be >= 2")
        if threshold_scale <= 1.0:
            raise ValueError("threshold_scale must exceed 1")
        self.round_size = round_size
        self.static_threshold_s = static_threshold_s
        self.threshold_scale = threshold_scale

    def tune(self, objective: Objective, budget: int,
             rng: np.random.Generator | int | None = None,
             tracer=None) -> TuningResult:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = as_generator(rng)
        tracer = as_tracer(tracer)
        result = TuningResult(tuner=self.name, workload=workload_key(objective))
        dim = objective.space.dim
        lo = np.zeros(dim)
        hi = np.ones(dim)
        threshold = self.static_threshold_s

        with tracer.span("tune", tuner=self.name, budget=int(budget)):
            remaining = budget
            while remaining > 0:
                n = min(self.round_size, remaining)
                # DDS inside the current bounds: stratified per-parameter
                # intervals with diverged (permuted) combinations.
                samples = lo + latin_hypercube(n, dim, rng) * (hi - lo)
                round_evals: list[Evaluation] = []
                for u in samples:
                    ev = objective(u, threshold)
                    i = len(result.evaluations)
                    result.evaluations.append(ev)
                    round_evals.append(ev)
                    tracer.emit("eval.result", evaluation_data(i, ev))
                    tracer.count("evals")
                    if ev.truncated and threshold is not None:
                        tracer.emit("guard.kill",
                                    {"i": i, "threshold": float(threshold),
                                     "cost_s": float(ev.cost_s)})
                    best = self._best_time(result)
                    if best is not None:
                        # Adaptive runtime threshold.
                        adaptive = best * self.threshold_scale
                        threshold = adaptive \
                            if self.static_threshold_s is None \
                            else min(self.static_threshold_s, adaptive)
                remaining -= n
                if remaining <= 0:
                    break
                lo, hi = self._bound(round_evals, lo, hi)
                tracer.emit("bestconfig.bound",
                            {"lo": lo, "hi": hi,
                             "volume": float(np.prod(hi - lo))})

        return result

    @staticmethod
    def _best_time(result: TuningResult) -> float | None:
        times = [e.objective for e in result.evaluations if e.ok]
        return min(times) if times else None

    @staticmethod
    def _bound(round_evals: list[Evaluation], lo: np.ndarray,
               hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """RBS: shrink the bounds around the round's best sample.

        Per dimension, the new bounds are the closest other-sample
        coordinates flanking the best point (or the old bound if none).
        """
        ok = [e for e in round_evals if e.ok]
        pool = ok if ok else round_evals
        best = min(pool, key=lambda e: e.objective).vector
        others = np.array([e.vector for e in round_evals])
        new_lo, new_hi = lo.copy(), hi.copy()
        for d in range(len(best)):
            col = others[:, d]
            below = col[col < best[d]]
            above = col[col > best[d]]
            if below.size:
                new_lo[d] = below.max()
            if above.size:
                new_hi[d] = above.min()
            if new_hi[d] - new_lo[d] < 1e-6:
                center = best[d]
                new_lo[d] = max(center - 0.05, 0.0)
                new_hi[d] = min(center + 0.05, 1.0)
        return new_lo, new_hi
