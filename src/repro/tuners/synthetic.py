"""Synthetic objectives for testing and benchmarking tuners.

These implement the same :class:`~repro.tuners.base.Objective` protocol as
:class:`~repro.tuners.objective.WorkloadObjective` but evaluate a cheap
analytic function instead of the cluster simulator, so tuner logic can be
exercised (and unit-tested) in microseconds.  The default surface is a
noisy quadratic bowl over a handful of *effective* dimensions with the
remaining dimensions inert — the same structure (low intrinsic
dimensionality inside a high-dimensional space) that motivates the paper's
parameter selection.
"""

from __future__ import annotations

import threading

import numpy as np

from ..space.parameter import FloatParameter
from ..space.space import ConfigSpace
from ..sparksim.result import RunStatus
from ..utils.rng import as_generator, spawn
from .base import Evaluation

__all__ = ["SyntheticObjective", "synthetic_space"]


class _Dataset:
    def __init__(self, label: str):
        self.label = label


class _Identity:
    """Minimal workload identity (key / full_key / dataset.label) so the
    synthetic objective participates in ROBOTune's caches."""

    def __init__(self, name: str, dataset: str):
        self.key = name
        self.full_key = f"{name}/{dataset}"
        self.dataset = _Dataset(dataset)


def synthetic_space(dim: int = 10) -> ConfigSpace:
    """A continuous unit-range space with ``dim`` anonymous parameters."""
    return ConfigSpace([FloatParameter(f"x{i}", 0.0, 1.0, 0.5)
                        for i in range(dim)])


class SyntheticObjective:
    """Noisy quadratic bowl with inert extra dimensions.

    ``f(u) = base + scale * sum_j (u_j - optimum_j)^2`` over the first
    ``n_effective`` coordinates, times multiplicative lognormal noise.
    Evaluations whose true value exceeds a kill threshold are truncated,
    mirroring the guard semantics of the real objective.

    Parameters
    ----------
    space:
        Defaults to a 10-dimensional :func:`synthetic_space`.
    n_effective:
        Coordinates that actually influence the objective.
    optimum:
        Location of the optimum in the effective coordinates (default 0.3).
    base / scale:
        Objective value at the optimum and the bowl's steepness.
    noise:
        Lognormal sigma of the multiplicative evaluation noise.
    name / dataset:
        Optional workload identity; when set, ROBOTune's selection cache
        and memoization buffer treat this objective like a named workload.
    """

    def __init__(self, space: ConfigSpace | None = None, *,
                 n_effective: int = 3, optimum: float = 0.3,
                 base: float = 10.0, scale: float = 100.0,
                 noise: float = 0.02, time_limit_s: float = 480.0,
                 name: str | None = None, dataset: str = "D1",
                 rng: np.random.Generator | int | None = None):
        self._space = space or synthetic_space()
        if not 1 <= n_effective <= self._space.dim:
            raise ValueError("n_effective must be within the space dim")
        self.n_effective = n_effective
        self.optimum = float(optimum)
        self.base = float(base)
        self.scale = float(scale)
        self.noise = float(noise)
        self._time_limit_s = float(time_limit_s)
        self._rng = as_generator(rng)
        # Mutable holder so views (with_space / spawn_view) share the
        # counter; the lock keeps increments exact under batch threads.
        self._counter = {"n": 0}
        self._lock = threading.Lock()
        self._full_names = self._space.names[: n_effective]
        if name is not None:
            self.workload = _Identity(name, dataset)

    @property
    def space(self) -> ConfigSpace:
        return self._space

    @property
    def time_limit_s(self) -> float:
        return self._time_limit_s

    @property
    def n_evaluations(self) -> int:
        """Total evaluations across this objective and all of its views."""
        return self._counter["n"]

    @n_evaluations.setter
    def n_evaluations(self, value: int) -> None:
        self._counter["n"] = int(value)

    def with_space(self, space: ConfigSpace) -> "SyntheticObjective":
        """View through a subspace; frozen coordinates come from decode."""
        clone = object.__new__(SyntheticObjective)
        clone.__dict__ = dict(self.__dict__)
        clone._space = space
        return clone

    def spawn_view(self) -> "SyntheticObjective":
        """An independently seeded view for concurrent batch evaluation.

        Same contract as ``WorkloadObjective.spawn_view``: shares the
        space and evaluation counter, carries a child RNG split off the
        parent stream so batched results are worker-count independent.
        Subclasses inherit it (views keep the subclass behavior).
        """
        clone = object.__new__(type(self))
        clone.__dict__ = dict(self.__dict__)
        clone._rng = spawn(self._rng, 1)[0]
        return clone

    def true_value(self, conf: dict) -> float:
        """Noise-free objective of a full native configuration."""
        err = sum((float(conf[n]) - self.optimum) ** 2
                  for n in self._full_names)
        return self.base + self.scale * err

    def __call__(self, u: np.ndarray,
                 time_limit_s: float | None = None) -> Evaluation:
        u = np.asarray(u, dtype=float)
        conf = self._space.decode(u)
        value = self.true_value(conf) \
            * float(np.exp(self._rng.normal(0.0, self.noise)))
        limit = self._time_limit_s
        if time_limit_s is not None:
            limit = min(limit, float(time_limit_s))
        with self._lock:
            self._counter["n"] += 1
        if value > limit:
            return Evaluation(vector=u.copy(), config=conf,
                              objective=self._time_limit_s, cost_s=limit,
                              status=RunStatus.TIMEOUT, truncated=True)
        return Evaluation(vector=u.copy(), config=conf, objective=value,
                          cost_s=value, status=RunStatus.SUCCESS)
