"""Tuners: ROBOTune plus the paper's three search-based baselines."""

from .base import Evaluation, Objective, Tuner, TuningResult, workload_key
from .bestconfig import BestConfig
from .gunther import Gunther
from .objective import DEFAULT_TIME_LIMIT_S, WorkloadObjective
from .random_search import RandomSearch
from .synthetic import SyntheticObjective, synthetic_space


def __getattr__(name: str):
    # Lazy re-export: repro.core imports repro.tuners.base, so importing
    # ROBOTune eagerly here would create an import cycle.
    if name in ("ROBOTune", "ROBOTuneResult"):
        from ..core import tuner as _core_tuner
        return getattr(_core_tuner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Evaluation",
    "Objective",
    "Tuner",
    "TuningResult",
    "workload_key",
    "WorkloadObjective",
    "DEFAULT_TIME_LIMIT_S",
    "ROBOTune",
    "ROBOTuneResult",
    "BestConfig",
    "Gunther",
    "RandomSearch",
    "SyntheticObjective",
    "synthetic_space",
]
