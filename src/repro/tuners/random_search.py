"""Random Search baseline (Bergstra & Bengio, 2012).

Samples the full configuration space uniformly at random for the whole
budget.  Per §5.1, the baseline is augmented with a static threshold that
stops imbalanced configurations from running too long (the same execution
cap every tuner gets).
"""

from __future__ import annotations

import numpy as np

from ..obs import as_tracer, evaluation_data
from ..sampling.random_sampling import uniform_samples
from ..utils.rng import as_generator
from .base import Objective, Tuner, TuningResult, workload_key

__all__ = ["RandomSearch"]


class RandomSearch(Tuner):
    """Uniform random sampling of the tuning space.

    Parameters
    ----------
    static_threshold_s:
        Per-run kill threshold; ``None`` uses the objective's own cap.
    """

    name = "RandomSearch"

    def __init__(self, *, static_threshold_s: float | None = None):
        self.static_threshold_s = static_threshold_s

    def tune(self, objective: Objective, budget: int,
             rng: np.random.Generator | int | None = None,
             tracer=None) -> TuningResult:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = as_generator(rng)
        tracer = as_tracer(tracer)
        result = TuningResult(tuner=self.name, workload=workload_key(objective))
        U = uniform_samples(budget, objective.space.dim, rng)
        with tracer.span("tune", tuner=self.name, budget=int(budget)):
            for i, u in enumerate(U):
                ev = objective(u, self.static_threshold_s)
                result.evaluations.append(ev)
                tracer.emit("eval.result", evaluation_data(i, ev))
                tracer.count("evals")
        return result
