"""Tuner protocol, evaluation records, and tuning results.

All four tuners (ROBOTune, BestConfig, Gunther, Random Search) share this
interface: they receive an :class:`Objective` (a black-box from unit-cube
vectors to execution outcomes) and an evaluation budget, and produce a
:class:`TuningResult`.  Search cost (paper §5.3) is the summed execution
time of every configuration the tuner ran, including truncated and failed
runs — exactly what a real cluster would have spent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..space.space import ConfigSpace, Configuration
from ..sparksim.result import RunStatus

__all__ = ["Evaluation", "Objective", "TuningResult", "Tuner", "workload_key"]


def workload_key(objective: "Objective") -> str:
    """Workload identity string of an objective, if it carries one."""
    wl = getattr(objective, "workload", None)
    return wl.full_key if wl is not None else ""


@dataclass(frozen=True)
class Evaluation:
    """One executed configuration.

    ``objective`` is the value a tuner should minimize: the execution time
    for successful runs and the censoring value for failed/killed runs
    ("at least this bad" — see :class:`~repro.tuners.objective.WorkloadObjective`
    for the exact censoring policy).  ``cost_s`` is the wall-clock charged
    to search cost, which for failures is the (smaller) time actually
    elapsed before the run died; under a retry policy it includes every
    failed attempt plus the backoff waits.

    The resilience fields separate *environmental* trouble from
    *configuration-caused* trouble: ``transient`` marks an outcome whose
    failure (or timeout) was caused by an injected/environmental fault
    rather than by the configuration; ``fault`` names the fault kind that
    affected the returned attempt (a fault may slow a run down without
    failing it, in which case ``transient`` stays False); ``attempts``
    counts executions including retries.
    """

    vector: np.ndarray
    config: Configuration
    objective: float
    cost_s: float
    status: RunStatus
    truncated: bool = False
    transient: bool = False
    fault: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.SUCCESS


class Objective(Protocol):
    """Black-box objective over the unit cube.

    Objectives that can evaluate several configurations concurrently may
    additionally expose ``spawn_view() -> Objective``: a view sharing all
    slow state (simulator, space, evaluation counter) but carrying its
    own child RNG split off the parent stream.  ``BOEngine`` in
    ``batch_size > 1`` mode spawns one view per point of a round —
    serially, so results never depend on worker count — and evaluates
    the views in parallel.  The capability is detected on the objective's
    *class*; delegating wrappers (journal, fault injector) intentionally
    do not forward it, and batches through them run serially so their
    per-evaluation bookkeeping stays exact.
    """

    @property
    def space(self) -> ConfigSpace: ...

    @property
    def time_limit_s(self) -> float: ...

    def __call__(self, u: np.ndarray,
                 time_limit_s: float | None = None) -> Evaluation: ...


@dataclass
class TuningResult:
    """Outcome of one tuning session."""

    tuner: str
    workload: str
    evaluations: list[Evaluation] = field(default_factory=list)
    selection_cost_s: float = 0.0   # one-time parameter-selection cost
    selected_parameters: list[str] = field(default_factory=list)

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)

    @property
    def best_index(self) -> int:
        """Index of the best *successful* evaluation (objective ties → first)."""
        best, best_y = -1, float("inf")
        for i, e in enumerate(self.evaluations):
            if e.ok and e.objective < best_y:
                best, best_y = i, e.objective
        if best < 0:
            raise RuntimeError("no successful evaluation in session")
        return best

    @property
    def best_evaluation(self) -> Evaluation:
        return self.evaluations[self.best_index]

    @property
    def best_time_s(self) -> float:
        return self.best_evaluation.objective

    @property
    def best_config(self) -> Configuration:
        return self.best_evaluation.config

    @property
    def search_cost_s(self) -> float:
        """Total time spent generating and evaluating configurations
        (excludes the one-time parameter-selection cost, per §5.3)."""
        return float(sum(e.cost_s for e in self.evaluations))

    def best_curve(self) -> np.ndarray:
        """Minimum successful objective after each evaluation (Figure 6).

        Entries before the first success are ``inf``.
        """
        out = np.empty(len(self.evaluations))
        best = float("inf")
        for i, e in enumerate(self.evaluations):
            if e.ok:
                best = min(best, e.objective)
            out[i] = best
        return out

    def iterations_to_within(self, fraction: float) -> int | None:
        """First 1-based evaluation index whose best-so-far is within
        ``fraction`` of the session's final best (Table 2); None if never."""
        if fraction < 0:
            raise ValueError("fraction must be >= 0")
        target = self.best_time_s * (1.0 + fraction)
        curve = self.best_curve()
        hits = np.nonzero(curve <= target)[0]
        return int(hits[0]) + 1 if hits.size else None


class Tuner(ABC):
    """A budgeted configuration tuner.

    Every tuner accepts an optional ``tracer`` (see :mod:`repro.obs`):
    instrumentation hooks record decisions and timings to it, and the
    default :data:`~repro.obs.NULL_TRACER` makes every hook a no-op, so
    decision sequences are bit-identical with tracing on or off.
    """

    #: display name used in reports, e.g. ``"ROBOTune"``.
    name: str = ""

    @abstractmethod
    def tune(self, objective: Objective, budget: int,
             rng: np.random.Generator | int | None = None,
             tracer=None) -> TuningResult:
        """Run one tuning session of at most *budget* evaluations."""

    # -- crash-safe journaling (docs/ROBUSTNESS.md) -------------------------------
    def checkpoint(self, objective: Objective, budget: int, journal,
                   rng: np.random.Generator | int | None = None,
                   tracer=None) -> TuningResult:
        """:meth:`tune`, with every evaluation journaled as it completes.

        *journal* is an :class:`~repro.core.journal.EvaluationJournal` or a
        path to one.  Each finished evaluation is appended (fsync'd) along
        with a snapshot of the objective's RNG state, so a process killed
        mid-search can :meth:`resume` bit-identically.  Decisions are
        unaffected — the wrapper only records.
        """
        from ..core.journal import EvaluationJournal, JournaledObjective
        if not isinstance(journal, EvaluationJournal):
            journal = EvaluationJournal(journal)
        journal.write_meta({"tuner": self.name,
                            "workload": workload_key(objective),
                            "budget": int(budget)})
        return self.tune(JournaledObjective(objective, journal), budget,
                         rng=rng, tracer=tracer)

    def resume(self, objective: Objective, budget: int, journal,
               rng: np.random.Generator | int | None = None,
               tracer=None, recover: str = "redispatch") -> TuningResult:
        """Resume a killed :meth:`checkpoint` session from its journal.

        Re-runs the tuning session with the same *rng* seed, serving the
        journaled evaluations in order instead of re-executing them (the
        expensive cluster time is not re-paid); once the journal is
        exhausted, the objective's RNG state is restored from the last
        snapshot and the search continues live, appending to the same
        journal.  For a fixed seed the final result is bit-identical to an
        uninterrupted run — see docs/ROBUSTNESS.md for the guarantees.

        *recover* picks what happens to evaluations that were **in
        flight** at the kill point (their ``dispatch`` records never
        settled): ``"redispatch"`` re-executes them when the replayed
        decision path re-proposes their vectors (bit-identical for the
        fault-free case) and ``"censor"`` writes each one off as a
        censored-at-cap outcome without re-paying its execution time.
        """
        from ..core.journal import EvaluationJournal, JournaledObjective
        if not isinstance(journal, EvaluationJournal):
            journal = EvaluationJournal(journal)
        meta, records = journal.load()
        if meta.get("tuner", self.name) != self.name:
            raise ValueError(
                f"journal was written by {meta['tuner']!r}, not {self.name!r}")
        wl = workload_key(objective)
        if meta.get("workload", wl) != wl:
            raise ValueError(
                f"journal belongs to workload {meta['workload']!r}, "
                f"not {wl!r}")
        return self.tune(JournaledObjective(objective, journal,
                                            replay=records,
                                            pending=journal.pending_dispatches(),
                                            next_seq=journal.next_seq(),
                                            recover=recover),
                         budget, rng=rng, tracer=tracer)
