"""Tuner protocol, evaluation records, and tuning results.

All four tuners (ROBOTune, BestConfig, Gunther, Random Search) share this
interface: they receive an :class:`Objective` (a black-box from unit-cube
vectors to execution outcomes) and an evaluation budget, and produce a
:class:`TuningResult`.  Search cost (paper §5.3) is the summed execution
time of every configuration the tuner ran, including truncated and failed
runs — exactly what a real cluster would have spent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..space.space import ConfigSpace, Configuration
from ..sparksim.result import RunStatus

__all__ = ["Evaluation", "Objective", "TuningResult", "Tuner", "workload_key"]


def workload_key(objective: "Objective") -> str:
    """Workload identity string of an objective, if it carries one."""
    wl = getattr(objective, "workload", None)
    return wl.full_key if wl is not None else ""


@dataclass(frozen=True)
class Evaluation:
    """One executed configuration.

    ``objective`` is the value a tuner should minimize: the execution time
    for successful runs and the evaluation cap for failed/killed runs
    (censored — "at least this bad").  ``cost_s`` is the wall-clock charged
    to search cost, which for failures is the (smaller) time actually
    elapsed before the run died.
    """

    vector: np.ndarray
    config: Configuration
    objective: float
    cost_s: float
    status: RunStatus
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.SUCCESS


class Objective(Protocol):
    """Black-box objective over the unit cube."""

    @property
    def space(self) -> ConfigSpace: ...

    @property
    def time_limit_s(self) -> float: ...

    def __call__(self, u: np.ndarray,
                 time_limit_s: float | None = None) -> Evaluation: ...


@dataclass
class TuningResult:
    """Outcome of one tuning session."""

    tuner: str
    workload: str
    evaluations: list[Evaluation] = field(default_factory=list)
    selection_cost_s: float = 0.0   # one-time parameter-selection cost
    selected_parameters: list[str] = field(default_factory=list)

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)

    @property
    def best_index(self) -> int:
        """Index of the best *successful* evaluation (objective ties → first)."""
        best, best_y = -1, float("inf")
        for i, e in enumerate(self.evaluations):
            if e.ok and e.objective < best_y:
                best, best_y = i, e.objective
        if best < 0:
            raise RuntimeError("no successful evaluation in session")
        return best

    @property
    def best_evaluation(self) -> Evaluation:
        return self.evaluations[self.best_index]

    @property
    def best_time_s(self) -> float:
        return self.best_evaluation.objective

    @property
    def best_config(self) -> Configuration:
        return self.best_evaluation.config

    @property
    def search_cost_s(self) -> float:
        """Total time spent generating and evaluating configurations
        (excludes the one-time parameter-selection cost, per §5.3)."""
        return float(sum(e.cost_s for e in self.evaluations))

    def best_curve(self) -> np.ndarray:
        """Minimum successful objective after each evaluation (Figure 6).

        Entries before the first success are ``inf``.
        """
        out = np.empty(len(self.evaluations))
        best = float("inf")
        for i, e in enumerate(self.evaluations):
            if e.ok:
                best = min(best, e.objective)
            out[i] = best
        return out

    def iterations_to_within(self, fraction: float) -> int | None:
        """First 1-based evaluation index whose best-so-far is within
        ``fraction`` of the session's final best (Table 2); None if never."""
        if fraction < 0:
            raise ValueError("fraction must be >= 0")
        target = self.best_time_s * (1.0 + fraction)
        curve = self.best_curve()
        hits = np.nonzero(curve <= target)[0]
        return int(hits[0]) + 1 if hits.size else None


class Tuner(ABC):
    """A budgeted configuration tuner."""

    #: display name used in reports, e.g. ``"ROBOTune"``.
    name: str = ""

    @abstractmethod
    def tune(self, objective: Objective, budget: int,
             rng: np.random.Generator | int | None = None) -> TuningResult:
        """Run one tuning session of at most *budget* evaluations."""
