"""The workload objective: configuration vector → execution outcome.

Bridges tuners and the simulator: decodes a unit-cube vector through the
tuning space's configuration encoder, runs the workload on the simulated
cluster with the evaluation cap (the paper limits each configuration to
480 s), and returns an :class:`Evaluation`.

Censoring policy: a failed or killed run's *objective* is the censoring
value (the tuner only knows the configuration was "at least this bad"),
while its *cost* is the time that actually elapsed — failures often die
quickly, truncated stragglers pay their limit.  The censoring value
depends on how the run ended:

* **Killed at a limit** (``truncated=True``): censored at the limit the
  guard actually enforced — the *tightened* per-call limit when a median
  guard killed the run, not the full cap.  The run is only known to be
  "at least as bad as the limit that stopped it"; censoring a run killed
  at 90 s with the 480 s cap would overstate the evidence 5-fold and
  poison the surrogate's view of that region.
* **Hard failure** (OOM, runtime error, invalid): censored at the full
  evaluation cap — the configuration is broken, not merely slow, and the
  model should treat the whole region as maximally bad.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping

import numpy as np

from ..space.space import ConfigSpace
from ..sparksim.cluster import ClusterSpec
from ..sparksim.result import RunStatus
from ..sparksim.simulator import SparkSimulator
from ..utils.rng import as_generator, spawn
from ..workloads.base import Workload
from .base import Evaluation

__all__ = ["WorkloadObjective", "DEFAULT_TIME_LIMIT_S", "METRICS"]

#: Per-configuration execution cap used throughout the paper's evaluation.
DEFAULT_TIME_LIMIT_S = 480.0


def _metric_time(duration_s: float, conf: Mapping[str, Any]) -> float:
    return duration_s


def _metric_core_seconds(duration_s: float, conf: Mapping[str, Any]) -> float:
    """Resource cost: wall time x allocated cores (a cloud-bill proxy)."""
    cores = int(conf["spark.executor.cores"]) \
        * int(conf["spark.executor.instances"])
    return duration_s * max(cores, 1)


#: Named objective metrics (§5.1: "by modifying or replacing the objective
#: function, ROBOTune can be easily adapted for optimizing other metrics").
METRICS: dict[str, Callable[[float, Mapping[str, Any]], float]] = {
    "time": _metric_time,
    "core_seconds": _metric_core_seconds,
}


class WorkloadObjective:
    """Callable objective for one workload on one (simulated) cluster.

    Parameters
    ----------
    workload:
        The application + dataset to execute.
    space:
        Tuning space the input vectors live in; may be the full 44-dim
        Spark space or a reduced subspace after parameter selection.
    simulator:
        Simulator instance (shared across evaluations for one cluster).
    time_limit_s:
        Hard execution cap per configuration.
    rng:
        Noise source; every evaluation draws fresh noise, so repeated
        evaluations of the same vector differ (i.i.d., as the paper's BO
        noise model assumes).
    metric:
        What to minimize: ``"time"`` (default, the paper's objective),
        ``"core_seconds"`` (wall time x allocated cores), or any callable
        ``(duration_s, config) -> float`` that is monotone in duration.
        Search cost accounting is always wall time, regardless of metric.
    """

    def __init__(self, workload: Workload, space: ConfigSpace, *,
                 simulator: SparkSimulator | None = None,
                 cluster: ClusterSpec | None = None,
                 time_limit_s: float = DEFAULT_TIME_LIMIT_S,
                 metric: str | Callable[[float, Mapping[str, Any]], float]
                 = "time",
                 rng: np.random.Generator | int | None = None):
        if simulator is not None and cluster is not None:
            raise ValueError("pass either simulator or cluster, not both")
        if isinstance(metric, str):
            if metric not in METRICS:
                raise KeyError(f"unknown metric {metric!r}; "
                               f"known: {sorted(METRICS)}")
            metric = METRICS[metric]
        self._metric = metric
        self.workload = workload
        self._space = space
        self.simulator = simulator or SparkSimulator(cluster)
        self._time_limit_s = float(time_limit_s)
        self._rng = as_generator(rng)
        self._stages = workload.build_stages()
        # Mutable holder so re-bound views (with_space) share the counter;
        # the lock keeps increments exact under concurrent batch views.
        self._counter = {"n": 0}
        self._lock = threading.Lock()

    @property
    def space(self) -> ConfigSpace:
        return self._space

    @property
    def time_limit_s(self) -> float:
        return self._time_limit_s

    @property
    def n_evaluations(self) -> int:
        """Total evaluations across this objective and all re-bound views."""
        return self._counter["n"]

    def with_space(self, space: ConfigSpace) -> "WorkloadObjective":
        """The same objective viewed through a different tuning space.

        Shares the simulator, RNG and evaluation counter — used by ROBOTune
        to switch from the generic 44-dim space to the selected subspace.
        """
        clone = object.__new__(WorkloadObjective)
        clone.__dict__ = dict(self.__dict__)
        clone._space = space
        return clone

    def spawn_view(self) -> "WorkloadObjective":
        """An independently seeded view for concurrent batch evaluation.

        Shares the simulator, space, metric, counter and lock, but draws
        its noise from a child generator split off this objective's
        stream.  Views are spawned *serially* (each spawn advances the
        parent stream), so a batch of views produces the same results
        regardless of how many workers later run them or in what order
        they complete — the determinism contract of
        ``repro.utils.parallel``.  The simulator itself keeps no per-run
        state, so views may execute concurrently.  Subclasses inherit it
        (views keep the subclass behavior).
        """
        clone = object.__new__(type(self))
        clone.__dict__ = dict(self.__dict__)
        clone._rng = spawn(self._rng, 1)[0]
        return clone

    # -- resilience hooks (repro.faults / repro.core.journal) ---------------------
    def metric_value(self, duration_s: float, conf: Mapping[str, Any]) -> float:
        """The objective metric at an arbitrary duration (fault injection
        uses this to price slowed-down runs exactly)."""
        return float(self._metric(float(duration_s), conf))

    def censor_value(self, conf: Mapping[str, Any],
                     limit_s: float | None = None) -> float:
        """Censoring value at *limit_s* (None = the full evaluation cap)."""
        limit = self._time_limit_s if limit_s is None else float(limit_s)
        return float(self._metric(limit, conf))

    def rng_state(self) -> dict:
        """Snapshot of the noise generator (journal checkpointing)."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state: Mapping[str, Any]) -> None:
        """Restore a snapshot taken by :meth:`rng_state` (journal resume)."""
        self._rng.bit_generator.state = state

    def __call__(self, u: np.ndarray,
                 time_limit_s: float | None = None) -> Evaluation:
        """Evaluate one configuration vector.

        ``time_limit_s`` tightens (never loosens) the cap for this single
        run — the hook used by guard mechanisms that kill configurations
        running past a multiple of the median.
        """
        limit = self._time_limit_s
        if time_limit_s is not None:
            limit = min(limit, float(time_limit_s))
        conf = self._space.decode(np.asarray(u, dtype=float))
        result = self.simulator.run(self._stages, conf, rng=self._rng,
                                    time_limit_s=limit)
        with self._lock:
            self._counter["n"] += 1
        truncated = result.status is RunStatus.TIMEOUT
        if result.ok:
            objective = self._metric(result.duration_s, conf)
        elif truncated:
            # Killed at the enforced limit (possibly guard-tightened): the
            # run is only known to be at least as bad as the limit that
            # actually stopped it.
            objective = self._metric(limit, conf)
        else:
            # Hard failure: censored at the full cap, so the region is
            # marked maximally bad regardless of how fast the failure
            # surfaced.
            objective = self._metric(self._time_limit_s, conf)
        return Evaluation(
            vector=np.asarray(u, dtype=float).copy(),
            config=conf,
            objective=float(objective),
            cost_s=float(result.duration_s),
            status=result.status,
            truncated=truncated,
        )

    def evaluate_batch(self, U: "list[np.ndarray]",
                       time_limit_s: float | None = None) -> list[Evaluation]:
        """Evaluate many vectors through one vectorized simulator pass.

        Bit-identical to spawning one view per vector and calling each —
        ``[self.spawn_view()(u, time_limit_s) for u in U]`` — which is the
        class-level capability contract ``BOEngine._evaluate_batch``
        relies on: the child generators are split off serially exactly as
        :meth:`spawn_view` would, then the whole batch runs through
        :meth:`SparkSimulator.run_batch`.

        Defined on :class:`WorkloadObjective` only.  A subclass that
        overrides ``__call__`` inherits this method with the *base*
        evaluation semantics, silently diverging from its own scalar
        path; such subclasses must override ``evaluate_batch`` too (or
        set it to ``None`` to fall back to per-point evaluation).
        """
        limit = self._time_limit_s
        if time_limit_s is not None:
            limit = min(limit, float(time_limit_s))
        vectors = [np.asarray(u, dtype=float) for u in U]
        confs = [self._space.decode(u) for u in vectors]
        rngs = spawn(self._rng, len(vectors))
        results = self.simulator.run_batch(self._stages, confs, rngs=rngs,
                                           time_limit_s=limit)
        with self._lock:
            self._counter["n"] += len(vectors)
        evals = []
        for u, conf, result in zip(vectors, confs, results):
            truncated = result.status is RunStatus.TIMEOUT
            if result.ok:
                objective = self._metric(result.duration_s, conf)
            elif truncated:
                objective = self._metric(limit, conf)
            else:
                objective = self._metric(self._time_limit_s, conf)
            evals.append(Evaluation(
                vector=u.copy(),
                config=conf,
                objective=float(objective),
                cost_s=float(result.duration_s),
                status=result.status,
                truncated=truncated,
            ))
        return evals
