"""Structured tracing and metrics for tuning sessions (docs/OBSERVABILITY.md).

A zero-dependency observability layer: :class:`Tracer` records typed
events, nestable spans and counters/timers to pluggable sinks — an
fsync'd JSONL writer for post-hoc analysis and an in-memory sink for
tests.  The default :data:`NULL_TRACER` is a no-op, so instrumented code
paths make identical decisions whether or not tracing is enabled.

Timing comes from an injected monotonic clock, never wall-clock, and is
confined to the ``t``/``dur`` envelope fields and the timers registry —
tuner *decisions* must never read it (rule RPD003/RPD005 in
``repro.analysis``).
"""

from .events import (EVENT_TYPES, TRACE_SCHEMA_VERSION, evaluation_data,
                     validate_record, validate_trace)
from .report import (TraceSummary, load_trace, render_aggregate,
                     render_summary, summarize)
from .sinks import InMemorySink, JsonlTraceWriter
from .tracer import NULL_TRACER, NullTracer, Tracer, as_tracer

__all__ = [
    "EVENT_TYPES", "TRACE_SCHEMA_VERSION", "evaluation_data",
    "validate_record", "validate_trace",
    "TraceSummary", "load_trace", "render_aggregate", "render_summary",
    "summarize",
    "InMemorySink", "JsonlTraceWriter",
    "NULL_TRACER", "NullTracer", "Tracer", "as_tracer",
]
