"""Trace record schema: kinds, the event catalog, and validation.

A trace is a sequence of JSON records (one per line in the JSONL sink).
The schema is versioned like the analysis report schema so downstream
consumers can detect incompatible traces instead of mis-parsing them.

Record envelopes (``kind`` discriminates):

``meta``
    First record of every trace: ``{"kind", "schema", ...identity}``.
``event``
    ``{"kind", "id", "t", "span", "type", "data"}`` — ``id`` is a
    strictly increasing integer, ``t`` is seconds since the tracer
    started (monotonic clock, injected), ``span`` is the id of the
    enclosing ``span.start`` event or ``None``, ``type`` names a catalog
    entry and ``data`` carries the typed payload.
``metrics``
    Final record: the counters and timers registries
    (``{"kind", "counters", "timers"}``).

All timing lives in ``t``, ``dur`` (on ``span.end``) and the timers
registry; every other payload field is a pure function of the tuner's
decision sequence, which is what makes same-seed traces comparable after
stripping those keys (see ``tests/obs/test_trace_determinism.py``).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = ["TRACE_SCHEMA_VERSION", "KINDS", "EVENT_TYPES", "COUNTERS",
           "TIMERS", "SPANS", "evaluation_data", "validate_record",
           "validate_trace"]

#: Bump on any backwards-incompatible change to the record envelopes.
TRACE_SCHEMA_VERSION = 1

KINDS = ("meta", "event", "metrics")

#: The event catalog: type → one-line description (docs/OBSERVABILITY.md).
EVENT_TYPES: dict[str, str] = {
    "span.start": "a named span opened (its event id is the span id)",
    "span.end": "a span closed; data carries the name and 'dur' seconds",
    "eval.result": "one configuration finished evaluating",
    "bo.iteration": "one BO round: chosen acquisition and outcome",
    "hedge.probs": "GP-Hedge selection distribution before a choice",
    "acq.winner": "the acquisition function whose nominee was chosen",
    "gp.fit": "a GP surrogate (re)fit: size and hyperparameter state",
    "gp.mode": "the engine switched between exact and low-rank surrogates",
    "gp.chunk": "a candidate sweep streamed through the surrogate in blocks",
    "warmstart.load": "prior-journal observations assembled for the "
                      "surrogate warm start",
    "transfer.map": "a workload-mapper probe matched (or missed) a prior "
                    "selection signature",
    "forest.fit": "a tree ensemble finished fitting",
    "guard.threshold": "the kill threshold changed value",
    "guard.kill": "an evaluation was truncated by the kill threshold",
    "memo.hit": "a memoized-sampling store served prior knowledge",
    "memo.miss": "a memoized-sampling store had nothing for the key",
    "memo.store": "a result was written into a memoization store",
    "memo.block": "a poison configuration was quarantined out of a store",
    "selection.params": "parameter selection finished: the kept subset",
    "bestconfig.bound": "BestConfig RBS shrank the search bounds",
    "gunther.generation": "Gunther finished one GA generation",
    "fault.injected": "the fault plan fired on an evaluation attempt",
    "retry.attempt": "a transient outcome is being retried",
    "parallel.map": "a parallel_map call dispatched a work batch",
    "async.dispatch": "the async BO engine sent a proposal to a worker",
    "async.fold": "an async evaluation was folded into the surrogate",
    "batch.serial_fallback": "concurrent evaluation degraded to serial "
                             "(objective lacks class-level spawn_view)",
    "supervise.speculate": "a straggling evaluation got a speculative twin",
    "supervise.reclaim": "a dead worker's task was reclaimed and redispatched",
    "supervise.deadline_hit": "an evaluation exceeded its deadline and was "
                              "abandoned (charged as censored-at-cap)",
    "supervise.quarantine": "a config reached the strike cap and was "
                            "quarantined from re-proposal",
    "serve.submit": "a tuning session was accepted into the session store",
    "serve.claim": "a daemon worker claimed a session (fresh or resumed)",
    "serve.state": "a stored session transitioned lifecycle state",
    "serve.queue": "queue-depth snapshot of the session store by state",
    "serve.recover": "a crashed session's journal was adopted for resume",
}

#: The counter catalog: every name passed to ``tracer.count`` anywhere in
#: the library must appear here (analysis rule RPX003 enforces it
#: statically), so the metrics record's key space is typed the same way
#: the event stream is.
COUNTERS: dict[str, str] = {
    "evals": "configurations evaluated (all tuners)",
    "retries": "transient outcomes re-executed by the retry policy",
    "faults.injected": "faults fired by the seeded fault plan",
    "gp.predict": "GP posterior predictions served",
    "gp.predict.points": "candidate points pushed through GP predictions",
    "gp.mode.switch": "exact <-> low-rank surrogate switches",
    "gp.chunk.blocks": "blocks streamed through chunked acquisition sweeps",
    "async.idle_worker_slots": "free worker slots observed at async "
                               "dispatch points",
    "batch.serial_fallback": "concurrent evaluations degraded to serial",
    "supervise.quarantine": "configs quarantined at the strike cap",
    "supervise.deadline_hit": "evaluations abandoned at their deadline",
    "supervise.speculate": "speculative straggler twins launched",
    "supervise.speculate_wins": "races won by the speculative twin",
    "supervise.reclaim": "dead-worker tasks reclaimed and redispatched",
    "pool.abandoned_tasks": "pool tasks abandoned (deadline or shutdown)",
    "pool.workers_replaced": "pool workers replaced after a death",
    "serve.submitted": "sessions accepted into the store",
    "serve.claims": "sessions claimed by daemon workers",
    "serve.resumed": "claimed sessions that resumed a prior journal",
    "serve.done": "sessions settled DONE",
    "serve.failed": "sessions settled FAILED",
    "serve.cancelled": "sessions settled CANCELLED",
}

#: The timer catalog: every name passed to ``tracer.timer`` (RPX003).
TIMERS: dict[str, str] = {
    "gp.fit": "GP surrogate (re)fits",
    "forest.fit": "tree-ensemble fits",
    "importance": "permutation-importance sweeps",
    "parallel.map": "parallel_map batch dispatches",
    "pool.task": "WorkerPool task bodies",
    "async.propose": "async replacement-proposal draws",
    "async.wait": "async waits on the next completion",
    "serve.claim": "session-claim attempts against the store (claim latency)",
}

#: The span catalog: every name passed to ``tracer.span`` (RPX003).
SPANS: dict[str, str] = {
    "tune": "one whole tuning session",
    "selection": "the parameter-selection phase",
    "transfer.probe": "a workload-mapper probe",
    "initial_design": "the initial (LHS) design evaluations",
    "bo": "the Bayesian-optimization loop",
    "serve.session": "one served tuning session, claim to settle",
}


def evaluation_data(index: int, ev: Any) -> dict[str, Any]:
    """``eval.result`` payload for an Evaluation-shaped object.

    Duck-typed so this module never imports ``repro.tuners`` (which
    itself imports ``repro.obs``).  ``cost_s`` is *simulated* execution
    time — a deterministic function of the configuration — not a wall
    clock reading, so it belongs in the payload.
    """
    status = getattr(ev.status, "value", ev.status)
    return {"i": int(index), "objective": float(ev.objective),
            "cost_s": float(ev.cost_s), "status": str(status),
            "truncated": bool(ev.truncated),
            "transient": bool(ev.transient),
            "fault": ev.fault, "attempts": int(ev.attempts)}


def validate_record(record: Mapping[str, Any]) -> list[str]:
    """Schema problems of one record (empty list = valid)."""
    problems: list[str] = []
    kind = record.get("kind")
    if kind not in KINDS:
        return [f"unknown record kind: {kind!r}"]
    if kind == "meta":
        if not isinstance(record.get("schema"), int):
            problems.append("meta record missing integer 'schema'")
    elif kind == "event":
        if not isinstance(record.get("id"), int):
            problems.append("event missing integer 'id'")
        if not isinstance(record.get("t"), (int, float)):
            problems.append("event missing numeric 't'")
        span = record.get("span", "missing")
        if span == "missing" or not (span is None or isinstance(span, int)):
            problems.append("event 'span' must be an int or None")
        etype = record.get("type")
        if etype not in EVENT_TYPES:
            problems.append(f"unknown event type: {etype!r}")
        if not isinstance(record.get("data"), Mapping):
            problems.append("event missing mapping 'data'")
    else:  # metrics
        if not isinstance(record.get("counters"), Mapping):
            problems.append("metrics record missing 'counters'")
        if not isinstance(record.get("timers"), Mapping):
            problems.append("metrics record missing 'timers'")
    return problems


def validate_trace(records: Iterable[Mapping[str, Any]]) -> list[str]:
    """Schema problems of a whole trace (empty list = valid).

    Checks every record, that the trace opens with a current-schema meta
    record, that event ids increase strictly, and that ``span`` always
    references an already-opened span.
    """
    problems: list[str] = []
    records = list(records)
    if not records:
        return ["empty trace"]
    first = records[0]
    if first.get("kind") != "meta":
        problems.append("trace must start with a meta record")
    elif first.get("schema") != TRACE_SCHEMA_VERSION:
        problems.append(
            f"schema {first.get('schema')!r} != {TRACE_SCHEMA_VERSION}")
    last_id = -1
    span_ids: set[int] = set()
    for n, record in enumerate(records):
        for problem in validate_record(record):
            problems.append(f"record {n}: {problem}")
        if record.get("kind") != "event":
            continue
        rid = record.get("id")
        if isinstance(rid, int):
            if rid <= last_id:
                problems.append(f"record {n}: id {rid} not increasing")
            last_id = rid
            if record.get("type") == "span.start":
                span_ids.add(rid)
        span = record.get("span")
        if isinstance(span, int) and span not in span_ids:
            problems.append(f"record {n}: span {span} never started")
    return problems
