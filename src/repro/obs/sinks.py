"""Trace sinks: where the tracer's records go.

Two built-ins cover the repo's needs:

* :class:`JsonlTraceWriter` — append-only JSONL with the same durability
  discipline as :class:`repro.core.journal.EvaluationJournal`: one
  ``json.dumps`` line per record, flushed and fsync'd so a killed
  process loses at most the record in flight, and a refusal to append a
  second trace to a non-empty file.
* :class:`InMemorySink` — a list of records, for tests and for the
  CLI's ``--trace-summary`` fold-up.

Any object with ``write(record)`` and ``close()`` works as a sink, so
callers can fan out to several at once (the CLI does exactly that when
both flags are given).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, TextIO

import numpy as np

__all__ = ["InMemorySink", "JsonlTraceWriter"]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays that survive the tracer's scrubbing."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


class InMemorySink:
    """Collects records in a list (``sink.records``)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: Mapping[str, Any]) -> None:
        self.records.append(dict(record))

    def events(self) -> list[dict[str, Any]]:
        """Only the ``event``-kind records, in emission order."""
        return [r for r in self.records if r.get("kind") == "event"]

    def close(self) -> None:
        return None


class JsonlTraceWriter:
    """Durable JSONL trace file (the journal's write discipline).

    Parameters
    ----------
    path:
        Trace file; parent directories are created on the first write.
        Refuses to write into an existing non-empty file — interleaving
        two traces would corrupt both.
    fsync:
        Force every record to stable storage; disable only where speed
        matters more than crash-durability (e.g. large study sweeps).
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._fh: TextIO | None = None
        if self.path.exists() and self.path.stat().st_size > 0:
            raise FileExistsError(
                f"trace {self.path} already holds records; remove it or "
                "pick a fresh path")

    def write(self, record: Mapping[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, default=_jsonable) + "\n")
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
