"""Fold a trace into a human-readable run summary.

The JSONL trace is an event stream; this module turns it back into the
questions a tuning practitioner actually asks: where did the time go
(per-component breakdown), what did GP-Hedge believe over the session
(probability trajectory), how often did the guard kill, the memo stores
pay off, faults fire.  ``--trace-summary`` on the CLI renders exactly
this, and :func:`render_aggregate` gives the cross-tuner view for
comparison studies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["TraceSummary", "load_trace", "summarize", "render_summary",
           "render_aggregate"]


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace; a torn final line (crash artifact) is tolerated
    by stopping at the first corrupt line, like the evaluation journal."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no trace at {path}")
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return records


@dataclass
class TraceSummary:
    """Everything :func:`render_summary` needs, precomputed."""

    meta: dict[str, Any] = field(default_factory=dict)
    n_events: int = 0
    event_counts: dict[str, int] = field(default_factory=dict)
    #: span name → [total seconds, completions]
    span_times: dict[str, list[float]] = field(default_factory=dict)
    #: acquisition names from the first hedge.probs event
    acquisition_names: list[str] = field(default_factory=list)
    #: one probability vector per hedge.probs event
    hedge_trajectory: list[list[float]] = field(default_factory=list)
    evals: int = 0
    eval_failures: int = 0
    best_objective: float | None = None
    guard_kills: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_stores: int = 0
    faults_injected: int = 0
    retries: int = 0
    gp_fits: int = 0
    fallbacks: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def tuner(self) -> str:
        return str(self.meta.get("tuner", "?"))


def summarize(records: Iterable[Mapping[str, Any]]) -> TraceSummary:
    """Fold a record stream (from a sink or :func:`load_trace`)."""
    s = TraceSummary()
    for record in records:
        kind = record.get("kind")
        if kind == "meta":
            s.meta = {k: v for k, v in record.items()
                      if k not in ("kind", "schema")}
            continue
        if kind == "metrics":
            s.counters = dict(record.get("counters", {}))
            s.timers = dict(record.get("timers", {}))
            continue
        if kind != "event":
            continue
        etype = str(record.get("type"))
        data = record.get("data", {})
        s.n_events += 1
        s.event_counts[etype] = s.event_counts.get(etype, 0) + 1
        if etype == "span.end":
            entry = s.span_times.setdefault(str(data.get("name")), [0.0, 0])
            entry[0] += float(data.get("dur", 0.0))
            entry[1] += 1
        elif etype == "eval.result":
            s.evals += 1
            if data.get("status") == "success":
                y = float(data.get("objective", float("inf")))
                if s.best_objective is None or y < s.best_objective:
                    s.best_objective = y
            else:
                s.eval_failures += 1
        elif etype == "hedge.probs":
            if not s.acquisition_names:
                s.acquisition_names = [str(n) for n in data.get("names", [])]
            s.hedge_trajectory.append([float(p)
                                       for p in data.get("probs", [])])
        elif etype == "guard.kill":
            s.guard_kills += 1
        elif etype == "memo.hit":
            s.memo_hits += 1
        elif etype == "memo.miss":
            s.memo_misses += 1
        elif etype == "memo.store":
            s.memo_stores += 1
        elif etype == "fault.injected":
            s.faults_injected += 1
        elif etype == "retry.attempt":
            s.retries += 1
        elif etype == "gp.fit":
            s.gp_fits += 1
        elif etype == "bo.iteration" and data.get("fallback"):
            s.fallbacks += 1
    return s


def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms" if seconds < 1.0 else f"{seconds:.2f}s"


def render_summary(summary: TraceSummary) -> str:
    """Render one session's fold-up as plain text."""
    lines: list[str] = []
    ident = ", ".join(f"{k}={v}" for k, v in sorted(summary.meta.items()))
    lines.append(f"trace summary ({ident})" if ident else "trace summary")
    best = ("n/a" if summary.best_objective is None
            else f"{summary.best_objective:.3f}")
    lines.append(f"  evaluations: {summary.evals} "
                 f"({summary.eval_failures} failed), best objective {best}")
    lines.append(f"  decisions: {summary.gp_fits} GP fits, "
                 f"{summary.fallbacks} BO fallbacks, "
                 f"{summary.guard_kills} guard kills")
    lines.append(f"  memoization: {summary.memo_hits} hits / "
                 f"{summary.memo_misses} misses / {summary.memo_stores} stores")
    lines.append(f"  resilience: {summary.faults_injected} faults injected, "
                 f"{summary.retries} retries")
    if summary.span_times:
        lines.append("  time by component:")
        order = sorted(summary.span_times.items(), key=lambda kv: -kv[1][0])
        for name, (total, count) in order:
            lines.append(f"    {name:<18} {_fmt_s(total):>10}  (x{count})")
    if summary.timers:
        lines.append("  timers:")
        for name in sorted(summary.timers):
            t = summary.timers[name]
            lines.append(f"    {name:<18} {_fmt_s(float(t['total_s'])):>10}"
                         f"  (x{int(t['count'])})")
    if summary.hedge_trajectory:
        names = summary.acquisition_names or [
            f"acq{i}" for i in range(len(summary.hedge_trajectory[0]))]
        lines.append("  hedge probabilities (first -> last):")
        lines.append("    " + "  ".join(f"{n:>8}" for n in names))
        rows = _spread(summary.hedge_trajectory, 8)
        for row in rows:
            lines.append("    " + "  ".join(f"{p:8.3f}" for p in row))
    return "\n".join(lines)


def _spread(rows: Sequence[Any], k: int) -> list[Any]:
    """Up to *k* rows evenly spread over the sequence (ends included)."""
    if len(rows) <= k:
        return list(rows)
    idx = [round(i * (len(rows) - 1) / (k - 1)) for i in range(k)]
    return [rows[i] for i in idx]


def render_aggregate(summaries: Iterable[TraceSummary]) -> str:
    """Cross-tuner aggregation table for a comparison study's traces.

    Sessions are grouped by the tuner named in their meta record; counts
    are summed across sessions and the best objective is the group-wide
    minimum.
    """
    groups: dict[str, list[TraceSummary]] = {}
    for s in summaries:
        groups.setdefault(s.tuner, []).append(s)
    if not groups:
        return "no traces"
    header = (f"{'tuner':<14} {'sessions':>8} {'evals':>7} {'failed':>7} "
              f"{'kills':>6} {'memo':>5} {'faults':>7} {'retries':>8} "
              f"{'best':>10}")
    lines = [header, "-" * len(header)]
    for tuner in sorted(groups):
        g = groups[tuner]
        best = min((s.best_objective for s in g
                    if s.best_objective is not None), default=None)
        lines.append(
            f"{tuner:<14} {len(g):>8} {sum(s.evals for s in g):>7} "
            f"{sum(s.eval_failures for s in g):>7} "
            f"{sum(s.guard_kills for s in g):>6} "
            f"{sum(s.memo_hits for s in g):>5} "
            f"{sum(s.faults_injected for s in g):>7} "
            f"{sum(s.retries for s in g):>8} "
            f"{'n/a' if best is None else format(best, '10.3f'):>10}")
    return "\n".join(lines)
