"""The tracer: typed events, nestable spans, counters and timers.

Two implementations share one duck-typed surface:

* :class:`Tracer` — records to one or more sinks, stamping each event
  with a monotonic timestamp from an *injected* clock (defaults to
  ``time.monotonic``; tests inject a fake).  Thread-safe: event ids are
  assigned under a lock and span nesting is tracked per thread, so
  events emitted from worker threads land in the right span.
* :class:`NullTracer` — the default everywhere.  Every method is a
  no-op, which is what keeps instrumented decision paths bit-identical
  to uninstrumented ones: instrumentation may only ever *observe*.

Timing never reaches decision code: it is written into the ``t``/``dur``
envelope fields and the timers registry only.  This module and
``core/guard.py`` are the repo's only legitimate clock readers (rule
RPD005 in ``repro.analysis``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from .events import TRACE_SCHEMA_VERSION

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "as_tracer"]


def _scrub(value: Any) -> Any:
    """Make a payload JSON-ready (numpy scalars/arrays → native types)."""
    if isinstance(value, Mapping):
        return {str(k): _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return _scrub(value.tolist())
    return value


class _NullContext:
    """Reusable no-op context manager for NullTracer spans/timers."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CTX = _NullContext()


class NullTracer:
    """A tracer that records nothing (the default everywhere)."""

    #: False so hot paths can skip building expensive payloads entirely.
    active = False

    def emit(self, type: str, data: Mapping[str, Any] | None = None) -> None:
        return None

    def count(self, name: str, n: int = 1) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullContext:
        return _NULL_CTX

    def timer(self, name: str) -> _NullContext:
        return _NULL_CTX

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


def as_tracer(tracer: Any | None) -> Any:
    """Normalize an optional tracer argument (None → :data:`NULL_TRACER`)."""
    return NULL_TRACER if tracer is None else tracer


class _Span:
    """Context manager emitting ``span.start``/``span.end`` around a block."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._id, self._t0 = self._tracer._open_span(self._name, self._attrs)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._close_span(self._id, self._name, self._t0)


class _Timer:
    """Context manager accumulating elapsed time into the timers registry."""

    __slots__ = ("_tracer", "_name", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Timer":
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._add_time(self._name, self._tracer._clock() - self._t0)


class Tracer:
    """Records typed events, spans and metrics to the given sinks.

    Parameters
    ----------
    sinks:
        One sink or an iterable of sinks (anything with
        ``write(record)``/``close()`` — see :mod:`repro.obs.sinks`).
    clock:
        Monotonic time source; injected so tests can fake it and so the
        single real clock read stays inside this module.
    meta:
        Identity fields for the opening ``meta`` record (tuner name,
        workload, seed, budget, ...).

    Events emitted after :meth:`close` are dropped silently — a store
    that outlives a traced session must not crash the next one.
    """

    active = True

    def __init__(self, sinks: Any, *,
                 clock: Callable[[], float] = time.monotonic,
                 meta: Mapping[str, Any] | None = None):
        if hasattr(sinks, "write"):
            sinks = [sinks]
        self._sinks = list(sinks)
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._counters: dict[str, int] = {}
        self._timers: dict[str, list[float]] = {}
        self._closed = False
        self._write({"kind": "meta", "schema": TRACE_SCHEMA_VERSION,
                     **_scrub(dict(meta or {}))})

    # -- recording ----------------------------------------------------------------
    def emit(self, type: str, data: Mapping[str, Any] | None = None) -> int:
        """Record one typed event; returns its id (-1 once closed)."""
        return self._emit(type, data, span=self._current_span())

    def count(self, name: str, n: int = 1) -> None:
        """Increment a named counter (flushed in the final metrics record)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def span(self, name: str, **attrs: Any) -> _Span:
        """Open a nestable span: ``with tracer.span("bo", budget=80): ...``"""
        return _Span(self, name, attrs)

    def timer(self, name: str) -> _Timer:
        """Accumulate a block's elapsed time under *name* in the registry."""
        return _Timer(self, name)

    # -- registries ---------------------------------------------------------------
    @property
    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    @property
    def timers(self) -> dict[str, dict[str, float]]:
        with self._lock:
            return {name: {"total_s": total, "count": int(count)}
                    for name, (total, count) in self._timers.items()}

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        """Flush the metrics record and close all sinks (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            record = {"kind": "metrics", "counters": dict(self._counters),
                      "timers": {name: {"total_s": total, "count": int(count)}
                                 for name, (total, count)
                                 in self._timers.items()}}
        for sink in self._sinks:
            sink.write(record)
            sink.close()

    # -- internals ----------------------------------------------------------------
    def _span_stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_span(self) -> int | None:
        stack = self._span_stack()
        return stack[-1] if stack else None

    def _emit(self, type: str, data: Mapping[str, Any] | None,
              span: int | None) -> int:
        with self._lock:
            if self._closed:
                return -1
            event_id = self._next_id
            self._next_id += 1
            record = {"kind": "event", "id": event_id,
                      "t": self._clock() - self._t0, "span": span,
                      "type": type, "data": _scrub(dict(data or {}))}
            for sink in self._sinks:
                sink.write(record)
        return event_id

    def _open_span(self, name: str, attrs: dict[str, Any]) -> tuple[int, float]:
        span_id = self._emit("span.start", {"name": name, **attrs},
                             span=self._current_span())
        self._span_stack().append(span_id)
        return span_id, self._clock()

    def _close_span(self, span_id: int, name: str, t0: float) -> None:
        stack = self._span_stack()
        if stack and stack[-1] == span_id:
            stack.pop()
        self._emit("span.end", {"name": name, "dur": self._clock() - t0},
                   span=self._current_span())

    def _add_time(self, name: str, elapsed: float) -> None:
        with self._lock:
            entry = self._timers.setdefault(name, [0.0, 0])
            entry[0] += float(elapsed)
            entry[1] += 1

    def _write(self, record: dict[str, Any]) -> None:
        with self._lock:
            if self._closed:
                return
            for sink in self._sinks:
                sink.write(record)
