"""ROBOTune reproduction: high-dimensional configuration tuning for
cluster-based data analytics (Khan & Yu, ICPP 2021).

Quickstart::

    from repro import ROBOTune, WorkloadObjective, get_workload, spark_space

    workload = get_workload("pagerank", "D1")
    objective = WorkloadObjective(workload, spark_space(), rng=0)
    result = ROBOTune(rng=0).tune(objective, budget=100)
    print(result.best_time_s, result.best_config)

Packages
--------
``repro.space``
    Typed parameters and the 44-dimensional Spark tuning space.
``repro.sampling``
    Latin Hypercube (plain and maximin space-filling) and random sampling.
``repro.ml``
    From-scratch trees, forests, linear models, CV, MDA importances.
``repro.gp``
    Gaussian-process regression with Matérn 5/2 + white-noise kernels.
``repro.sparksim``
    The discrete-event Spark cluster simulator (evaluation substrate).
``repro.workloads``
    The five SparkBench workloads of Table 1 as stage-DAG models.
``repro.core``
    ROBOTune itself: BO engine, GP-Hedge, parameter selection, memoization.
``repro.tuners``
    The common tuner interface and the BestConfig / Gunther / Random
    Search baselines.
``repro.faults``
    Resilience layer: deterministic transient-fault injection and retry
    policies (docs/ROBUSTNESS.md).
``repro.bench``
    The experiment harness that regenerates every table and figure.
"""

from .core import (
    BOEngine,
    ConfigMemoizationBuffer,
    EvaluationJournal,
    GPHedge,
    MedianGuard,
    ParameterSelectionCache,
    ParameterSelector,
    ROBOTune,
    ROBOTuneResult,
)
from .faults import FaultInjector, FaultPlan, RetryPolicy
from .space import ConfigSpace, ConfigurationEncoder, spark_space
from .sparksim import ExecutionResult, RunStatus, SparkConf, SparkSimulator
from .tuners import (
    BestConfig,
    Gunther,
    RandomSearch,
    TuningResult,
    WorkloadObjective,
)
from .workloads import Dataset, Workload, get_workload

__version__ = "1.0.0"

__all__ = [
    "ROBOTune",
    "ROBOTuneResult",
    "BOEngine",
    "GPHedge",
    "MedianGuard",
    "ParameterSelector",
    "ParameterSelectionCache",
    "ConfigMemoizationBuffer",
    "EvaluationJournal",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "ConfigSpace",
    "ConfigurationEncoder",
    "spark_space",
    "SparkSimulator",
    "SparkConf",
    "ExecutionResult",
    "RunStatus",
    "BestConfig",
    "Gunther",
    "RandomSearch",
    "TuningResult",
    "WorkloadObjective",
    "Dataset",
    "Workload",
    "get_workload",
    "__version__",
]
