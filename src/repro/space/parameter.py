"""Typed configuration parameters.

A :class:`Parameter` maps between three representations of one tunable knob:

* the *native* value (e.g. ``4`` executor cores, ``True``, ``"lz4"``),
* the *unit* value, a float in ``[0, 1]`` used by samplers and by the
  Bayesian-optimization engine, and
* the *string* value written into a Spark-style configuration file.

The unit representation is what makes Latin Hypercube Sampling, Gaussian
process modelling and genetic search dimension-agnostic: every parameter is
a coordinate of the unit hypercube regardless of its native type.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "FloatParameter",
    "IntParameter",
    "BoolParameter",
    "CategoricalParameter",
    "SizeParameter",
    "TimeParameter",
]


def _clip_unit(u: float) -> float:
    """Clamp a unit-cube coordinate into the closed interval [0, 1]."""
    if u < 0.0:
        return 0.0
    if u > 1.0:
        return 1.0
    return float(u)


class Parameter(ABC):
    """One tunable configuration knob.

    Parameters
    ----------
    name:
        Fully-qualified parameter name, e.g. ``"spark.executor.cores"``.
    default:
        Native default value (the value Spark would use if untuned).
    group:
        Optional collinearity-group label.  Parameters sharing a group are
        permuted together during Mean-Decrease-in-Accuracy importance
        calculation and form a *joint parameter* (paper §3.3/§4).
    doc:
        One-line human description.
    """

    def __init__(self, name: str, default: Any, *, group: str | None = None,
                 doc: str = "") -> None:
        if not name:
            raise ValueError("parameter name must be non-empty")
        self.name = name
        self.default = default
        self.group = group
        self.doc = doc

    # -- unit-cube mapping -------------------------------------------------
    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Map a unit-cube coordinate in [0, 1] to a native value."""

    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a native value to a unit-cube coordinate in [0, 1]."""

    # -- validation / formatting -------------------------------------------
    @abstractmethod
    def validate(self, value: Any) -> bool:
        """Return True iff *value* is a legal native value."""

    def format(self, value: Any) -> str:
        """Render a native value as the string written to a config file."""
        return str(value)

    @property
    def cardinality(self) -> float:
        """Number of distinct native values (``math.inf`` for continuous)."""
        return math.inf

    def grid(self, resolution: int = 11) -> list[Any]:
        """Native values at evenly spaced unit coordinates (deduplicated)."""
        seen: list[Any] = []
        for u in np.linspace(0.0, 1.0, resolution):
            v = self.from_unit(float(u))
            if not seen or seen[-1] != v:
                seen.append(v)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, default={self.default!r})"


class FloatParameter(Parameter):
    """A continuous parameter on ``[low, high]``, optionally log-scaled."""

    def __init__(self, name: str, low: float, high: float, default: float,
                 *, log: bool = False, group: str | None = None, doc: str = "") -> None:
        if not (low < high):
            raise ValueError(f"{name}: need low < high, got [{low}, {high}]")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        super().__init__(name, default, group=group, doc=doc)
        self.low = float(low)
        self.high = float(high)
        self.log = log
        if not self.validate(default):
            raise ValueError(f"{name}: default {default} outside [{low}, {high}]")

    def from_unit(self, u: float) -> float:
        u = _clip_unit(u)
        if self.log:
            v = float(math.exp(math.log(self.low)
                               + u * (math.log(self.high) - math.log(self.low))))
        else:
            v = self.low + u * (self.high - self.low)
        # Guard against float round-off pushing v a ulp past the bounds.
        return min(max(v, self.low), self.high)

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if self.log:
            return _clip_unit((math.log(v) - math.log(self.low))
                              / (math.log(self.high) - math.log(self.low)))
        return _clip_unit((v - self.low) / (self.high - self.low))

    def validate(self, value: Any) -> bool:
        try:
            v = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high

    def format(self, value: Any) -> str:
        return f"{float(value):g}"


class IntParameter(Parameter):
    """An integer parameter on ``[low, high]`` inclusive, optionally log-scaled."""

    def __init__(self, name: str, low: int, high: int, default: int,
                 *, log: bool = False, group: str | None = None, doc: str = "") -> None:
        if not (low < high):
            raise ValueError(f"{name}: need low < high, got [{low}, {high}]")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        super().__init__(name, default, group=group, doc=doc)
        self.low = int(low)
        self.high = int(high)
        self.log = log
        if not self.validate(default):
            raise ValueError(f"{name}: default {default} outside [{low}, {high}]")

    def from_unit(self, u: float) -> int:
        u = _clip_unit(u)
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high + 1)
            v = int(math.floor(math.exp(lo + u * (hi - lo))))
        else:
            # Partition [0,1] into equal-width cells, one per integer.
            v = self.low + int(math.floor(u * (self.high - self.low + 1)))
        return min(max(v, self.low), self.high)

    def to_unit(self, value: Any) -> float:
        v = int(value)
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high + 1)
            return _clip_unit((math.log(v + 0.5) - lo) / (hi - lo))
        # Centre of this integer's cell.
        return _clip_unit((v - self.low + 0.5) / (self.high - self.low + 1))

    def validate(self, value: Any) -> bool:
        try:
            v = int(value)
        except (TypeError, ValueError):
            return False
        return self.low <= v <= self.high and v == value

    @property
    def cardinality(self) -> float:
        return self.high - self.low + 1


class BoolParameter(Parameter):
    """A boolean flag."""

    def __init__(self, name: str, default: bool, *, group: str | None = None,
                 doc: str = "") -> None:
        super().__init__(name, bool(default), group=group, doc=doc)

    def from_unit(self, u: float) -> bool:
        return _clip_unit(u) >= 0.5

    def to_unit(self, value: Any) -> float:
        return 0.75 if bool(value) else 0.25

    def validate(self, value: Any) -> bool:
        return isinstance(value, (bool, np.bool_))

    def format(self, value: Any) -> str:
        return "true" if value else "false"

    @property
    def cardinality(self) -> float:
        return 2


class CategoricalParameter(Parameter):
    """A parameter drawn from an ordered set of choices.

    The choices are mapped to equal-width cells of the unit interval in the
    order given, so samplers treat the parameter as an ordinal axis.
    """

    def __init__(self, name: str, choices: Sequence[Any], default: Any,
                 *, group: str | None = None, doc: str = "") -> None:
        choices = list(choices)
        if len(choices) < 2:
            raise ValueError(f"{name}: need at least two choices")
        if len(set(map(str, choices))) != len(choices):
            raise ValueError(f"{name}: duplicate choices")
        if default not in choices:
            raise ValueError(f"{name}: default {default!r} not among choices")
        super().__init__(name, default, group=group, doc=doc)
        self.choices = choices

    def from_unit(self, u: float) -> Any:
        u = _clip_unit(u)
        idx = min(int(math.floor(u * len(self.choices))), len(self.choices) - 1)
        return self.choices[idx]

    def to_unit(self, value: Any) -> float:
        idx = self.choices.index(value)
        return _clip_unit((idx + 0.5) / len(self.choices))

    def validate(self, value: Any) -> bool:
        return value in self.choices

    @property
    def cardinality(self) -> float:
        return len(self.choices)


class SizeParameter(IntParameter):
    """An integer byte-quantity parameter expressed in a fixed unit.

    Spark sizes such as ``spark.executor.memory`` are strings like ``"4g"``;
    natively we store the integer count in ``unit`` (one of ``"k"``, ``"m"``,
    ``"g"``).  Sizes are log-scaled by default because their useful dynamic
    range spans orders of magnitude.
    """

    _SUFFIX = {"k": "k", "m": "m", "g": "g"}

    def __init__(self, name: str, low: int, high: int, default: int,
                 *, unit: str = "m", log: bool = True,
                 group: str | None = None, doc: str = "") -> None:
        if unit not in self._SUFFIX:
            raise ValueError(f"{name}: unsupported size unit {unit!r}")
        super().__init__(name, low, high, default, log=log, group=group, doc=doc)
        self.unit = unit

    def format(self, value: Any) -> str:
        return f"{int(value)}{self._SUFFIX[self.unit]}"

    def to_bytes(self, value: Any) -> int:
        """Convert a native value to bytes."""
        scale = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}[self.unit]
        return int(value) * scale


class TimeParameter(IntParameter):
    """An integer duration parameter expressed in a fixed unit (``s``/``ms``)."""

    def __init__(self, name: str, low: int, high: int, default: int,
                 *, unit: str = "s", log: bool = False,
                 group: str | None = None, doc: str = "") -> None:
        if unit not in ("s", "ms"):
            raise ValueError(f"{name}: unsupported time unit {unit!r}")
        super().__init__(name, low, high, default, log=log, group=group, doc=doc)
        self.unit = unit

    def format(self, value: Any) -> str:
        return f"{int(value)}{self.unit}"

    def to_seconds(self, value: Any) -> float:
        """Convert a native value to seconds."""
        return float(value) if self.unit == "s" else float(value) / 1000.0
