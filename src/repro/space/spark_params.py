"""The 44-parameter Spark 2.4 tuning space used in the paper's evaluation.

The paper (§5.1) tunes "a total of 44 performance-related" Spark parameters —
a superset of those considered by prior Spark-tuning work, minus deprecated
and streaming parameters.  The exact list is not published, so this module
reconstructs a faithful 44-parameter space from the Spark 2.4 configuration
reference covering the same categories the paper names: runtime environment,
shuffle, data serialization, memory management, networking and scheduling.

Collinearity groups (paper §3.3 "Handling Collinearity" and §4 "Parameter
Selection") are encoded via ``Parameter.group``:

* ``executor.size`` — ``spark.executor.cores`` + ``spark.executor.memory``
  (the paper's explicit domain-knowledge joint parameter),
* ``offheap`` — off-heap size is only meaningful when off-heap is enabled,
* ``speculation`` — multiplier/quantile only matter when speculation is on,
* ``serializer`` — Kryo sub-options only matter when Kryo is selected.
"""

from __future__ import annotations

from .parameter import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
    SizeParameter,
    TimeParameter,
)
from .space import ConfigSpace

__all__ = ["spark_parameters", "spark_space", "SPARK_PARAM_COUNT"]

SPARK_PARAM_COUNT = 44


def spark_parameters() -> list[Parameter]:
    """Build the 44 tunable Spark parameters with Spark 2.4 defaults."""
    params: list[Parameter] = [
        # ---- executors and driver resources (7) --------------------------------
        IntParameter("spark.executor.cores", 1, 32, 1,
                     group="executor.size",
                     doc="Cores per executor JVM."),
        SizeParameter("spark.executor.memory", 1024, 184320, 1024, unit="m",
                      group="executor.size",
                      doc="Heap size per executor (MB); 1 GB default, up to "
                          "180 GB on the paper's nodes."),
        IntParameter("spark.executor.instances", 1, 40, 5,
                     doc="Number of executors launched for the application."),
        SizeParameter("spark.executor.memoryOverhead", 384, 16384, 384, unit="m",
                      doc="Off-heap overhead per executor (MB)."),
        IntParameter("spark.driver.cores", 1, 8, 1,
                     doc="Cores used by the driver process."),
        SizeParameter("spark.driver.memory", 1024, 32768, 1024, unit="m",
                      doc="Driver heap size (MB)."),
        SizeParameter("spark.driver.maxResultSize", 512, 8192, 1024, unit="m",
                      doc="Limit on serialized results collected to the driver."),
        # ---- memory management (4) ------------------------------------------------
        FloatParameter("spark.memory.fraction", 0.3, 0.9, 0.6,
                       doc="Fraction of heap for execution + storage."),
        FloatParameter("spark.memory.storageFraction", 0.1, 0.9, 0.5,
                       doc="Fraction of unified memory immune to eviction "
                           "by execution."),
        BoolParameter("spark.memory.offHeap.enabled", False, group="offheap",
                      doc="Use off-heap memory for execution/storage."),
        SizeParameter("spark.memory.offHeap.size", 256, 32768, 2048, unit="m",
                      group="offheap",
                      doc="Off-heap memory size (MB); only used when enabled."),
        # ---- parallelism and scheduling (8) ---------------------------------------
        IntParameter("spark.default.parallelism", 8, 1024, 192, log=True,
                     doc="Default number of partitions for shuffles."),
        IntParameter("spark.task.cpus", 1, 4, 1,
                     doc="Cores reserved per task."),
        TimeParameter("spark.locality.wait", 0, 10, 3, unit="s",
                      doc="Wait before giving up on data locality."),
        CategoricalParameter("spark.scheduler.mode", ["FIFO", "FAIR"], "FIFO",
                             doc="Intra-application job scheduling policy."),
        BoolParameter("spark.speculation", False, group="speculation",
                      doc="Re-launch slow tasks speculatively."),
        FloatParameter("spark.speculation.multiplier", 1.1, 5.0, 1.5,
                       group="speculation",
                       doc="How much slower than median counts as slow."),
        FloatParameter("spark.speculation.quantile", 0.5, 0.95, 0.75,
                       group="speculation",
                       doc="Fraction of tasks done before speculating."),
        IntParameter("spark.task.maxFailures", 1, 8, 4,
                     doc="Task failures tolerated before aborting the job."),
        # ---- shuffle (9) -----------------------------------------------------------
        BoolParameter("spark.shuffle.compress", True,
                      doc="Compress shuffle map outputs."),
        BoolParameter("spark.shuffle.spill.compress", True,
                      doc="Compress data spilled during shuffles."),
        SizeParameter("spark.shuffle.file.buffer", 16, 512, 32, unit="k",
                      doc="In-memory buffer per shuffle file output stream (KB)."),
        SizeParameter("spark.reducer.maxSizeInFlight", 8, 256, 48, unit="m",
                      doc="Map output fetched concurrently per reducer (MB)."),
        IntParameter("spark.reducer.maxReqsInFlight", 1, 64, 64,
                     doc="Concurrent fetch requests per reducer."),
        IntParameter("spark.shuffle.io.maxRetries", 1, 10, 3,
                     doc="Retries for failed shuffle fetches."),
        IntParameter("spark.shuffle.io.numConnectionsPerPeer", 1, 8, 1,
                     doc="Connections reused between host pairs."),
        IntParameter("spark.shuffle.sort.bypassMergeThreshold", 50, 1000, 200,
                     doc="Max reduce partitions to bypass merge-sort."),
        BoolParameter("spark.shuffle.service.enabled", False,
                      doc="Use the external shuffle service."),
        # ---- compression and serialization (8) ---------------------------------------
        BoolParameter("spark.broadcast.compress", True,
                      doc="Compress broadcast variables."),
        BoolParameter("spark.rdd.compress", False,
                      doc="Compress serialized cached RDD partitions."),
        CategoricalParameter("spark.io.compression.codec",
                             ["lz4", "lzf", "snappy", "zstd"], "lz4",
                             doc="Codec for internal data compression."),
        SizeParameter("spark.io.compression.blockSize", 4, 512, 32, unit="k",
                      doc="Block size used by the compression codec (KB)."),
        CategoricalParameter("spark.serializer", ["java", "kryo"], "java",
                             group="serializer",
                             doc="Serialization library for shuffles/caching."),
        SizeParameter("spark.kryoserializer.buffer.max", 8, 512, 64, unit="m",
                      group="serializer",
                      doc="Max Kryo buffer (MB); only used with Kryo."),
        BoolParameter("spark.kryo.unsafe", False, group="serializer",
                      doc="Use unsafe-based Kryo serializer."),
        IntParameter("spark.serializer.objectStreamReset", 50, 500, 100,
                     doc="Objects between Java serializer stream resets."),
        # ---- networking and RPC (4) -----------------------------------------------------
        TimeParameter("spark.network.timeout", 60, 600, 120, unit="s",
                      doc="Default timeout for network interactions."),
        SizeParameter("spark.rpc.message.maxSize", 32, 512, 128, unit="m",
                      doc="Max RPC message size (MB)."),
        IntParameter("spark.rpc.io.serverThreads", 1, 32, 8,
                     doc="Server threads in the RPC transfer service."),
        BoolParameter("spark.shuffle.io.preferDirectBufs", True,
                      doc="Prefer off-heap buffers in shuffle IO."),
        # ---- storage, broadcast, input IO (4) --------------------------------------------
        SizeParameter("spark.storage.memoryMapThreshold", 1, 16, 2, unit="m",
                      doc="Min block size to memory-map when reading from disk."),
        SizeParameter("spark.broadcast.blockSize", 1, 32, 4, unit="m",
                      doc="Block size for TorrentBroadcast (MB)."),
        SizeParameter("spark.files.maxPartitionBytes", 16, 512, 128, unit="m",
                      doc="Max bytes packed into one input partition (MB)."),
        SizeParameter("spark.maxRemoteBlockSizeFetchToMem", 32, 2048, 2048,
                      unit="m",
                      doc="Remote blocks above this size stream to disk (MB)."),
    ]
    if len(params) != SPARK_PARAM_COUNT:  # defensive: the paper count is load-bearing
        raise AssertionError(f"expected {SPARK_PARAM_COUNT} parameters, "
                             f"got {len(params)}")
    return params


def spark_space() -> ConfigSpace:
    """The full 44-dimensional Spark tuning space (the paper's Generic Set)."""
    return ConfigSpace(spark_parameters())
