"""Configuration encoder (paper §4, "Configuration Encoder").

Converts the numeric vectors produced by the LHS sampler and the BO engine
into a workload configuration: native typed values plus the Spark
``--conf``-file representation that would be passed to ``spark-submit``.
"""

from __future__ import annotations

import io
from typing import Any, Mapping

import numpy as np

from .space import ConfigSpace, Configuration

__all__ = ["ConfigurationEncoder"]


class ConfigurationEncoder:
    """Encode unit-cube vectors into runnable workload configurations.

    Parameters
    ----------
    space:
        The configuration space the numeric vectors live in.  The encoder
        also renders the space's frozen parameters so the emitted file is a
        complete configuration.
    """

    def __init__(self, space: ConfigSpace) -> None:
        self.space = space
        # Parameters by name over tunable + frozen, for formatting.
        self._formatters = {p.name: p for p in space.parameters}

    def to_native(self, u: np.ndarray) -> Configuration:
        """Decode a unit vector into a native configuration dict."""
        return self.space.decode(u)

    def to_strings(self, conf: Mapping[str, Any]) -> dict[str, str]:
        """Render a native configuration as config-file string values.

        Tunable parameters use their type-aware formatter (booleans become
        ``true``/``false``, sizes get unit suffixes); frozen or unknown keys
        fall back to ``str``.
        """
        out: dict[str, str] = {}
        for key in sorted(conf):
            p = self._formatters.get(key)
            out[key] = p.format(conf[key]) if p is not None else str(conf[key])
        return out

    def to_conf_file(self, conf: Mapping[str, Any]) -> str:
        """Render a native configuration as ``spark-defaults.conf`` text."""
        buf = io.StringIO()
        for key, value in self.to_strings(conf).items():
            buf.write(f"{key} {value}\n")
        return buf.getvalue()

    def encode_vector(self, u: np.ndarray) -> str:
        """One-shot: unit vector → ``spark-defaults.conf`` text."""
        return self.to_conf_file(self.to_native(u))

    def parse_conf_file(self, text: str) -> dict[str, str]:
        """Parse ``spark-defaults.conf`` text back into string pairs.

        Blank lines and ``#`` comments are ignored; the first whitespace
        splits key from value (Spark's own format).
        """
        out: dict[str, str] = {}
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ValueError(f"malformed configuration line: {raw!r}")
            out[parts[0]] = parts[1]
        return out
