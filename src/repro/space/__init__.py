"""Typed configuration spaces and the 44-parameter Spark tuning space."""

from .parameter import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    Parameter,
    SizeParameter,
    TimeParameter,
)
from .space import ConfigSpace, Configuration
from .spark_params import SPARK_PARAM_COUNT, spark_parameters, spark_space
from .encoder import ConfigurationEncoder

__all__ = [
    "Parameter",
    "FloatParameter",
    "IntParameter",
    "BoolParameter",
    "CategoricalParameter",
    "SizeParameter",
    "TimeParameter",
    "ConfigSpace",
    "Configuration",
    "ConfigurationEncoder",
    "spark_parameters",
    "spark_space",
    "SPARK_PARAM_COUNT",
]
