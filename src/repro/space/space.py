"""Configuration space: an ordered collection of typed parameters.

A :class:`ConfigSpace` is the bridge between numeric optimizers (which see
the unit hypercube :math:`[0,1]^n`) and the system under tuning (which sees
native configuration dictionaries).  It also supports *subspacing*: after
parameter selection reduces the dimensionality, tuning proceeds over the
selected parameters while every unselected parameter is pinned to a base
value (paper §3.1/§3.3).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .parameter import Parameter

__all__ = ["ConfigSpace", "Configuration"]

Configuration = dict[str, Any]


class ConfigSpace:
    """An ordered, named collection of :class:`Parameter` objects.

    Parameters
    ----------
    parameters:
        The tunable parameters, in a fixed order that defines the meaning
        of vector coordinates.
    frozen:
        Mapping of parameter name to pinned native value for parameters that
        are part of the full configuration but not tuned in this space.
    """

    def __init__(self, parameters: Sequence[Parameter],
                 frozen: Mapping[str, Any] | None = None) -> None:
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in space")
        self._params: list[Parameter] = list(parameters)
        self._index: dict[str, int] = {p.name: i for i, p in enumerate(self._params)}
        self._frozen: Configuration = dict(frozen or {})
        overlap = set(self._frozen) & set(self._index)
        if overlap:
            raise ValueError(f"parameters both tunable and frozen: {sorted(overlap)}")

    # -- basic introspection -------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of tunable dimensions."""
        return len(self._params)

    @property
    def parameters(self) -> list[Parameter]:
        return list(self._params)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self._params]

    @property
    def frozen(self) -> Configuration:
        """Pinned (name → native value) pairs included in every decode."""
        return dict(self._frozen)

    def __len__(self) -> int:
        return self.dim

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Parameter:
        return self._params[self._index[name]]

    def index_of(self, name: str) -> int:
        """Vector coordinate of the named parameter."""
        return self._index[name]

    # -- collinearity groups ---------------------------------------------------
    def groups(self) -> dict[str, list[int]]:
        """Map group label → member coordinate indices.

        Ungrouped parameters each form a singleton group labelled by their
        own name, so the result partitions all coordinates.  Used by the
        grouped-permutation (MDA) importance calculation.
        """
        out: dict[str, list[int]] = {}
        for i, p in enumerate(self._params):
            out.setdefault(p.group or p.name, []).append(i)
        return out

    # -- vector <-> configuration ------------------------------------------------
    def decode(self, u: np.ndarray) -> Configuration:
        """Map a unit-cube vector to a full native configuration.

        Includes frozen parameters; raises if the vector length mismatches.
        """
        u = np.asarray(u, dtype=float)
        if u.shape != (self.dim,):
            raise ValueError(f"expected vector of shape ({self.dim},), got {u.shape}")
        conf: Configuration = {p.name: p.from_unit(float(x))
                               for p, x in zip(self._params, u)}
        conf.update(self._frozen)
        return conf

    def encode(self, conf: Mapping[str, Any]) -> np.ndarray:
        """Map a native configuration to a unit-cube vector.

        Missing parameters fall back to their defaults; frozen and unknown
        keys are ignored.
        """
        u = np.empty(self.dim, dtype=float)
        for i, p in enumerate(self._params):
            value = conf.get(p.name, p.default)
            u[i] = p.to_unit(value)
        return u

    def decode_batch(self, U: np.ndarray) -> list[Configuration]:
        """Decode a ``(n, dim)`` matrix of unit vectors."""
        U = np.atleast_2d(np.asarray(U, dtype=float))
        return [self.decode(row) for row in U]

    def encode_batch(self, confs: Iterable[Mapping[str, Any]]) -> np.ndarray:
        """Encode an iterable of configurations into a ``(n, dim)`` matrix."""
        rows = [self.encode(c) for c in confs]
        if not rows:
            return np.empty((0, self.dim), dtype=float)
        return np.vstack(rows)

    # -- canonical configurations ------------------------------------------------
    def default_configuration(self) -> Configuration:
        """The all-defaults configuration (including frozen values)."""
        conf = {p.name: p.default for p in self._params}
        conf.update(self._frozen)
        return conf

    def validate(self, conf: Mapping[str, Any]) -> list[str]:
        """Return the names of tunable parameters with illegal values."""
        bad = []
        for p in self._params:
            if p.name in conf and not p.validate(conf[p.name]):
                bad.append(p.name)
        return bad

    def snap(self, u: np.ndarray) -> np.ndarray:
        """Round a unit vector onto representable native values.

        Decoding then re-encoding collapses each coordinate onto the centre
        of its native value's cell, so that discrete parameters compare
        equal when their decoded values are equal.
        """
        return self.encode(self.decode(u))

    # -- sub-spacing -------------------------------------------------------------
    def subspace(self, selected: Sequence[str],
                 base: Mapping[str, Any] | None = None) -> "ConfigSpace":
        """Restrict tuning to *selected* parameters.

        Unselected tunable parameters are frozen at their value in *base*
        (default: their parameter default).  Existing frozen values carry
        over.  Order of *selected* determines new coordinate order.
        """
        unknown = [n for n in selected if n not in self._index]
        if unknown:
            raise KeyError(f"unknown parameters: {unknown}")
        if len(set(selected)) != len(selected):
            raise ValueError("duplicate names in selection")
        base = dict(base or {})
        params = [self[n] for n in selected]
        frozen = dict(self._frozen)
        chosen = set(selected)
        for p in self._params:
            if p.name not in chosen:
                frozen[p.name] = base.get(p.name, p.default)
        return ConfigSpace(params, frozen=frozen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConfigSpace(dim={self.dim}, "
                f"frozen={len(self._frozen)})")
