"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``
    List the Table 1 workloads and datasets.
``tune``
    Run one ROBOTune session on a workload; optionally persist the
    knowledge stores and write the best configuration as a
    ``spark-defaults.conf`` file.
``compare``
    Compare ROBOTune with BestConfig / Gunther / Random Search.
``importance``
    Rank parameter groups for a workload (RF + grouped MDA).
``simulate``
    Execute one configuration on the simulated cluster and print the
    per-stage breakdown and bottleneck profile.
``serve``
    Run the tuning-as-a-service daemon over a durable session store.
``submit`` / ``status`` / ``results`` / ``cancel``
    Thin service client verbs against a store directory (``--store``)
    or a live daemon socket (``--socket``) — see docs/SERVING.md.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path

import numpy as np

from .bench.reporting import format_table
from .core.journal import EvaluationJournal
from .core.memo import ConfigMemoizationBuffer, ParameterSelectionCache
from .core.selection import ParameterSelector
from .core.transfer import WorkloadMapper
from .core.tuner import ROBOTune
from .core.warmstart import journal_paths
from .faults import FaultInjector, FaultPlan, RetryPolicy
from .obs import (InMemorySink, JsonlTraceWriter, Tracer, render_aggregate,
                  render_summary, summarize)
from .space.encoder import ConfigurationEncoder
from .space.spark_params import spark_space
from .sparksim.analysis import TraceAnalyzer
from .sparksim.conf import SparkConf
from .sparksim.simulator import SparkSimulator
from .tuners.bestconfig import BestConfig
from .tuners.gunther import Gunther
from .tuners.objective import WorkloadObjective
from .tuners.random_search import RandomSearch
from .utils.parallel import resolve_n_jobs
from .workloads.datasets import DATASET_LABELS, SCALE_UNITS, TABLE1
from .workloads.registry import WORKLOADS, get_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ROBOTune reproduction: tune simulated Spark workloads.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list Table 1 workloads and datasets")

    p_tune = sub.add_parser("tune", help="run one ROBOTune session")
    _common(p_tune)
    p_tune.add_argument("--metric", default="time",
                        choices=["time", "core_seconds"],
                        help="objective to minimize")
    p_tune.add_argument("--store-dir", default=None,
                        help="directory for persistent JSON knowledge stores")
    p_tune.add_argument("--emit-conf", default=None, metavar="FILE",
                        help="write the best configuration as "
                             "spark-defaults.conf text")
    _jobs(p_tune)
    _batch(p_tune)
    _resilience(p_tune)
    p_tune.add_argument("--warm-start", default=None, metavar="DIR",
                        dest="warm_start",
                        help="fold prior-session evaluation journals from "
                             "DIR into the surrogate before iteration 0 "
                             "(LOCAT-style transfer; journals from other "
                             "datasets of the same workload contribute via "
                             "a normalized-datasize feature) — see "
                             "docs/PERFORMANCE.md")
    p_tune.add_argument("--trace", default=None, metavar="FILE",
                        help="write a structured JSONL trace of the session "
                             "(schema v1 — see docs/OBSERVABILITY.md); the "
                             "file must not already exist")
    p_tune.add_argument("--trace-summary", action="store_true",
                        help="print the per-component fold-up (time "
                             "breakdown, hedge trajectory, guard/memo/fault "
                             "counts) after the run")
    p_tune.add_argument("--journal", default=None, metavar="FILE",
                        help="crash-safe evaluation journal (JSONL); every "
                             "finished evaluation is fsync'd so a killed "
                             "run can be resumed")
    p_tune.add_argument("--resume", action="store_true",
                        help="resume a killed session from --journal "
                             "(bit-identical for the same seed)")
    p_tune.add_argument("--recover", default="redispatch",
                        choices=["redispatch", "censor"],
                        help="what --resume does with evaluations that were "
                             "in flight at the kill point: re-execute them "
                             "(default) or write them off as censored runs")

    p_cmp = sub.add_parser("compare", help="compare the four tuners")
    _common(p_cmp)
    p_cmp.add_argument("--trials", type=int, default=1)
    _jobs(p_cmp)
    _batch(p_cmp)
    _resilience(p_cmp)
    p_cmp.add_argument("--warm-start", default=None, metavar="DIR",
                       dest="warm_start",
                       help="warm-start every ROBOTune session from the "
                            "evaluation journals in DIR (other tuners are "
                            "unaffected)")
    p_cmp.add_argument("--map-workloads", action="store_true",
                       dest="map_workloads",
                       help="share a signature-based workload mapper across "
                            "the compared workloads: a workload whose probe "
                            "signature matches an earlier one reuses its "
                            "selected parameters instead of paying the full "
                            "selection run (ROBOTune only; probe cost is "
                            "charged to search cost); pass several "
                            "workloads as --workload a,b,c")
    p_cmp.add_argument("--trace", default=None, metavar="DIR",
                       help="write one JSONL trace per (tuner, trial) "
                            "session into DIR")
    p_cmp.add_argument("--trace-summary", action="store_true",
                       help="print the cross-tuner trace aggregation table "
                            "after the comparison")

    p_imp = sub.add_parser("importance", help="rank parameter importance")
    _common(p_imp)
    p_imp.add_argument("--samples", type=int, default=100)
    p_imp.add_argument("--top", type=int, default=12)
    _jobs(p_imp)

    p_sim = sub.add_parser("simulate", help="run one configuration")
    _common(p_sim)
    p_sim.add_argument("--conf", default=None, metavar="FILE",
                       help="spark-defaults.conf file (default: Spark "
                            "defaults)")
    p_sim.add_argument("--set", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="override single parameters (repeatable)")

    p_srv = sub.add_parser("serve", help="run the tuning service daemon")
    p_srv.add_argument("--store", required=True, metavar="DIR",
                       help="session store directory (created on first use)")
    p_srv.add_argument("--workers", type=int, default=1, metavar="N",
                       help="concurrent session-runner threads (default: 1)")
    p_srv.add_argument("--poll", type=float, default=0.05, metavar="S",
                       help="idle claim-poll interval in seconds")
    p_srv.add_argument("--drain", action="store_true",
                       help="exit once the store holds no runnable session "
                            "(batch mode; default serves until SIGTERM)")
    p_srv.add_argument("--max-sessions", type=int, default=None, metavar="N",
                       dest="max_sessions",
                       help="exit after settling N sessions")
    p_srv.add_argument("--socket", default=None, metavar="ADDR",
                       help='RPC endpoint: "host:port", a unix-socket path, '
                            'or "auto" (ephemeral 127.0.0.1 port); omitted '
                            "= file transport only")
    p_srv.add_argument("--recover", default="redispatch",
                       choices=["redispatch", "censor"],
                       help="journal recovery mode for sessions adopted "
                            "from a crashed daemon (default re-executes "
                            "in-flight evaluations bit-identically)")
    p_srv.add_argument("--trace", default=None, metavar="FILE",
                       help="write the daemon's serve.* event trace (JSONL; "
                            "per-session traces are always written into the "
                            "session directories unless --no-session-traces)")
    p_srv.add_argument("--no-session-traces", action="store_true",
                       dest="no_session_traces",
                       help="skip the per-session trace-<n>.jsonl files")

    p_sub = sub.add_parser("submit", help="submit a tuning session")
    _common(p_sub)
    p_sub.add_argument("--metric", default="time",
                       choices=["time", "core_seconds"])
    _service_endpoint(p_sub)
    p_sub.add_argument("--priority", type=int, default=0,
                       help="higher runs sooner; ties break by submission "
                            "order")
    p_sub.add_argument("--init-samples", type=int, default=20,
                       dest="init_samples",
                       help="BO training-set size (paper: 20)")
    p_sub.add_argument("--selection-samples", type=int, default=None,
                       dest="selection_samples", metavar="N",
                       help="parameter-selection sample count (default: the "
                            "paper's 100; smaller = faster smoke sessions)")
    p_sub.add_argument("--selection-repeats", type=int, default=None,
                       dest="selection_repeats", metavar="N",
                       help="permutation-importance repeats")
    p_sub.add_argument("--async-workers", type=int, default=0, metavar="K",
                       dest="async_workers",
                       help="asynchronous BO workers inside the session "
                            "(0 = the serial, bit-reproducible loop)")
    _resilience(p_sub)
    p_sub.add_argument("--tag", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="free-form session metadata (repeatable)")
    p_sub.add_argument("--wait", action="store_true",
                       help="block until the session settles and print its "
                            "final state and result digest")
    p_sub.add_argument("--timeout", type=float, default=600.0, metavar="S",
                       help="--wait budget in seconds (default: 600)")

    p_stat = sub.add_parser("status", help="show session state(s)")
    p_stat.add_argument("sid", nargs="?", default=None,
                        help="session id; omitted = list every session")
    _service_endpoint(p_stat)

    p_res = sub.add_parser("results", help="fetch a settled session's result")
    p_res.add_argument("sid")
    _service_endpoint(p_res)

    p_can = sub.add_parser("cancel", help="cancel a session")
    p_can.add_argument("sid")
    _service_endpoint(p_can)
    return parser


def _service_endpoint(p: argparse.ArgumentParser) -> None:
    p.add_argument("--store", default=None, metavar="DIR",
                   help="session store directory (file transport)")
    p.add_argument("--socket", default=None, metavar="ADDR",
                   help='daemon RPC endpoint: "host:port", a unix-socket '
                        'path, or "auto" (resolve from --store\'s '
                        "daemon.json)")


def _common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="pagerank",
                   help="workload name or abbreviation (PR/KM/CC/LR/TS); "
                        "the compare command also accepts a comma-"
                        "separated list")
    p.add_argument("--dataset", default="D1", choices=list(DATASET_LABELS))
    p.add_argument("--budget", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)


def _jobs(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes/threads for forest training and "
                        "permutation importance (default: ROBOTUNE_JOBS "
                        "env var, else 1; -1 = all CPUs); results are "
                        "identical for any value")


def _batch(p: argparse.ArgumentParser) -> None:
    p.add_argument("--batch", type=int, default=1, metavar="Q",
                   help="configurations evaluated per BO round (default: 1, "
                        "the paper's serial loop); Q > 1 proposes "
                        "constant-liar batches and runs them concurrently "
                        "under --jobs workers — see docs/PERFORMANCE.md")
    p.add_argument("--async-workers", type=int, default=0, metavar="K",
                   dest="async_workers",
                   help="asynchronous BO worker count (default: 0 = the "
                        "synchronous loop); K >= 1 keeps K evaluations in "
                        "flight with busy-point penalization and folds "
                        "completions in as they land; mutually exclusive "
                        "with --batch > 1 — see docs/PERFORMANCE.md")


def _resilience(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", type=float, default=0.0, metavar="RATE",
                   help="transient-fault injection rate per evaluation "
                        "attempt, in [0, 1] (default: 0 = off); see "
                        "docs/ROBUSTNESS.md for the fault taxonomy")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="max retries for transient failures, with "
                        "exponential backoff charged to search cost "
                        "(default: 2; 0 disables retrying)")
    p.add_argument("--eval-timeout", type=float, default=None, metavar="S",
                   dest="eval_timeout",
                   help="supervised execution: hard per-evaluation wall "
                        "clock deadline in seconds; overruns are abandoned "
                        "and charged as censored runs (requires "
                        "--async-workers >= 1) — see docs/ROBUSTNESS.md")
    p.add_argument("--speculate", action="store_true",
                   help="supervised execution: launch a speculative twin "
                        "of a straggling evaluation on an idle worker "
                        "slot; first completion wins (requires "
                        "--eval-timeout)")
    p.add_argument("--quarantine-after", type=int, default=3, metavar="K",
                   dest="quarantine_after",
                   help="strikes (deadline hits or worker deaths) before "
                        "a configuration is quarantined as poison and "
                        "never re-proposed (default: 3; used with "
                        "--eval-timeout)")


def _validate_resilience(args) -> str | None:
    """Fail-fast message for bad resilience flags, or None when valid."""
    if getattr(args, "batch", 1) < 1:
        return f"--batch must be >= 1, got {args.batch}"
    if getattr(args, "async_workers", 0) < 0:
        return f"--async-workers must be >= 0, got {args.async_workers}"
    if getattr(args, "async_workers", 0) > 0 and getattr(args, "batch", 1) > 1:
        return "--async-workers and --batch > 1 are mutually exclusive"
    if hasattr(args, "faults") and not 0.0 <= args.faults <= 1.0:
        return f"--faults rate must be in [0, 1], got {args.faults}"
    if hasattr(args, "retries") and args.retries < 0:
        return f"--retries must be >= 0, got {args.retries}"
    if getattr(args, "eval_timeout", None) is not None:
        if args.eval_timeout <= 0:
            return f"--eval-timeout must be positive, got {args.eval_timeout}"
        if getattr(args, "async_workers", 0) < 1:
            return "--eval-timeout requires --async-workers >= 1 " \
                   "(supervision wraps the asynchronous dispatch path)"
    elif getattr(args, "speculate", False):
        return "--speculate requires --eval-timeout S"
    if getattr(args, "quarantine_after", 3) < 1:
        return f"--quarantine-after must be >= 1, got {args.quarantine_after}"
    if getattr(args, "resume", False):
        if not args.journal:
            return "--resume requires --journal FILE"
        if not Path(args.journal).exists():
            return f"--resume requires an existing journal, " \
                   f"none at {args.journal}"
    elif getattr(args, "journal", None) and Path(args.journal).exists() \
            and Path(args.journal).stat().st_size > 0:
        return f"journal {args.journal} already holds a session; " \
               "pass --resume to continue it or remove the file"
    if getattr(args, "warm_start", None):
        try:
            journal_paths(args.warm_start)
        except ValueError as exc:
            return str(exc)
    return None


def _supervise_policy(args):
    """Build the --eval-timeout/--speculate/--quarantine-after policy.

    Returns None when supervision is off (no --eval-timeout), keeping
    the engine on its bit-reproducible unsupervised paths.
    """
    if getattr(args, "eval_timeout", None) is None:
        return None
    from .supervise import SupervisePolicy
    return SupervisePolicy(eval_timeout_s=args.eval_timeout,
                           speculate=bool(getattr(args, "speculate", False)),
                           quarantine_after=args.quarantine_after)


def _wrap_faults(objective, args, seed: int, tracer=None):
    """Apply --faults/--retries to an objective (no-op at rate 0)."""
    if not getattr(args, "faults", 0.0):
        return objective
    retry = RetryPolicy(max_retries=args.retries) if args.retries else None
    return FaultInjector(objective, FaultPlan(args.faults, seed=seed),
                         retry=retry, tracer=tracer)


def _make_tracer(path, summary: bool, meta: dict):
    """Tracer + in-memory sink for --trace/--trace-summary.

    Returns ``(None, None)`` when both flags are off, so callers can pass
    the tracer straight through (``tune(..., tracer=None)`` is the no-op
    default).
    """
    if not path and not summary:
        return None, None
    sinks: list = []
    if path:
        sinks.append(JsonlTraceWriter(path))
    mem = InMemorySink() if summary else None
    if mem is not None:
        sinks.append(mem)
    return Tracer(sinks, meta=meta), mem


# -- commands ----------------------------------------------------------------------
def cmd_workloads(args) -> int:
    rows = [(WORKLOADS[name].abbrev, name,
             ", ".join(f"{d.scale:g}" for d in datasets),
             SCALE_UNITS[name])
            for name, datasets in TABLE1.items()]
    print(format_table(["Abbrev", "Workload", "D1, D2, D3", "Unit"], rows,
                       title="Table 1: workloads and datasets"))
    return 0


def cmd_tune(args) -> int:
    space = spark_space()
    workload = get_workload(args.workload, args.dataset)
    objective = WorkloadObjective(workload, space, rng=args.seed,
                                  metric=args.metric)
    cache = memo = None
    if args.store_dir:
        store = Path(args.store_dir)
        store.mkdir(parents=True, exist_ok=True)
        cache = ParameterSelectionCache(store / "selection_cache.json")
        memo = ConfigMemoizationBuffer(store / "memo_buffer.json")
    try:
        tracer, trace_mem = _make_tracer(
            args.trace, args.trace_summary,
            {"command": "tune", "tuner": "ROBOTune",
             "workload": workload.full_key, "budget": args.budget,
             "seed": args.seed})
    except FileExistsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    objective = _wrap_faults(objective, args, args.seed, tracer)
    tuner = ROBOTune(selection_cache=cache, memo_buffer=memo,
                     n_jobs=args.jobs, batch_size=args.batch,
                     async_workers=args.async_workers,
                     supervise=_supervise_policy(args),
                     warm_start=args.warm_start, rng=args.seed)
    if args.journal:
        journal = EvaluationJournal(args.journal)
        if args.resume:
            result = tuner.resume(objective, args.budget, journal,
                                  rng=args.seed, tracer=tracer,
                                  recover=args.recover)
        else:
            result = tuner.checkpoint(objective, args.budget, journal,
                                      rng=args.seed, tracer=tracer)
    else:
        result = tuner.tune(objective, args.budget, rng=args.seed,
                            tracer=tracer)
    if tracer is not None:
        tracer.close()

    print(f"workload:        {workload.full_key}")
    print(f"selection:       {'cache hit' if result.selection_cache_hit else 'cold'}"
          f" ({result.selection_cost_s / 60:.1f} min one-time cost)")
    print(f"selected params: {', '.join(result.selected_parameters)}")
    print(f"evaluations:     {result.n_evaluations} "
          f"(search cost {result.search_cost_s / 60:.1f} min)")
    if args.warm_start:
        print(f"warm start:      {result.warm_start_n} prior evaluation(s) "
              f"from {len(result.warm_start_sources)} journal(s) "
              f"in {args.warm_start}")
    print(f"best objective:  {result.best_time_s:.1f} "
          f"({'s' if args.metric == 'time' else args.metric})")
    if args.faults:
        s = objective.stats
        print(f"faults:          rate {args.faults:g}: {s['injected']} "
              f"injected, {s['transient']} transient failures surfaced, "
              f"{s['retries']} retries (+{s['backoff_s']:.0f}s backoff)")
    if args.eval_timeout is not None:
        print(f"supervised:      deadline {args.eval_timeout:g}s"
              f"{', speculative twins' if args.speculate else ''}; "
              f"{len(result.quarantined_configs)} config(s) quarantined")
    if args.journal:
        n = len(EvaluationJournal(args.journal))
        print(f"journal:         {args.journal} ({n} evaluations"
              f"{', resumed' if args.resume else ''})")
    if args.emit_conf:
        encoder = ConfigurationEncoder(space)
        Path(args.emit_conf).write_text(  # repro: noqa RPF002 -- user-requested spark-defaults.conf export; a one-shot artifact after tuning ends, not evaluation state
            encoder.to_conf_file(result.best_config))
        print(f"best config written to {args.emit_conf}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if trace_mem is not None:
        print()
        print(render_summary(summarize(trace_mem.records)))
    return 0


def cmd_compare(args) -> int:
    space = spark_space()
    workload_names = [w.strip() for w in args.workload.split(",")
                      if w.strip()]
    multi = len(workload_names) > 1

    def make_robotune(s, stores=None, mapper=None):
        return ROBOTune(n_jobs=args.jobs,
                        batch_size=args.batch,
                        async_workers=args.async_workers,
                        supervise=_supervise_policy(args),
                        warm_start=args.warm_start,
                        mapper=mapper,
                        selection_cache=stores["cache"] if stores else None,
                        memo_buffer=stores["memo"] if stores else None,
                        rng=s)

    tuners = {"ROBOTune": make_robotune,
              "BestConfig": lambda s, stores=None, mapper=None: BestConfig(),
              "Gunther": lambda s, stores=None, mapper=None: Gunther(),
              "RandomSearch":
                  lambda s, stores=None, mapper=None: RandomSearch()}
    trace_dir = Path(args.trace) if args.trace else None
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    summaries = []
    rows = []
    baseline_cost = baseline_best = None
    for name, make in tuners.items():
        bests, costs = [], []
        for t in range(args.trials):
            seed = args.seed * 997 + t
            # --map-workloads: one mapper and one set of knowledge
            # stores per (tuner, trial), shared across the workloads.
            mapper = WorkloadMapper(space) \
                if args.map_workloads and name == "ROBOTune" else None
            stores = {"cache": ParameterSelectionCache(),
                      "memo": ConfigMemoizationBuffer()} \
                if args.map_workloads else None
            for w_i, wname in enumerate(workload_names):
                objective = WorkloadObjective(
                    get_workload(wname, args.dataset), space,
                    rng=seed + 1 + w_i)
                trace_name = f"{name}-{wname}-trial{t}.jsonl" if multi \
                    else f"{name}-trial{t}.jsonl"
                try:
                    tracer, trace_mem = _make_tracer(
                        trace_dir / trace_name
                        if trace_dir is not None else None,
                        args.trace_summary,
                        {"command": "compare", "tuner": name,
                         "workload": f"{wname}/{args.dataset}",
                         "trial": t, "budget": args.budget, "seed": seed})
                except FileExistsError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                objective = _wrap_faults(objective, args, seed + 2 + w_i,
                                         tracer)
                res = make(seed, stores, mapper).tune(objective, args.budget,
                                                      rng=seed, tracer=tracer)
                if tracer is not None:
                    tracer.close()
                    if trace_mem is not None:
                        summaries.append(summarize(trace_mem.records))
                try:
                    bests.append(res.best_time_s)
                except RuntimeError:
                    # Every evaluation failed (heavy fault injection on a
                    # tiny budget): report NaN rather than crashing.
                    bests.append(float("nan"))
                costs.append(res.search_cost_s)
        rows.append([name, float(np.nanmean(bests)) if not
                     all(np.isnan(bests)) else float("nan"),
                     float(np.mean(costs)) / 60.0])
        if name == "RandomSearch":
            baseline_best, baseline_cost = rows[-1][1], rows[-1][2]
    for row in rows:
        row.append(row[1] / baseline_best)
        row.append(row[2] / baseline_cost)
    print(format_table(
        ["Tuner", "best (s)", "cost (min)", "best/RS", "cost/RS"], rows,
        title=f"{','.join(workload_names)}/{args.dataset}, "
              f"budget {args.budget}, {args.trials} trial(s)"))
    if trace_dir is not None:
        print(f"traces written to {trace_dir}/")
    if summaries:
        print()
        print(render_aggregate(summaries))
    return 0


def cmd_importance(args) -> int:
    space = spark_space()
    workload = get_workload(args.workload, args.dataset)
    objective = WorkloadObjective(workload, space, rng=args.seed)
    selector = ParameterSelector(n_samples=args.samples, n_jobs=args.jobs,
                                 rng=args.seed)
    result = selector.select(space, selector.collect(objective, space))
    rows = [(g.group, g.importance, g.std,
             "selected" if g.group in result.selected_groups else "")
            for g in result.importances[: args.top]]
    print(format_table(
        ["Parameter group", "MDA importance", "std", ""], rows,
        title=f"{workload.full_key}: top {args.top} groups "
              f"(OOB R2={result.oob_r2:.2f})", float_fmt="{:.3f}"))
    return 0


def cmd_simulate(args) -> int:
    space = spark_space()
    workload = get_workload(args.workload, args.dataset)
    native: dict = {}
    if args.conf:
        encoder = ConfigurationEncoder(space)
        strings = encoder.parse_conf_file(Path(args.conf).read_text())
        native = _strings_to_native(strings, space)
    for pair in args.set:
        if "=" not in pair:
            print(f"error: --set expects KEY=VALUE, got {pair!r}",
                  file=sys.stderr)
            return 2
        key, value = pair.split("=", 1)
        native[key] = _coerce(space, key, value)
    result = SparkSimulator().run(workload.build_stages(), SparkConf(native),
                                  rng=args.seed)
    print(f"{workload.full_key}: {result.status.value} "
          f"in {result.duration_s:.1f}s")
    if not result.ok:
        print(f"  reason: {result.failure_reason}")
        return 1
    rows = [(s.name, s.duration_s, s.tasks, s.waves, s.gc_factor,
             f"{s.cache_hit_fraction:.0%}")
            for s in result.stages]
    print(format_table(
        ["Stage", "seconds", "tasks", "waves", "gc", "cache hit"], rows))
    print("\n" + TraceAnalyzer().analyze(result).describe())
    return 0


def _service_client(args):
    """Build the client the service verbs share, or an error string."""
    from .serve import ServiceClient
    if args.socket:
        if args.socket == "auto" and not args.store:
            return '--socket auto needs --store DIR to find the daemon'
        try:
            return ServiceClient.for_socket(args.socket,
                                            store_root=args.store)
        except (ConnectionError, ValueError) as exc:
            return str(exc)
    if args.store:
        return ServiceClient.for_store(args.store)
    return "pass --store DIR or --socket ADDR to reach the service"


def cmd_serve(args) -> int:
    from .serve import SessionStore, TuningDaemon
    try:
        tracer, _ = _make_tracer(
            args.trace, False,
            {"command": "serve", "store": str(args.store),
             "workers": args.workers})
    except FileExistsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        daemon = TuningDaemon(
            SessionStore(args.store), workers=args.workers,
            poll_s=args.poll, drain=args.drain,
            max_sessions=args.max_sessions, recover=args.recover,
            socket_address=args.socket, tracer=tracer,
            session_traces=not args.no_session_traces)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _stop(signum, frame):  # pragma: no cover - signal path
        daemon.stop()

    # Signal handlers only exist in the main thread; a daemon hosted in
    # a worker thread (tests) is stopped via --max-sessions/--drain.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    print(f"serving {args.store} with {args.workers} worker(s)"
          f"{' (drain mode)' if args.drain else ''}", flush=True)
    settled = daemon.run()
    if tracer is not None:
        tracer.close()
    print(f"daemon exiting: {settled} session(s) settled")
    return 0


def cmd_submit(args) -> int:
    from .serve import SessionSpec
    tags = {}
    for pair in args.tag:
        if "=" not in pair:
            print(f"error: --tag expects KEY=VALUE, got {pair!r}",
                  file=sys.stderr)
            return 2
        key, value = pair.split("=", 1)
        tags[key] = value
    try:
        spec = SessionSpec(
            workload=args.workload, dataset=args.dataset,
            budget=args.budget, seed=args.seed, metric=args.metric,
            priority=args.priority, init_samples=args.init_samples,
            selection_samples=args.selection_samples,
            selection_repeats=args.selection_repeats,
            fault_rate=args.faults, retries=args.retries,
            async_workers=args.async_workers,
            eval_timeout_s=args.eval_timeout, speculate=args.speculate,
            quarantine_after=args.quarantine_after, tags=tags)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = _service_client(args)
    if isinstance(client, str):
        print(f"error: {client}", file=sys.stderr)
        return 2
    sid = client.submit(spec)
    print(sid)
    if not args.wait:
        return 0
    from .serve import ServiceClient, WaitTimeout
    try:
        view = client.wait(sid, timeout_s=args.timeout)
    except WaitTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        # The daemon's socket went away mid-wait (e.g. it hit its
        # --max-sessions cap after claiming our session).  The session
        # itself is durable, so finish the wait against the store when
        # we know where it is.
        if not args.store:
            print(f"error: lost the daemon connection while waiting "
                  f"({exc}); re-run 'repro status {sid}' against the "
                  f"store", file=sys.stderr)
            return 1
        try:
            view = ServiceClient.for_store(args.store).wait(
                sid, timeout_s=args.timeout)
        except WaitTimeout as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    print(f"state: {view['state']}")
    result = view.get("result")
    if result is not None:
        print(f"digest: {result['digest']}")
        if result.get("best_objective") is not None:
            print(f"best objective: {result['best_objective']:.1f}")
    if view["state"] == "FAILED" and view.get("error"):
        print(f"error: {view['error']}", file=sys.stderr)
    return 0 if view["state"] == "DONE" else 1


def cmd_status(args) -> int:
    client = _service_client(args)
    if isinstance(client, str):
        print(f"error: {client}", file=sys.stderr)
        return 2
    if args.sid is None:
        try:
            sessions = client.list_sessions()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        rows = [(s["sid"], s["state"], s["workload"], s["dataset"],
                 s["priority"]) for s in sessions]
        print(format_table(
            ["Session", "State", "Workload", "Dataset", "Priority"], rows,
            title=f"{len(sessions)} session(s)"))
        return 0
    try:
        view = client.status(args.sid)
    except (KeyError, RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(view, indent=2, sort_keys=True))
    return 0


def cmd_results(args) -> int:
    client = _service_client(args)
    if isinstance(client, str):
        print(f"error: {client}", file=sys.stderr)
        return 2
    try:
        result = client.results(args.sid)
    except (KeyError, RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if result is None:
        print(f"error: session {args.sid} has no result yet",
              file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_cancel(args) -> int:
    client = _service_client(args)
    if isinstance(client, str):
        print(f"error: {client}", file=sys.stderr)
        return 2
    try:
        state = client.cancel(args.sid)
    except (KeyError, RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(state)
    return 0


def _strings_to_native(strings: dict[str, str], space) -> dict:
    native = {}
    for key, raw in strings.items():
        native[key] = _coerce(space, key, raw)
    return native


def _coerce(space, key: str, raw: str):
    """Parse a config-file string back to a native parameter value."""
    if key not in space:
        raise KeyError(f"unknown Spark parameter {key!r}")
    param = space[key]
    text = raw.strip()
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    # Strip a size/time suffix when the parameter carries a unit.
    unit = getattr(param, "unit", None)
    if unit is not None and text.endswith(unit):
        text = text[: -len(unit)]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


_COMMANDS = {
    "workloads": cmd_workloads,
    "tune": cmd_tune,
    "compare": cmd_compare,
    "importance": cmd_importance,
    "simulate": cmd_simulate,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "results": cmd_results,
    "cancel": cmd_cancel,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if hasattr(args, "jobs"):
        # Fail fast on a bad --jobs value or ROBOTUNE_JOBS setting,
        # before any expensive sampling starts.
        try:
            resolve_n_jobs(args.jobs)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    # Same fail-fast treatment for the resilience flags.
    problem = _validate_resilience(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
