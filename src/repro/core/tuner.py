"""ROBOTune: the full tuning framework (paper Figure 1).

Ties the three components together:

1. **Memoized Sampling** — parameter-selection cache lookup; LHS tuning
   samples in the selected subspace; best recent configurations pulled
   from the memoization buffer for repeated workloads.
2. **Parameter Selection** — on a cache miss, execute generic LHS samples
   over the full 44-parameter space and select high-impact parameters
   with the Random-Forests MDA ranking.
3. **BO Engine** — GP surrogate + GP-Hedge portfolio search over the
   reduced space, guarded by the median-multiple kill threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import as_tracer, evaluation_data
from ..sampling.lhs import maximin_latin_hypercube
from ..space.space import ConfigSpace
from ..tuners.base import (Evaluation, Objective, Tuner, TuningResult,
                           workload_key)
from ..supervise import SupervisePolicy
from ..utils.rng import as_generator
from .bo import BOEngine, BOIterationRecord
from .guard import MedianGuard
from .memo import ConfigMemoizationBuffer, ParameterSelectionCache
from .selection import ParameterSelector, SelectionResult
from .transfer import WorkloadMapper
from .warmstart import journal_paths, load_warm_start

__all__ = ["ROBOTune", "ROBOTuneResult"]


@dataclass
class ROBOTuneResult(TuningResult):
    """TuningResult plus ROBOTune-specific diagnostics."""

    selection: SelectionResult | None = None
    selection_evaluations: list[Evaluation] = field(default_factory=list)
    selection_cache_hit: bool = False
    memoized_used: int = 0
    reduced_space: ConfigSpace | None = None
    base_config: dict | None = None
    bo_records: list[BOIterationRecord] = field(default_factory=list)
    #: configurations the supervisor quarantined as poison this session.
    quarantined_configs: list[dict] = field(default_factory=list)
    #: prior-journal observations folded into the surrogate (0 = cold).
    warm_start_n: int = 0
    #: journal files those observations came from.
    warm_start_sources: tuple[str, ...] = ()
    #: workload whose selection the mapper reused, when one matched.
    mapped_from: str | None = None
    #: execution time the mapper's probe set consumed.
    mapping_cost_s: float = 0.0

    @property
    def search_cost_s(self) -> float:
        """Simulated search cost including mapper probes (§5.3).

        Probe evaluations execute on the cluster just like tuning
        samples, so their time is charged to the search — unlike
        ``selection_cost_s``, which the paper reports separately.
        """
        return super().search_cost_s + self.mapping_cost_s


class ROBOTune(Tuner):
    """Random-FOrests + Bayesian-Optimization configuration tuner.

    Parameters
    ----------
    selector:
        Parameter-selection component (100 generic LHS samples, RF + MDA).
    selection_cache / memo_buffer:
        The memoized-sampling stores; pass shared (or JSON-backed)
        instances to carry knowledge across sessions, or leave None for
        fresh in-memory stores (cold tuner).
    init_samples:
        Size of the BO training set (paper: 20).
    memo_configs:
        Best Recent Configs pulled on a repeated workload (paper: 4).
    guard_multiplier:
        Median multiple for the bad-configuration guard.
    batch_size:
        Points evaluated per BO round (forwarded to
        :class:`BOEngine` ``batch_size``).  The default 1 runs the
        paper's serial loop; larger values propose constant-liar batches
        and evaluate them concurrently when the objective supports
        ``spawn_view()``.
    async_workers:
        Asynchronous BO worker count (forwarded to :class:`BOEngine`
        ``async_workers``).  ``0`` (default) keeps the synchronous loop;
        ``k >= 1`` keeps ``k`` evaluations in flight with busy-point
        penalization, folding completions into the surrogate as they
        land.  Mutually exclusive with ``batch_size > 1``.
    supervise:
        Optional :class:`repro.supervise.SupervisePolicy` (forwarded to
        :class:`BOEngine`; requires ``async_workers >= 1``).  Enables
        per-evaluation deadlines, reclaim-and-redispatch, speculative
        re-execution and poison-config quarantine; vectors the
        supervisor quarantines are additionally blocked out of the
        memoization buffer after the session so they never seed a future
        one.  See docs/ROBUSTNESS.md.
    warm_start:
        Directory of prior-session :class:`EvaluationJournal` files.
        Journals matching this session's workload (or one the *mapper*
        matched) are encoded into the reduced space, given a normalized
        datasize context column, and folded into the surrogate before
        iteration 0 (see :mod:`repro.core.warmstart`).  Validated
        fail-fast at construction; ``None`` (default) starts cold.
    mapper:
        Optional shared :class:`WorkloadMapper`.  On a selection-cache
        miss the workload is probed first; a strong signature match
        reuses the matched workload's selected parameters (skipping the
        100-sample selection run) and admits its journals as warm-start
        priors.  Unmatched workloads pay the full selection and are then
        registered so *future* sessions can map onto them.  Probe time
        is charged to ``search_cost_s``.
    engine_kwargs:
        Extra arguments forwarded to :class:`BOEngine` (portfolio, candidate
        counts, early stopping, gradients, ...).
    n_jobs:
        Workers for the selection phase's forest training and permutation
        importance when the default selector is constructed (an explicit
        *selector* keeps its own setting), and — unless overridden in
        *engine_kwargs* — for the BO engine's multi-start GP fits and
        batched evaluations.  ``None`` defers to the ``ROBOTUNE_JOBS``
        environment variable.  Tuning decisions are identical for any
        worker count.
    """

    name = "ROBOTune"

    def __init__(self, *, selector: ParameterSelector | None = None,
                 selection_cache: ParameterSelectionCache | None = None,
                 memo_buffer: ConfigMemoizationBuffer | None = None,
                 init_samples: int = 20, memo_configs: int = 4,
                 guard_multiplier: float = 3.0,
                 store_results: int = 4,
                 batch_size: int = 1,
                 async_workers: int = 0,
                 supervise: SupervisePolicy | None = None,
                 warm_start: str | None = None,
                 mapper: WorkloadMapper | None = None,
                 engine_kwargs: dict | None = None,
                 n_jobs: int | None = None,
                 rng: np.random.Generator | int | None = None):
        if init_samples < 2:
            raise ValueError("init_samples must be >= 2")
        if not 0 <= memo_configs <= init_samples:
            raise ValueError("memo_configs must be within [0, init_samples]")
        self.selector = selector
        # `is None` checks matter: empty stores are falsy (they define
        # __len__), and an empty store passed in must still be shared.
        self.selection_cache = selection_cache if selection_cache is not None \
            else ParameterSelectionCache()
        self.memo_buffer = memo_buffer if memo_buffer is not None \
            else ConfigMemoizationBuffer()
        self.init_samples = init_samples
        self.memo_configs = memo_configs
        self.guard_multiplier = guard_multiplier
        self.store_results = store_results
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if async_workers < 0:
            raise ValueError("async_workers must be >= 0")
        if supervise is not None and async_workers < 1:
            raise ValueError("supervise requires async_workers >= 1")
        self.batch_size = batch_size
        self.async_workers = async_workers
        self.supervise = supervise
        if warm_start is not None:
            journal_paths(warm_start)  # fail fast before any cluster time
        self.warm_start = warm_start
        self.mapper = mapper
        self.engine_kwargs = dict(engine_kwargs or {})
        self.engine_kwargs.setdefault("batch_size", batch_size)
        self.engine_kwargs.setdefault("async_workers", async_workers)
        self.engine_kwargs.setdefault("supervise", supervise)
        # The engine shares the worker budget: it parallelizes GP
        # multi-start fits and batched evaluations, both of which return
        # identical results for any worker count.
        self.engine_kwargs.setdefault("n_jobs", n_jobs)
        self.n_jobs = n_jobs
        self._rng = as_generator(rng)

    # -- main entry point ---------------------------------------------------------
    def tune(self, objective: Objective, budget: int,
             rng: np.random.Generator | int | None = None,
             tracer=None) -> ROBOTuneResult:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        rng = as_generator(rng) if rng is not None else self._rng
        tracer = as_tracer(tracer)
        # The stores are shared across sessions; rebind their observation
        # hook every call so a traced session never leaks events into a
        # closed tracer from a previous one.
        self.selection_cache.tracer = tracer
        self.memo_buffer.tracer = tracer
        space = objective.space
        wl = getattr(objective, "workload", None)
        cache_key = wl.key if wl is not None else ""

        result = ROBOTuneResult(tuner=self.name,
                                workload=workload_key(objective))

        with tracer.span("tune", tuner=self.name, budget=int(budget)):
            # ---- memoized sampling: parameter-selection cache -----------------
            selected = self.selection_cache.get(cache_key) if cache_key \
                else None
            result.selection_cache_hit = selected is not None
            mapping = None
            if selected is None and self.mapper is not None and cache_key:
                with tracer.span("transfer.probe"):
                    mapping = self.mapper.map(objective)
                result.mapping_cost_s = mapping.probe_cost_s
                tracer.emit("transfer.map",
                            {"workload": cache_key,
                             "matched": mapping.matched,
                             "correlation": float(mapping.correlation),
                             "probe_cost_s": float(mapping.probe_cost_s),
                             "n_probes": int(self.mapper.n_probes)})
                if mapping.matched is not None:
                    selected = self.mapper.selected_for(mapping.matched)
                    result.mapped_from = mapping.matched
                    self.mapper.register(cache_key, mapping.signature,
                                         selected)
                    self.selection_cache.put(cache_key, selected)
            if selected is None:
                selector = self.selector or ParameterSelector(
                    rng=rng, n_jobs=self.n_jobs)
                with tracer.span("selection"):
                    sel_evals = selector.collect(objective, space,
                                                 tracer=tracer)
                    sel = selector.select(space, sel_evals, tracer=tracer)
                result.selection = sel
                result.selection_evaluations = sel_evals
                result.selection_cost_s = sel.cost_s
                selected = list(sel.selected)
                if cache_key:
                    self.selection_cache.put(cache_key, selected)
                if mapping is not None and selected:
                    # Unmatched workload: record its probe signature so
                    # future sessions can map onto this selection.
                    self.mapper.register(cache_key, mapping.signature,
                                         selected)
            else:
                tracer.emit("selection.params",
                            {"selected": list(selected), "groups": [],
                             "oob_r2": None, "n_samples": 0, "cost_s": 0.0,
                             "cached": True})
            result.selected_parameters = list(selected)

            # Pin the unselected (low-impact) parameters to the best complete
            # configuration already known — the best selection sample on a
            # cold run, the best memoized config on a warm one — rather than
            # Spark defaults: the selection phase already paid for this
            # information.
            base = self._base_config(result, cache_key)
            result.base_config = base
            reduced = space.subspace([n for n in selected if n in space],
                                     base=base)
            result.reduced_space = reduced
            reduced_objective = self._rebind(objective, reduced)

            # ---- journal-backed warm start ------------------------------------
            warm = None
            if self.warm_start is not None and wl is not None:
                accept = [result.mapped_from] if result.mapped_from else []
                warm = load_warm_start(self.warm_start, wl, reduced,
                                       accept_workloads=accept,
                                       memo=self.memo_buffer,
                                       tracer=tracer)
                if warm is not None:
                    result.warm_start_n = warm.n
                    result.warm_start_sources = tuple(warm.sources)

            # ---- memoized sampling: initial training set ----------------------
            init_vectors = self._initial_design(reduced, cache_key, budget,
                                                rng, result)
            init_evals: list[Evaluation] = []
            with tracer.span("initial_design",
                             memoized=int(result.memoized_used)):
                for i, u in enumerate(init_vectors):
                    ev = reduced_objective(u, None)
                    init_evals.append(ev)
                    tracer.emit("eval.result", evaluation_data(i, ev))
                    tracer.count("evals")
            result.evaluations.extend(init_evals)

            # ---- BO engine ----------------------------------------------------
            remaining = budget - len(init_evals)
            if remaining > 0:
                guard = MedianGuard(self.guard_multiplier,
                                    static_limit_s=objective.time_limit_s,
                                    tracer=tracer)
                engine_kwargs = dict(self.engine_kwargs)
                if warm is not None:
                    engine_kwargs["warm_start"] = warm
                engine = BOEngine(rng=rng, tracer=tracer, **engine_kwargs)
                with tracer.span("bo", budget=int(remaining)):
                    bo_evals = engine.minimize(reduced_objective, reduced,
                                               init_evals, remaining, guard)
                result.evaluations.extend(bo_evals)
                result.bo_records = engine.records
                # Poison configs the supervisor quarantined must never
                # seed a future session through the memo buffer.
                for u in engine.quarantined:
                    conf = dict(reduced.decode(u))
                    result.quarantined_configs.append(conf)
                    if cache_key:
                        self.memo_buffer.block(cache_key, conf)

            # ---- memoize the well-tuned configurations ------------------------
            if cache_key:
                ok = sorted((e for e in result.evaluations if e.ok),
                            key=lambda e: e.objective)
                dataset = wl.dataset.label if wl is not None else ""
                for e in ok[: self.store_results]:
                    self.memo_buffer.add(cache_key, e.config, e.objective,
                                         dataset=dataset)
        return result

    # -- helpers ---------------------------------------------------------------------
    def _base_config(self, result: ROBOTuneResult,
                     cache_key: str) -> dict | None:
        """Best known full configuration to pin unselected parameters to."""
        memoized = self.memo_buffer.best(cache_key, 1) if cache_key else []
        if memoized:
            return dict(memoized[0].config)
        ok = [e for e in result.selection_evaluations if e.ok]
        if ok:
            return dict(min(ok, key=lambda e: e.objective).config)
        return None

    @staticmethod
    def _rebind(objective: Objective, reduced: ConfigSpace):
        """View the objective through the reduced space."""
        with_space = getattr(objective, "with_space", None)
        if with_space is None:
            raise TypeError("objective must provide with_space(space) so "
                            "ROBOTune can tune the selected subspace")
        return with_space(reduced)

    def _initial_design(self, reduced: ConfigSpace, cache_key: str,
                        budget: int, rng: np.random.Generator,
                        result: ROBOTuneResult) -> np.ndarray:
        """20 LHS tuning samples, or 16 LHS + 4 Best Recent Configs."""
        m = min(self.init_samples, budget)
        memoized = self.memo_buffer.best(cache_key, self.memo_configs) \
            if cache_key else []
        memo_vectors = [reduced.encode(mc.config) for mc in memoized]
        memo_vectors = memo_vectors[: max(m - 1, 0)]  # keep >= 1 LHS sample
        result.memoized_used = len(memo_vectors)
        n_lhs = m - len(memo_vectors)
        lhs = maximin_latin_hypercube(n_lhs, reduced.dim, rng) if n_lhs else \
            np.empty((0, reduced.dim))
        if memo_vectors:
            return np.vstack([np.asarray(memo_vectors), lhs])
        return lhs
