"""ROBOTune core: BO engine, GP-Hedge, parameter selection, memoization."""

from .acquisition import (
    DEFAULT_KAPPA,
    DEFAULT_XI,
    AcquisitionFunction,
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
)
from .bo import BOEngine, BOIterationRecord
from .guard import MedianGuard
from .penalize import LocalPenalizer
from .hedge import GPHedge, HedgeChoice
from .journal import EvalRecord, EvaluationJournal, JournaledObjective
from .memo import ConfigMemoizationBuffer, MemoizedConfig, ParameterSelectionCache
from .selection import ParameterSelector, SelectionResult
from .transfer import MappingResult, WorkloadMapper
from .tuner import ROBOTune, ROBOTuneResult
from .warmstart import WarmStartData, load_warm_start, scan_journals

__all__ = [
    "AcquisitionFunction",
    "ProbabilityOfImprovement",
    "ExpectedImprovement",
    "LowerConfidenceBound",
    "DEFAULT_XI",  # repro: noqa RPE001 -- documented paper knob users pass to PI/EI overrides (docs/API.md)
    "DEFAULT_KAPPA",  # repro: noqa RPE001 -- documented paper knob users pass to LCB overrides (docs/API.md)
    "GPHedge",
    "HedgeChoice",  # repro: noqa RPE001 -- result type returned by GPHedge.select; consumers read its fields
    "BOEngine",
    "BOIterationRecord",
    "LocalPenalizer",
    "MedianGuard",
    "EvaluationJournal",
    "JournaledObjective",
    "EvalRecord",  # repro: noqa RPE001 -- record type returned by EvaluationJournal.load and scan_journals
    "ParameterSelectionCache",
    "ConfigMemoizationBuffer",
    "MemoizedConfig",  # repro: noqa RPE001 -- result type returned by ConfigMemoizationBuffer.best
    "ParameterSelector",
    "SelectionResult",
    "WorkloadMapper",
    "MappingResult",  # repro: noqa RPE001 -- result type returned by WorkloadMapper.map; consumers read its fields
    "ROBOTune",
    "ROBOTuneResult",
    "WarmStartData",
    "load_warm_start",
    "scan_journals",  # repro: noqa RPE001 -- user-facing helper to inspect a warm-start directory before a session
]
