"""ROBOTune core: BO engine, GP-Hedge, parameter selection, memoization."""

from .acquisition import (
    DEFAULT_KAPPA,
    DEFAULT_XI,
    AcquisitionFunction,
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
)
from .bo import BOEngine, BOIterationRecord
from .guard import MedianGuard
from .penalize import LocalPenalizer
from .hedge import GPHedge, HedgeChoice
from .journal import EvalRecord, EvaluationJournal, JournaledObjective
from .memo import ConfigMemoizationBuffer, MemoizedConfig, ParameterSelectionCache
from .selection import ParameterSelector, SelectionResult
from .transfer import MappingResult, WorkloadMapper
from .tuner import ROBOTune, ROBOTuneResult

__all__ = [
    "AcquisitionFunction",
    "ProbabilityOfImprovement",
    "ExpectedImprovement",
    "LowerConfidenceBound",
    "DEFAULT_XI",
    "DEFAULT_KAPPA",
    "GPHedge",
    "HedgeChoice",
    "BOEngine",
    "BOIterationRecord",
    "LocalPenalizer",
    "MedianGuard",
    "EvaluationJournal",
    "JournaledObjective",
    "EvalRecord",
    "ParameterSelectionCache",
    "ConfigMemoizationBuffer",
    "MemoizedConfig",
    "ParameterSelector",
    "SelectionResult",
    "WorkloadMapper",
    "MappingResult",
    "ROBOTune",
    "ROBOTuneResult",
]
