"""GP-Hedge: an adaptive portfolio of acquisition functions.

Implements the Hedge strategy of Hoffman, Brochu & de Freitas (UAI 2011)
the paper adopts (§3.4): each iteration every acquisition function
nominates a candidate; one nominee is chosen with probability
``softmax(eta * gains)``; after the chosen point is evaluated and the GP
refit, each function's gain is updated with the (negated, since we
minimize) posterior mean at *its own* nominee — functions whose proposals
look good in hindsight earn probability mass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import NULL_TRACER
from ..utils.rng import as_generator
from .acquisition import (AcquisitionFunction, ExpectedImprovement,
                          LowerConfidenceBound, ProbabilityOfImprovement)

__all__ = ["GPHedge", "HedgeChoice"]


@dataclass(frozen=True)
class HedgeChoice:
    """One Hedge decision: which function won and everyone's nominees."""

    chosen_index: int
    chosen_name: str
    nominees: np.ndarray       # shape (n_functions, dim)
    probabilities: np.ndarray  # shape (n_functions,)


class GPHedge:
    """Adaptive portfolio over PI, EI and LCB (or any custom set).

    Parameters
    ----------
    functions:
        The portfolio; defaults to the paper's three.
    eta:
        Hedge learning rate on the cumulative (standardized) gains.
    """

    def __init__(self, functions: list[AcquisitionFunction] | None = None,
                 *, eta: float = 1.0,
                 rng: np.random.Generator | int | None = None):
        if functions is None:
            functions = [ProbabilityOfImprovement(), ExpectedImprovement(),
                         LowerConfidenceBound()]
        if not functions:
            raise ValueError("portfolio must contain at least one function")
        self.functions = list(functions)
        if eta <= 0:
            raise ValueError("eta must be positive")
        self.eta = float(eta)
        self.gains = np.zeros(len(self.functions))
        self._rng = as_generator(rng)
        #: observation hook (set by BOEngine when a session is traced);
        #: never consulted for decisions.
        self.tracer = NULL_TRACER

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.functions]

    def probabilities(self) -> np.ndarray:
        """Current selection distribution: softmax(eta * gains)."""
        z = self.eta * (self.gains - self.gains.max())
        p = np.exp(z)
        return p / p.sum()

    def choose(self, nominees: np.ndarray) -> HedgeChoice:
        """Pick one nominee (rows aligned with the portfolio)."""
        nominees = np.asarray(nominees, dtype=float)
        if nominees.shape[0] != len(self.functions):
            raise ValueError("one nominee row per portfolio function required")
        p = self.probabilities()
        idx = int(self._rng.choice(len(self.functions), p=p))
        self.tracer.emit("hedge.probs", {"probs": p, "gains": self.gains,
                                         "names": self.names})
        self.tracer.emit("acq.winner", {"index": idx,
                                        "name": self.functions[idx].name})
        return HedgeChoice(chosen_index=idx,
                           chosen_name=self.functions[idx].name,
                           nominees=nominees, probabilities=p)

    def update(self, rewards: np.ndarray) -> None:
        """Add per-function rewards (higher = that nominee looked better).

        For minimization the caller passes ``-mu`` of the refit GP at each
        nominee, standardized so the learning rate is scale-free.
        """
        rewards = np.asarray(rewards, dtype=float)
        if rewards.shape != self.gains.shape:
            raise ValueError("rewards must match the portfolio size")
        self.gains += rewards
