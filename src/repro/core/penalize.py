"""Busy-point penalization for asynchronous acquisition optimization.

When the BO engine runs asynchronously, some configurations are *in
flight* — dispatched to a worker, outcome unknown.  Proposing the next
point as if they did not exist re-proposes the same region over and over;
the constant-liar trick (fantasize an outcome, refit) fixes that but pays
a GP refactorization per pending point and biases the posterior by
whatever lie was told.

Local penalization (González et al., *Batch Bayesian Optimization via
Local Penalization*, AISTATS 2016) instead multiplies the acquisition
utility by a penalty factor per pending point:

    phi_j(x) = Phi( (L ||x - x_j|| - (mu(x_j) - M)) / (sqrt(2) sigma(x_j)) )

where ``M`` is the best observed (standardized) objective, ``mu/sigma``
the GP posterior at the pending point and ``L`` a Lipschitz estimate of
the objective.  Each factor is ~0 inside the ball around ``x_j`` that the
pending evaluation is expected to resolve (radius ``(mu_j - M)/L``) and
→1 outside it, so the penalized acquisition steers new proposals away
from regions a worker is already exploring — without touching the GP.

Everything here operates on the engine's *standardized* objective scale
(see ``BOEngine._standardized``), where the acquisition functions live.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from ..gp.gpr import GaussianProcessRegressor

__all__ = ["LocalPenalizer"]

#: Lipschitz floor: a flat posterior would give an infinite exclusion
#: radius, pinning the whole space; treat it as "weakly sloped" instead.
_L_FLOOR = 1e-6
#: Posterior-std floor at pending points (a pending point the GP is
#: certain about still needs a finite-width penalty transition).
_SIGMA_FLOOR = 1e-6


class LocalPenalizer:
    """Multiplicative acquisition penalties around in-flight points.

    One instance per proposal: :meth:`prepare` computes the per-pending
    posterior moments and the Lipschitz estimate once, then
    :meth:`penalties` scores any candidate set against them.
    """

    def __init__(self, gp: GaussianProcessRegressor, pending: np.ndarray,
                 y_mean: float, y_std: float, f_best: float):
        """Precompute penalty state for one proposal.

        Parameters
        ----------
        gp:
            The fitted surrogate (raw objective scale).
        pending:
            In-flight points, shape ``(m, d)`` with ``m >= 1``.
        y_mean / y_std:
            The standardization applied to observations, so penalty
            moments live on the same scale as the acquisition inputs.
        f_best:
            Best observed objective, standardized (the ``M`` above).
        """
        self._pending = np.atleast_2d(np.asarray(pending, dtype=float))
        mu, sigma = gp.predict(self._pending, return_std=True)
        self._mu = (mu - y_mean) / y_std
        self._sigma = np.maximum(sigma / y_std, _SIGMA_FLOOR)
        self._f_best = float(f_best)
        self._L = self._lipschitz(gp, y_std)

    def _lipschitz(self, gp: GaussianProcessRegressor,
                   y_std: float) -> float:
        """Estimate of the objective's Lipschitz constant, standardized.

        The max posterior-mean gradient norm over the pending points and
        the training incumbent — the places the search is actually
        operating.  González et al. sample the whole domain; evaluating
        at the active points is deterministic, costs ``m + 1`` gradient
        evaluations, and under-estimating merely softens the penalty
        (never corrupts it).
        """
        probes = [self._pending[j] for j in range(len(self._pending))]
        X_obs = gp.X_train_
        if len(X_obs):
            probes.append(X_obs[int(np.argmin(gp.predict(X_obs)))])
        norms = []
        for x in probes:
            _, _, dmu, _ = gp.predict_with_gradient(np.asarray(x))
            norms.append(float(np.linalg.norm(dmu / y_std)))
        return max(max(norms), _L_FLOOR)

    def penalties(self, U: np.ndarray) -> np.ndarray:
        """Product of per-pending penalty factors for each candidate row.

        Returns an array of shape ``(len(U),)`` with values in (0, 1]:
        ~0 where a candidate sits inside some pending point's exclusion
        ball, →1 far from every in-flight point.
        """
        U = np.asarray(U, dtype=float)
        out = np.ones(len(U))
        for j in range(len(self._pending)):
            dist = np.linalg.norm(U - self._pending[j], axis=1)
            gap = self._mu[j] - self._f_best
            z = (self._L * dist - gap) / (np.sqrt(2.0) * self._sigma[j])
            out *= norm.cdf(z)
        return out

    def apply(self, util: np.ndarray, U: np.ndarray) -> np.ndarray:
        """Penalized utility over the candidate sweep.

        Utilities are shifted to be non-negative first (LCB's utility can
        be negative, and multiplying a negative utility by a factor in
        (0, 1] would *raise* it near pending points — the opposite of
        penalizing).  The shift preserves the unpenalized argmax and is
        the standard transformation in local-penalization
        implementations.
        """
        shifted = util - float(util.min())
        return shifted * self.penalties(U)
