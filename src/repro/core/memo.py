"""Memoized sampling's two stores (paper §3.2, Figure 1).

* :class:`ParameterSelectionCache` — workload → high-impact parameter
  names.  A hit skips the expensive 100-sample selection phase entirely
  (high-impact parameters are stable across dataset sizes for the same
  workload).
* :class:`ConfigMemoizationBuffer` — workload → a few best recent
  configurations from completed tuning sessions.  When the same workload
  returns with a different input, the best ones seed the BO training set
  ("Best Recent Configs"), steering the GP toward known high-performing
  regions immediately.

Both stores are keyed by the workload identity *without* the dataset and
both persist to JSON so tuning sessions in different processes share
knowledge, like the paper's long-running tuning service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..obs import NULL_TRACER

__all__ = ["ParameterSelectionCache", "ConfigMemoizationBuffer", "MemoizedConfig"]


@dataclass(frozen=True)
class MemoizedConfig:
    """One remembered configuration and the time it achieved."""

    config: dict[str, Any]
    objective: float
    dataset: str = ""


class ParameterSelectionCache:
    """Workload → selected high-impact parameter names."""

    def __init__(self, path: str | Path | None = None):
        self._path = Path(path) if path is not None else None
        self._table: dict[str, list[str]] = {}
        #: observation hook (rebound per traced session by ROBOTune).
        self.tracer = NULL_TRACER
        if self._path is not None and self._path.exists():
            self._table = {str(k): [str(p) for p in v]
                           for k, v in json.loads(self._path.read_text()).items()}

    def get(self, workload: str) -> list[str] | None:
        """Selected parameters on a hit, None on a miss."""
        params = self._table.get(workload)
        if params is not None:
            self.tracer.emit("memo.hit", {"store": "selection_cache",
                                          "workload": workload,
                                          "n": len(params)})
            return list(params)
        self.tracer.emit("memo.miss", {"store": "selection_cache",
                                       "workload": workload})
        return None

    def put(self, workload: str, parameters: list[str]) -> None:
        if not parameters:
            raise ValueError("refusing to cache an empty selection")
        self._table[workload] = list(parameters)
        self.tracer.emit("memo.store", {"store": "selection_cache",
                                        "workload": workload,
                                        "n": len(parameters)})
        self._flush()

    def invalidate(self, workload: str) -> None:
        """Drop a workload's entry (e.g. after a cluster change)."""
        self._table.pop(workload, None)
        self._flush()

    def __contains__(self, workload: str) -> bool:
        return workload in self._table

    def __len__(self) -> int:
        return len(self._table)

    def _flush(self) -> None:
        if self._path is not None:
            self._path.write_text(json.dumps(self._table, indent=2))  # repro: noqa RPF002 -- memo table is a warm-start cache, not evaluation state: full-file idempotent rewrite, losing it only costs re-selection


class ConfigMemoizationBuffer:
    """Workload → best recent configurations from prior sessions.

    Keeps at most ``capacity`` entries per workload, best objective first;
    inserting a worse-than-worst config into a full buffer is a no-op.
    """

    def __init__(self, path: str | Path | None = None, *, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._path = Path(path) if path is not None else None
        self._table: dict[str, list[MemoizedConfig]] = {}
        self._blocked: dict[str, list[dict[str, Any]]] = {}
        #: observation hook (rebound per traced session by ROBOTune).
        self.tracer = NULL_TRACER
        if self._path is not None and self._path.exists():
            raw = json.loads(self._path.read_text())
            blocked = raw.pop("__blocked__", {}) if isinstance(raw, dict) \
                else {}
            self._table = {
                k: [MemoizedConfig(m["config"], float(m["objective"]),
                                   m.get("dataset", ""))
                    for m in v]
                for k, v in raw.items()
            }
            self._blocked = {k: [dict(c) for c in v]
                             for k, v in blocked.items()}

    def block(self, workload: str, config: Mapping[str, Any]) -> None:
        """Quarantine a poison configuration (docs/ROBUSTNESS.md).

        A config the supervisor quarantined (it repeatedly hung or killed
        workers) must never seed a future session: it is dropped from the
        buffer if present and excluded from :meth:`add`/:meth:`best` from
        now on.  The blocklist persists alongside the buffer.
        """
        snap = dict(config)
        bucket = self._blocked.setdefault(workload, [])
        if snap not in bucket:
            bucket.append(snap)
        kept = self._table.get(workload)
        if kept is not None:
            kept[:] = [m for m in kept if m.config != snap]
        self.tracer.emit("memo.block", {"store": "config_buffer",
                                        "workload": workload,
                                        "blocked": len(bucket)})
        self._flush()

    def is_blocked(self, workload: str, config: Mapping[str, Any]) -> bool:
        return dict(config) in self._blocked.get(workload, [])

    def add(self, workload: str, config: Mapping[str, Any], objective: float,
            *, dataset: str = "") -> None:
        """Record a tuned configuration and its achieved time.

        Blocked (quarantined) configurations are silently refused.
        """
        entry = MemoizedConfig(dict(config), float(objective), dataset)
        if self.is_blocked(workload, entry.config):
            return
        bucket = self._table.setdefault(workload, [])
        bucket.append(entry)
        bucket.sort(key=lambda m: m.objective)
        del bucket[self.capacity:]
        self.tracer.emit("memo.store", {"store": "config_buffer",
                                        "workload": workload,
                                        "objective": float(objective),
                                        "kept": len(bucket)})
        self._flush()

    def best(self, workload: str, k: int = 4) -> list[MemoizedConfig]:
        """Up to *k* best remembered configs (empty list on a miss)."""
        if k < 0:
            raise ValueError("k must be >= 0")
        found = [m for m in self._table.get(workload, ())
                 if not self.is_blocked(workload, m.config)][:k]
        if k > 0:
            if found:
                self.tracer.emit("memo.hit", {"store": "config_buffer",
                                              "workload": workload,
                                              "n": len(found)})
            else:
                self.tracer.emit("memo.miss", {"store": "config_buffer",
                                               "workload": workload})
        return found

    def __contains__(self, workload: str) -> bool:
        return bool(self._table.get(workload))

    def __len__(self) -> int:
        return len(self._table)

    def _flush(self) -> None:
        if self._path is None:
            return
        raw: dict[str, Any] = {
            k: [{"config": m.config, "objective": m.objective,
                 "dataset": m.dataset} for m in v]
            for k, v in self._table.items()
        }
        if self._blocked:
            raw["__blocked__"] = self._blocked
        self._path.write_text(json.dumps(raw, indent=2))  # repro: noqa RPF002 -- memo buffer persistence is a warm-start cache (idempotent full rewrite), not journaled evaluation state
