"""Journal-backed warm starts for the BO surrogate (LOCAT-style transfer).

Every checkpointed tuning session leaves an :class:`EvaluationJournal`
behind; those journals are the accumulated experience of the cluster.
This module scans a directory of them, keeps the evaluations belonging to
the session's workload (exact name match — or additional names the
:class:`~repro.core.transfer.WorkloadMapper` judged equivalent), encodes
each prior configuration into the *current* reduced space, and appends a
normalized-datasize feature column so observations from different dataset
sizes inform the surrogate without being mistaken for same-size ones
(LOCAT, PAPERS.md).  :class:`~repro.core.bo.BOEngine` folds the result
into the GP before iteration 0: prior observations shape the posterior
but are never re-evaluated, never feed the kill-threshold guard and never
consume budget.

No linear algebra happens here — the module only assembles arrays; every
factorization lives in ``repro.gp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from ..obs import as_tracer
from ..space.space import ConfigSpace
from ..workloads.base import Workload
from ..workloads.registry import get_workload
from .journal import EvaluationJournal
from .memo import ConfigMemoizationBuffer

__all__ = ["WarmStartData", "load_warm_start", "scan_journals",
           "journal_paths"]

#: Journal filename patterns recognized by :func:`scan_journals`.
_JOURNAL_GLOBS = ("*.jsonl", "*.journal")


@dataclass(frozen=True)
class WarmStartData:
    """Prior observations ready to fold into the surrogate.

    ``X`` holds the prior configurations encoded into the *current*
    session's reduced space (parameters a prior session tuned but this
    one does not are simply dropped by the encoding; parameters it did
    not tune fall back to defaults).  ``sizes`` is the LOCAT-style
    normalized datasize of each observation and ``current_size`` the
    session's own, so the engine can append the context column to both
    prior and live rows consistently.
    """

    X: np.ndarray
    y: np.ndarray
    sizes: np.ndarray
    current_size: float
    sources: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("warm-start X must be 2-D")
        if self.y.shape != (self.X.shape[0],) \
                or self.sizes.shape != (self.X.shape[0],):
            raise ValueError("warm-start X, y and sizes must agree in length")
        if not 0.0 < self.current_size <= 1.0:
            raise ValueError("current_size must be in (0, 1]")

    @property
    def n(self) -> int:
        return self.X.shape[0]


def journal_paths(directory: str | Path) -> list[Path]:
    """Journal files under *directory*, fail-fast validated.

    Raises ``ValueError`` when the directory is missing, is not a
    directory, or holds no journal files — the cheap check a CLI or
    tuner constructor runs before any cluster time is spent.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"warm-start directory {directory} does not exist "
                         "or is not a directory")
    paths = sorted(p for pattern in _JOURNAL_GLOBS
                   for p in directory.glob(pattern))
    if not paths:
        raise ValueError(f"warm-start directory {directory} contains no "
                         f"journal files ({' / '.join(_JOURNAL_GLOBS)})")
    return paths


def scan_journals(directory: str | Path
                  ) -> list[tuple[Path, dict, list]]:
    """Parse every journal under *directory*: ``(path, meta, records)``.

    Fails fast on an unusable directory (missing, not a directory, or
    holding no journal files at all) — the CLI surfaces that before any
    cluster time is spent.  Individual journals that cannot be parsed are
    skipped (a torn final line is already tolerated by the journal
    itself).
    """
    out = []
    for path in journal_paths(directory):
        try:
            meta, records = EvaluationJournal(path).load()
        except (OSError, ValueError, KeyError):
            continue
        out.append((path, meta, records))
    return out


def _dataset_scale(workload_name: str, label: str) -> float | None:
    """Native scale of a workload's labelled dataset; None when unknown."""
    try:
        return float(get_workload(workload_name, label).dataset.scale)
    except KeyError:
        return None


def load_warm_start(directory: str | Path, workload: Workload,
                    space: ConfigSpace, *,
                    accept_workloads: Iterable[str] = (),
                    memo: ConfigMemoizationBuffer | None = None,
                    max_points: int = 1024,
                    tracer=None) -> WarmStartData | None:
    """Assemble :class:`WarmStartData` from a directory of prior journals.

    Parameters
    ----------
    directory:
        Directory of prior-session journals (fail-fast validated).
    workload:
        The current session's workload; journals are matched on its
        ``key`` (name without dataset — priors from *other datasets* of
        the same workload are exactly the transfer-learning payoff).
    space:
        The current session's (reduced) tuning space; prior configs are
        encoded into it.
    accept_workloads:
        Additional workload names to accept, e.g. ones a
        :class:`~repro.core.transfer.WorkloadMapper` mapped onto this
        workload's selection.
    memo:
        The memoization buffer; prior observations whose configuration
        the buffer already carries for this workload are dropped (the
        initial design re-evaluates those configs, so keeping them would
        duplicate rows at the same context).
    max_points:
        Cap on folded observations.  Over the cap, the chronological
        sequence is thinned to evenly spaced survivors — deterministic,
        and it preserves coverage instead of biasing toward any one
        session.

    Returns None (cold start) when no journal matches the workload;
    raises ``ValueError`` only for an unusable directory.
    """
    if max_points < 1:
        raise ValueError("max_points must be >= 1")
    tracer = as_tracer(tracer)
    names = {workload.key} | set(accept_workloads)
    journals = scan_journals(directory)

    # Normalization denominator: the largest known scale for this
    # workload (Table 1 plus the session's own dataset), so the feature
    # is stable no matter which subset of journals is present.  Synthetic
    # workloads carry no scale; their own dataset normalizes to 1.0 and
    # journals from *other* datasets are skipped (scale unknowable).
    current_scale = float(getattr(workload.dataset, "scale", 1.0))
    scales: dict[str, float] = {workload.dataset.label: current_scale}
    denom = current_scale
    for label in ("D1", "D2", "D3"):
        scale = _dataset_scale(workload.key, label)
        if scale is not None:
            scales[label] = scale
            denom = max(denom, scale)

    memo_keys: set[bytes] = set()
    if memo is not None:
        for mc in memo.best(workload.key, k=len(memo) + 8):
            memo_keys.add(space.encode(mc.config).tobytes())

    vectors: list[np.ndarray] = []
    ys: list[float] = []
    sizes: list[float] = []
    sources: list[str] = []
    skipped = 0
    deduped = 0
    seen: set[bytes] = set()
    for path, meta, records in journals:
        full_key = str(meta.get("workload", ""))
        name, _, label = full_key.partition("/")
        if name not in names:
            skipped += 1
            continue
        # A mapped (foreign) workload's sizes come from its own Table 1
        # row, never from the current workload's label scales.
        scale = scales.get(label) if name == workload.key \
            else _dataset_scale(name, label)
        if scale is None:
            # Unlabelled or custom dataset: unusable for the datasize
            # feature; skip rather than guess a context.
            skipped += 1
            continue
        size = min(scale / denom, 1.0)
        used = False
        for rec in records:
            if rec.fault == "crash_recovery":
                continue  # synthesized, never executed: no signal
            u = space.encode(rec.config)
            key = u.tobytes() + np.float64(size).tobytes()
            if key in seen or u.tobytes() in memo_keys:
                deduped += 1
                continue
            seen.add(key)
            vectors.append(u)
            ys.append(float(rec.objective))
            sizes.append(size)
            used = True
        if used:
            sources.append(str(path))

    if not vectors:
        tracer.emit("warmstart.load", {"n": 0, "journals": len(journals),
                                       "skipped": skipped,
                                       "deduped": deduped,
                                       "workload": workload.key})
        return None

    X = np.vstack(vectors)
    y = np.asarray(ys, dtype=float)
    size_arr = np.asarray(sizes, dtype=float)
    if X.shape[0] > max_points:
        keep = np.unique(np.linspace(0, X.shape[0] - 1,
                                     max_points).round().astype(int))
        X, y, size_arr = X[keep], y[keep], size_arr[keep]
    data = WarmStartData(X=X, y=y, sizes=size_arr,
                         current_size=min(current_scale / denom, 1.0),
                         sources=tuple(sources))
    tracer.emit("warmstart.load", {"n": int(data.n),
                                   "journals": len(journals),
                                   "skipped": skipped,
                                   "deduped": deduped,
                                   "workload": workload.key})
    return data
