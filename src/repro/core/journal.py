"""Crash-safe evaluation journal (docs/ROBUSTNESS.md).

An append-only JSONL file recording every finished evaluation of a tuning
session, fsync'd per record so a killed process loses at most the
evaluation in flight.  Each record also snapshots the objective's RNG
state *after* the evaluation, which is what makes resume bit-identical:

* Tuner decisions are a deterministic function of the tuner seed and the
  sequence of evaluation outcomes.  Resuming re-runs the tuner with the
  same seed while :class:`JournaledObjective` serves the journaled
  outcomes in order instead of re-executing them, so the tuner replays
  the exact decision path without re-paying cluster time.
* The simulator's noise stream is consumed only by real executions.  When
  the replay queue drains, the objective's generator is restored from the
  last snapshot, and the first live evaluation draws exactly the noise it
  would have drawn in an uninterrupted run.

A torn final line (the classic crash artifact) is tolerated: parsing
stops at the first corrupt line and the session resumes from the last
intact record.

Format version 2 adds **dispatch/settle pairs** for crash-safe
*in-flight* recovery (docs/ROBUSTNESS.md, "Supervised execution"): a
``dispatch`` record (sequence number + vector) is written durably
*before* an evaluation executes, and its ``eval`` record settles the
same sequence number afterwards.  A dispatch with no matching settle is
exactly the work that was in flight when the process died; on resume it
is either re-executed (``recover="redispatch"``, the default — the
deterministic replay re-proposes the same vector, so the fault-free case
stays bit-identical) or written off as censored-at-cap
(``recover="censor"``).  Version-1 journals (no dispatch records) load
unchanged.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, TextIO

import numpy as np

from ..sparksim.result import RunStatus
from ..tuners.base import Evaluation

__all__ = ["EvaluationJournal", "JournaledObjective", "EvalRecord",
           "DispatchRecord", "RECOVER_MODES"]

_FORMAT_VERSION = 2

#: How resume treats dispatches that never settled (in flight at crash).
RECOVER_MODES = ("redispatch", "censor")


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays that leak into configs or states."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


@dataclass(frozen=True)
class DispatchRecord:
    """A durably recorded *intent* to evaluate (written before execution)."""

    seq: int
    vector: list[float]


@dataclass(frozen=True)
class EvalRecord:
    """One journaled evaluation plus the post-evaluation RNG snapshot."""

    vector: list[float]
    config: dict[str, Any]
    objective: float
    cost_s: float
    status: str
    truncated: bool
    transient: bool
    fault: str | None
    attempts: int
    rng_state: dict[str, Any] | None
    seq: int | None = None  # settles the dispatch with this sequence number

    def to_evaluation(self) -> Evaluation:
        return Evaluation(
            vector=np.asarray(self.vector, dtype=float),
            config=dict(self.config),
            objective=float(self.objective),
            cost_s=float(self.cost_s),
            status=RunStatus(self.status),
            truncated=bool(self.truncated),
            transient=bool(self.transient),
            fault=self.fault,
            attempts=int(self.attempts),
        )


class EvaluationJournal:
    """Append-only JSONL journal of one tuning session.

    Parameters
    ----------
    path:
        Journal file; created on the first write.
    fsync:
        Force each record to stable storage (the crash-safety guarantee;
        disable only in tests where speed matters more than durability).
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._fh: TextIO | None = None
        self._lock = threading.Lock()  # spawned views append concurrently

    # -- writing ------------------------------------------------------------------
    def write_meta(self, meta: Mapping[str, Any]) -> None:
        """Start a fresh journal with a session-identity header.

        Refuses to overwrite an existing non-empty journal: appending a
        second session to a journal would corrupt replay ordering.  Use
        :meth:`load` + resume to continue a session instead.
        """
        if self.path.exists() and self.path.stat().st_size > 0:
            raise FileExistsError(
                f"journal {self.path} already holds a session; resume from "
                "it or remove it before starting a new one")
        self._write_line({"kind": "meta", "version": _FORMAT_VERSION,
                          **dict(meta)})

    def append_dispatch(self, seq: int, vector: Any) -> None:
        """Durably record that evaluation *seq* is about to execute."""
        self._write_line({
            "kind": "dispatch",
            "seq": int(seq),
            "vector": [float(v) for v in np.asarray(vector)],
        })

    def append(self, evaluation: Evaluation,
               rng_state: dict[str, Any] | None = None, *,
               seq: int | None = None) -> None:
        """Durably record one finished evaluation (settling *seq* if given)."""
        payload: dict[str, Any] = {
            "kind": "eval",
            "vector": [float(v) for v in np.asarray(evaluation.vector)],
            "config": dict(evaluation.config),
            "objective": float(evaluation.objective),
            "cost_s": float(evaluation.cost_s),
            "status": evaluation.status.value,
            "truncated": bool(evaluation.truncated),
            "transient": bool(evaluation.transient),
            "fault": evaluation.fault,
            "attempts": int(evaluation.attempts),
            "rng_state": rng_state,
        }
        if seq is not None:
            payload["seq"] = int(seq)
        self._write_line(payload)

    def _write_line(self, payload: dict[str, Any]) -> None:
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(payload, default=_jsonable) + "\n")
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading ------------------------------------------------------------------
    def load(self) -> tuple[dict[str, Any], list[EvalRecord]]:
        """(meta, settled records); parsing stops at the first corrupt line."""
        meta, records, _ = self._read()
        return meta, records

    def pending_dispatches(self) -> list[DispatchRecord]:
        """Dispatches with no settling ``eval`` record: in flight at crash."""
        _, records, dispatches = self._read()
        settled = {rec.seq for rec in records if rec.seq is not None}
        return [d for d in dispatches if d.seq not in settled]

    def next_seq(self) -> int:
        """First unused dispatch sequence number for a resumed session."""
        _, records, dispatches = self._read()
        used = [d.seq for d in dispatches]
        used.extend(rec.seq for rec in records if rec.seq is not None)
        return max(used, default=-1) + 1

    def _read(self) -> tuple[dict[str, Any], list[EvalRecord],
                             list[DispatchRecord]]:
        if not self.path.exists():
            raise FileNotFoundError(f"no journal at {self.path}")
        meta: dict[str, Any] = {}
        records: list[EvalRecord] = []
        dispatches: list[DispatchRecord] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn write from a crash: resume from here
                if payload.get("kind") == "meta":
                    meta = {k: v for k, v in payload.items()
                            if k not in ("kind", "version")}
                elif payload.get("kind") == "dispatch":
                    dispatches.append(DispatchRecord(
                        seq=payload["seq"], vector=payload["vector"]))
                elif payload.get("kind") == "eval":
                    records.append(EvalRecord(
                        vector=payload["vector"],
                        config=payload["config"],
                        objective=payload["objective"],
                        cost_s=payload["cost_s"],
                        status=payload["status"],
                        truncated=payload.get("truncated", False),
                        transient=payload.get("transient", False),
                        fault=payload.get("fault"),
                        attempts=payload.get("attempts", 1),
                        rng_state=payload.get("rng_state"),
                        seq=payload.get("seq"),
                    ))
        return meta, records, dispatches

    def __len__(self) -> int:
        """Number of intact evaluation records on disk."""
        if not self.path.exists():
            return 0
        return len(self.load()[1])


class JournaledObjective:
    """Objective wrapper that records to — or replays from — a journal.

    In **recording** mode (``replay=None``) every live evaluation writes
    a ``dispatch`` record *before* executing and settles it afterwards
    together with the objective's RNG snapshot; decisions are untouched.

    In **replay** mode the queued records are served in order *without*
    executing anything (the fault injector's evaluation index is advanced
    via its ``skip`` hook so fault coordinates stay aligned); when the
    queue drains, the objective's RNG state is restored from the last
    record and evaluation switches to live recording.  A vector mismatch
    between a replayed record and what the tuner asked to evaluate means
    the journal belongs to a different session (seed or configuration
    drift) and raises immediately rather than returning wrong data.

    Dispatches that never settled (in flight when the process died) are
    handled per *recover*: ``"redispatch"`` simply re-executes them when
    the deterministic replay re-proposes their vectors — bit-identical
    for the fault-free fixed-seed case — while ``"censor"`` writes each
    one off as a censored-at-cap evaluation without re-paying its
    cluster time (documented as not bit-identical: the objective's noise
    stream is not consumed).

    Views share the journal, the replay queue and the sequence counter,
    so concurrent evaluation under ``async_workers > 1`` journals safely
    (:meth:`spawn_view` requires the wrapped objective to be spawnable).
    """

    def __init__(self, objective: Any, journal: EvaluationJournal, *,
                 replay: list[EvalRecord] | None = None,
                 pending: list[DispatchRecord] | None = None,
                 next_seq: int = 0, recover: str = "redispatch") -> None:
        if recover not in RECOVER_MODES:
            raise ValueError(
                f"recover must be one of {RECOVER_MODES}, got {recover!r}")
        self._objective = objective
        self._journal = journal
        self._shared: dict[str, Any] = {"queue": deque(replay or ()),
                        "restored": not replay,
                        "last_state": None,
                        "replayed": 0,
                        "pending": list(pending or ()),
                        "next_seq": int(next_seq),
                        "recover": recover,
                        "lock": threading.Lock()}

    # -- Objective protocol -------------------------------------------------------
    @property
    def space(self) -> Any:
        return self._objective.space

    @property
    def time_limit_s(self) -> float:
        return self._objective.time_limit_s

    def with_space(self, space: Any) -> "JournaledObjective":
        clone = object.__new__(JournaledObjective)
        clone.__dict__ = dict(self.__dict__)
        clone._objective = self._objective.with_space(space)
        return clone

    def spawn_view(self) -> "JournaledObjective":
        """A view for one concurrent evaluation (shares journal + queue)."""
        clone = object.__new__(JournaledObjective)
        clone.__dict__ = dict(self.__dict__)
        clone._objective = self._objective.spawn_view()
        return clone

    @property
    def spawn_view_capable(self) -> bool:
        """True when the wrapped objective can actually spawn views."""
        inner = self.__dict__["_objective"]
        if getattr(type(inner), "spawn_view", None) is None:
            return False
        return bool(getattr(inner, "spawn_view_capable", True))

    def __getattr__(self, name: str) -> Any:
        return getattr(self.__dict__["_objective"], name)

    @property
    def n_replayed(self) -> int:
        """Evaluations served from the journal instead of executed."""
        return self._shared["replayed"]

    @property
    def n_pending(self) -> int:
        """Unsettled dispatches not yet recovered."""
        return len(self._shared["pending"])

    # -- evaluation ---------------------------------------------------------------
    def record_censored(self, evaluation: Evaluation) -> None:
        """Journal an evaluation that was synthesized, not executed.

        The supervision layer calls this for deadline hits and poison
        quarantines: the censored-at-cap outcome must be durable (it was
        folded into the surrogate) even though no objective call, and
        hence no recording ``__call__``, ever finished.
        """
        with self._shared["lock"]:
            seq = self._shared["next_seq"]
            self._shared["next_seq"] = seq + 1
        self._journal.append_dispatch(seq, evaluation.vector)
        self._journal.append(evaluation, None, seq=seq)

    def _recover_censored(self, rec: DispatchRecord, u: np.ndarray,
                          time_limit_s: float | None) -> Evaluation:
        """Write one crashed in-flight dispatch off as censored-at-cap."""
        limit = self._objective.time_limit_s if time_limit_s is None \
            else float(time_limit_s)
        conf = self._objective.space.decode(u)
        censor = getattr(self._objective, "censor_value", None)
        objective = float(censor(conf, None)) if censor is not None \
            else float(limit)
        ev = Evaluation(
            vector=np.asarray(u, dtype=float).copy(),
            config=conf,
            objective=objective,
            cost_s=float(limit),
            status=RunStatus.TIMEOUT,
            truncated=True,
            transient=True,
            fault="crash_recovery",
        )
        skip = getattr(self._objective, "skip", None)
        if skip is not None:
            skip(1)
        self._journal.append(ev, None, seq=rec.seq)
        return ev

    def __call__(self, u: np.ndarray,
                 time_limit_s: float | None = None) -> Evaluation:
        with self._shared["lock"]:
            rec = self._shared["queue"].popleft() \
                if self._shared["queue"] else None
            if rec is not None:
                self._shared["replayed"] += 1
                if rec.rng_state is not None:
                    self._shared["last_state"] = rec.rng_state
        if rec is not None:
            ev = rec.to_evaluation()
            u_arr = np.asarray(u, dtype=float)
            if ev.vector.shape != u_arr.shape \
                    or not np.array_equal(ev.vector, u_arr):
                raise ValueError(
                    "journal replay mismatch: the tuner requested a "
                    "different configuration than the journal recorded "
                    "(wrong seed, tuner settings, or journal file?)")
            skip = getattr(self._objective, "skip", None)
            if skip is not None:
                skip(1)
            return ev
        if not self._shared["restored"]:
            self._shared["restored"] = True
            state = self._shared["last_state"]
            set_state = getattr(self._objective, "set_rng_state", None)
            if state is not None and set_state is not None:
                set_state(state)
        u_arr = np.asarray(u, dtype=float)
        if self._shared["recover"] == "censor":
            with self._shared["lock"]:
                crashed: DispatchRecord | None = None
                for pending in self._shared["pending"]:
                    vec = np.asarray(pending.vector, dtype=float)
                    if vec.shape == u_arr.shape \
                            and np.array_equal(vec, u_arr):
                        crashed = pending
                        break
                if crashed is not None:
                    self._shared["pending"].remove(crashed)
            if crashed is not None:
                return self._recover_censored(crashed, u_arr, time_limit_s)
        with self._shared["lock"]:
            seq = self._shared["next_seq"]
            self._shared["next_seq"] = seq + 1
            # A re-executed vector settles its original dispatch record.
            redispatched: DispatchRecord | None = None
            for pending in self._shared["pending"]:
                vec = np.asarray(pending.vector, dtype=float)
                if vec.shape == u_arr.shape and np.array_equal(vec, u_arr):
                    redispatched = pending
                    break
            if redispatched is not None:
                self._shared["pending"].remove(redispatched)
                seq = redispatched.seq
                self._shared["next_seq"] -= 1
        if redispatched is None:
            self._journal.append_dispatch(seq, u_arr)
        ev = self._objective(u, time_limit_s)
        get_state = getattr(self._objective, "rng_state", None)
        self._journal.append(ev, get_state() if get_state else None, seq=seq)
        return ev
