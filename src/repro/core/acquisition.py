"""Acquisition functions for minimization (paper §3.4, eqs. 2-4).

All three are expressed as *utilities to maximize* over candidate points,
with the paper's adaptation to minimizing execution time:

* ``PI(x) = P(f(x) <= f(x+) - xi) = Phi(d / sigma(x))``
* ``EI(x) = d Phi(d/sigma) + sigma phi(d/sigma)`` (0 where sigma = 0)
* ``LCB(x) = mu(x) - kappa sigma(x)`` — the point with the lowest bound is
  most promising, so its utility is ``-LCB``.

where ``d = f(x+) - mu(x) - xi``, ``Phi``/``phi`` are the standard normal
CDF/PDF, and ``xi``/``kappa`` trade exploration against exploitation
(paper defaults: xi = 0.01, kappa = 1.96).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
from scipy.stats import norm

__all__ = ["AcquisitionFunction", "ProbabilityOfImprovement",
           "ExpectedImprovement", "LowerConfidenceBound",
           "DEFAULT_XI", "DEFAULT_KAPPA"]

DEFAULT_XI = 0.01
DEFAULT_KAPPA = 1.96

_EPS = 1e-12


class AcquisitionFunction(ABC):
    """Utility of candidate points under a GP posterior (maximize)."""

    name: str = ""

    @abstractmethod
    def __call__(self, mu: np.ndarray, sigma: np.ndarray,
                 f_best: float) -> np.ndarray:
        """Utility for candidates with posterior mean *mu*, std *sigma*,
        given the best (lowest) observed objective *f_best*.

        Inputs are expected in a standardized objective scale so the
        ``xi``/``kappa`` knobs keep their published meaning across
        workloads with wildly different magnitudes.
        """

    def gradient(self, mu: float, sigma: float, dmu: np.ndarray,
                 dsigma: np.ndarray, f_best: float) -> np.ndarray:
        """Closed-form utility gradient with respect to the input point.

        *mu*/*sigma* are the scalar posterior moments at the point and
        *dmu*/*dsigma* their input gradients (shape ``(d,)``, e.g. from
        ``GaussianProcessRegressor.predict_with_gradient``); the chain
        rule turns them into ``∂utility/∂u``.  Where the utility is
        piecewise-flat in ``sigma <= eps`` regions the gradient is zero,
        matching the clipped values ``__call__`` returns.
        """
        raise NotImplementedError


class ProbabilityOfImprovement(AcquisitionFunction):
    """Eq. 2: probability of improving on the incumbent by at least xi."""

    name = "PI"

    def __init__(self, xi: float = DEFAULT_XI):
        self.xi = float(xi)

    def __call__(self, mu, sigma, f_best):
        mu = np.asarray(mu, dtype=float)
        sigma = np.asarray(sigma, dtype=float)
        d = f_best - mu - self.xi
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.where(sigma > _EPS, d / np.maximum(sigma, _EPS), np.nan)
        out = norm.cdf(z)
        # Deterministic points improve with probability 0 or 1.
        out = np.where(sigma > _EPS, out, (d > 0).astype(float))
        return out

    def gradient(self, mu, sigma, dmu, dsigma, f_best):
        # PI = Φ(z), z = (f_best − μ − ξ)/σ  ⇒  ∇PI = φ(z)(−∇μ − z∇σ)/σ.
        if sigma <= _EPS:
            return np.zeros_like(dmu)
        z = (f_best - mu - self.xi) / sigma
        return norm.pdf(z) * (-dmu - z * dsigma) / sigma


class ExpectedImprovement(AcquisitionFunction):
    """Eq. 3: expected improvement over the incumbent."""

    name = "EI"

    def __init__(self, xi: float = DEFAULT_XI):
        self.xi = float(xi)

    def __call__(self, mu, sigma, f_best):
        mu = np.asarray(mu, dtype=float)
        sigma = np.asarray(sigma, dtype=float)
        d = f_best - mu - self.xi
        with np.errstate(divide="ignore", invalid="ignore"):
            z = d / np.maximum(sigma, _EPS)
        ei = d * norm.cdf(z) + sigma * norm.pdf(z)
        return np.where(sigma > _EPS, np.maximum(ei, 0.0), 0.0)

    def gradient(self, mu, sigma, dmu, dsigma, f_best):
        # EI = dΦ(z) + σφ(z) with d = f_best − μ − ξ, z = d/σ.  The φ′
        # terms cancel (d − σz = 0), leaving ∇EI = −Φ(z)∇μ + φ(z)∇σ.
        if sigma <= _EPS:
            return np.zeros_like(dmu)
        z = (f_best - mu - self.xi) / sigma
        return -norm.cdf(z) * dmu + norm.pdf(z) * dsigma


class LowerConfidenceBound(AcquisitionFunction):
    """Eq. 4: optimistic lower bound; utility is its negation."""

    name = "LCB"

    def __init__(self, kappa: float = DEFAULT_KAPPA):
        if kappa < 0:
            raise ValueError("kappa must be non-negative")
        self.kappa = float(kappa)

    def __call__(self, mu, sigma, f_best):
        mu = np.asarray(mu, dtype=float)
        sigma = np.asarray(sigma, dtype=float)
        return -(mu - self.kappa * sigma)

    def gradient(self, mu, sigma, dmu, dsigma, f_best):
        # Utility is −μ + κσ, linear in the posterior moments.
        return -dmu + self.kappa * dsigma
