"""Random-Forests parameter selection (paper §3.3).

Trains a Random Forests regressor on LHS samples of the full
(44-dimensional) configuration space, ranks parameters by grouped
Mean-Decrease-in-Accuracy on the out-of-bag R² score (10 permutation
repeats, collinear parameters permuted jointly), and keeps every group
whose permutation drops R² by at least the threshold (0.05, configurable —
§4 "Parameter Selection").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..ml.forest import RandomForestRegressor
from ..ml.importance import GroupImportance, grouped_permutation_importance
from ..obs import as_tracer, evaluation_data
from ..sampling.lhs import latin_hypercube
from ..space.space import ConfigSpace
from ..tuners.base import Evaluation
from ..utils.rng import as_generator

__all__ = ["SelectionResult", "ParameterSelector"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one parameter-selection run."""

    selected: tuple[str, ...]            # parameter names, importance order
    selected_groups: tuple[str, ...]     # group labels that passed
    importances: tuple[GroupImportance, ...]
    oob_r2: float
    n_samples: int
    cost_s: float                        # summed execution time of samples


class ParameterSelector:
    """Dimension reduction for the tuning space.

    Parameters
    ----------
    n_samples:
        Generic LHS samples to execute (the paper uses 100; Figure 7
        studies the recall of smaller counts).
    n_trees:
        Forest size.
    n_repeats:
        Permutations per group for the MDA average (paper: 10).
    threshold:
        Minimum drop in OOB R² for a group to count as high-impact
        (paper: 0.05).
    min_select / max_select:
        Safety bounds on the number of selected *groups*: if fewer than
        ``min_select`` pass the threshold the top groups are taken anyway
        (BO needs something to tune).
    log_target:
        Model ``log(time)`` instead of raw seconds.  Execution times span
        orders of magnitude with a censored plateau at the cap; the log
        compresses the plateau and measurably raises OOB R² and the
        stability of the ranking.
    n_jobs:
        Workers for forest training and permutation importance (``None``
        defers to ``ROBOTUNE_JOBS``); results are identical for any
        worker count.
    """

    def __init__(self, *, n_samples: int = 100, n_trees: int = 150,
                 n_repeats: int = 10, threshold: float = 0.05,
                 min_select: int = 2, max_select: int | None = None,
                 log_target: bool = True,
                 n_jobs: int | None = None,
                 rng: np.random.Generator | int | None = None):
        if n_samples < 10:
            raise ValueError("n_samples must be >= 10")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_select < 1:
            raise ValueError("min_select must be >= 1")
        self.n_samples = n_samples
        self.n_trees = n_trees
        self.n_repeats = n_repeats
        self.threshold = threshold
        self.min_select = min_select
        self.max_select = max_select
        self.log_target = log_target
        self.n_jobs = n_jobs
        self._rng = as_generator(rng)

    # -- sample collection -------------------------------------------------------
    def collect(self, evaluate: Callable[[np.ndarray, float | None], Evaluation],
                space: ConfigSpace,
                n_samples: int | None = None,
                tracer=None) -> list[Evaluation]:
        """Execute generic LHS samples (the one-time selection cost)."""
        tracer = as_tracer(tracer)
        n = n_samples if n_samples is not None else self.n_samples
        U = latin_hypercube(n, space.dim, self._rng)
        evals = []
        for i, u in enumerate(U):
            ev = evaluate(u, None)
            evals.append(ev)
            tracer.emit("eval.result", evaluation_data(i, ev))
            tracer.count("evals")
        return evals

    # -- model + ranking -----------------------------------------------------------
    def select(self, space: ConfigSpace,
               evaluations: Sequence[Evaluation],
               tracer=None) -> SelectionResult:
        """Rank parameter groups and apply the importance threshold."""
        if len(evaluations) < 10:
            raise ValueError("need at least 10 evaluations to select")
        tracer = as_tracer(tracer)
        X = np.vstack([e.vector for e in evaluations])
        y = np.asarray([e.objective for e in evaluations])
        if self.log_target:
            y = np.log(np.maximum(y, 1e-9))
        forest = RandomForestRegressor(self.n_trees, max_features=0.5,
                                       n_jobs=self.n_jobs,
                                       rng=self._rng,
                                       tracer=tracer).fit(X, y)
        oob = forest.oob_score()
        importances = grouped_permutation_importance(
            forest, space.groups(), n_repeats=self.n_repeats,
            n_jobs=self.n_jobs, rng=self._rng, tracer=tracer)

        passed = [g for g in importances if g.importance >= self.threshold]
        if len(passed) < self.min_select:
            passed = list(importances[: self.min_select])
        if self.max_select is not None:
            passed = passed[: self.max_select]

        names: list[str] = []
        group_labels: list[str] = []
        for g in passed:
            group_labels.append(g.group)
            names.extend(space.names[c] for c in g.columns)
        cost = float(sum(e.cost_s for e in evaluations))
        tracer.emit("selection.params",
                    {"selected": list(names), "groups": list(group_labels),
                     "oob_r2": float(oob), "n_samples": len(evaluations),
                     "cost_s": cost})
        return SelectionResult(
            selected=tuple(names),
            selected_groups=tuple(group_labels),
            importances=tuple(importances),
            oob_r2=float(oob),
            n_samples=len(evaluations),
            cost_s=cost,
        )

    def run(self, evaluate: Callable[[np.ndarray, float | None], Evaluation],
            space: ConfigSpace, tracer=None) -> SelectionResult:
        """Collect samples and select in one step."""
        return self.select(space, self.collect(evaluate, space, tracer=tracer),
                           tracer=tracer)
