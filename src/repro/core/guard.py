"""Guard against bad configurations (paper §4).

During the execution of initial samples a static cap applies; during the
BO search, a configurable multiple of the *median* observed execution time
is used as the kill threshold for imbalanced configurations.
"""

from __future__ import annotations

import numpy as np

from ..obs import as_tracer

__all__ = ["MedianGuard"]


class MedianGuard:
    """Kill threshold = ``multiplier × median(successful times)``.

    Parameters
    ----------
    multiplier:
        How many medians a run may take before being stopped.
    static_limit_s:
        Hard upper bound (the evaluation cap); the guard never exceeds it.
    min_observations:
        Observations required before the median rule activates; until
        then the static limit applies.
    tracer:
        Optional :class:`repro.obs.Tracer`; every change of the computed
        threshold is emitted as a ``guard.threshold`` event.
    """

    def __init__(self, multiplier: float = 3.0,
                 static_limit_s: float | None = None, *,
                 min_observations: int = 5, tracer=None):
        if multiplier <= 1.0:
            raise ValueError("multiplier must exceed 1")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.multiplier = float(multiplier)
        self.static_limit_s = static_limit_s
        self.min_observations = min_observations
        self.tracer = as_tracer(tracer)
        self._times: list[float] = []
        self._last_emitted: float | None = None

    def observe(self, duration_s: float, ok: bool) -> None:
        """Record a finished evaluation (only successes shape the median)."""
        if ok:
            self._times.append(float(duration_s))

    def threshold_s(self) -> float | None:
        """Current kill threshold, or None for "no limit"."""
        if len(self._times) < self.min_observations:
            t = self.static_limit_s
        else:
            t = float(np.median(self._times)) * self.multiplier
            if self.static_limit_s is not None:
                t = min(t, self.static_limit_s)
        if t is not None and t != self._last_emitted:
            self._last_emitted = t
            self.tracer.emit("guard.threshold",
                             {"threshold_s": float(t),
                              "observations": len(self._times),
                              "median_rule":
                                  len(self._times) >= self.min_observations})
        return t
