"""Cross-workload transfer: map unseen workloads to known ones.

An extension beyond the paper (inspired by OtterTune's workload mapping,
which ROBOTune §6 discusses): ROBOTune's parameter-selection cache is
keyed by exact workload identity, so a *new* application always pays the
100-sample selection cost.  :class:`WorkloadMapper` cheapens that: it
characterizes every workload by its execution-time *signature* on a small
fixed probe set of configurations; when a new workload's signature rank-
correlates strongly with a known one's, the known workload's selected
parameters are reused and the full selection run is skipped.

Two workloads need not have similar absolute times to match — only a
similar *ordering* of configurations (Spearman correlation), which is what
determines which parameters matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.stats import spearmanr

from ..sampling.lhs import maximin_latin_hypercube
from ..space.space import ConfigSpace
from ..tuners.base import Evaluation

__all__ = ["WorkloadMapper", "MappingResult"]


@dataclass(frozen=True)
class MappingResult:
    """Outcome of a mapping attempt."""

    matched: str | None      # matched workload name, or None
    correlation: float       # Spearman rho against the best candidate
    probe_cost_s: float      # execution time spent probing
    signature: np.ndarray    # the new workload's probe signature


class WorkloadMapper:
    """Signature-based workload mapping over a shared probe set.

    Parameters
    ----------
    space:
        The full tuning space; the probe set lives here so signatures are
        comparable across workloads.
    n_probes:
        Probe configurations (a small fraction of the 100-sample selection
        cost).
    threshold:
        Minimum Spearman correlation to accept a match.
    probe_seed:
        Seed of the shared probe design — fixed so that signatures
        collected in different sessions/processes stay comparable.
    """

    def __init__(self, space: ConfigSpace, *, n_probes: int = 12,
                 threshold: float = 0.8, probe_seed: int = 20210809):
        if n_probes < 4:
            raise ValueError("n_probes must be >= 4 for a stable rank "
                             "correlation")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.space = space
        self.n_probes = n_probes
        self.threshold = threshold
        self._probes = maximin_latin_hypercube(n_probes, space.dim,
                                               rng=probe_seed)
        self._signatures: dict[str, np.ndarray] = {}
        self._selections: dict[str, list[str]] = {}

    @property
    def probes(self) -> np.ndarray:
        """The shared probe design, shape ``(n_probes, dim)``."""
        return self._probes.copy()

    @property
    def known_workloads(self) -> list[str]:
        return sorted(self._signatures)

    # -- signatures ----------------------------------------------------------------
    def signature(self, evaluate: Callable[[np.ndarray, float | None],
                                           Evaluation]
                  ) -> tuple[np.ndarray, float]:
        """Execute the probe set; returns (log-time signature, cost)."""
        sig = np.empty(self.n_probes)
        cost = 0.0
        for i, u in enumerate(self._probes):
            ev = evaluate(u, None)
            sig[i] = np.log(max(ev.objective, 1e-9))
            cost += ev.cost_s
        return sig, cost

    def register(self, name: str, signature: np.ndarray,
                 selected: list[str]) -> None:
        """Record a tuned workload's signature and selected parameters."""
        signature = np.asarray(signature, dtype=float)
        if signature.shape != (self.n_probes,):
            raise ValueError(f"signature must have shape ({self.n_probes},)")
        if not selected:
            raise ValueError("selected parameter list must be non-empty")
        self._signatures[name] = signature.copy()
        self._selections[name] = list(selected)

    def selected_for(self, name: str) -> list[str]:
        """Selected parameters of a registered workload."""
        return list(self._selections[name])

    # -- mapping ------------------------------------------------------------------------
    def map(self, evaluate: Callable[[np.ndarray, float | None], Evaluation]
            ) -> MappingResult:
        """Probe a new workload and try to match it to a known one."""
        sig, cost = self.signature(evaluate)
        best_name: str | None = None
        best_rho = -np.inf
        for name, known in self._signatures.items():
            rho = float(spearmanr(sig, known).statistic)
            if np.isnan(rho):
                rho = 0.0
            if rho > best_rho:
                best_rho, best_name = rho, name
        if best_name is None or best_rho < self.threshold:
            return MappingResult(matched=None,
                                 correlation=best_rho if best_name else 0.0,
                                 probe_cost_s=cost, signature=sig)
        return MappingResult(matched=best_name, correlation=best_rho,
                             probe_cost_s=cost, signature=sig)
