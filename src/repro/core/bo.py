"""The Bayesian-optimization engine (paper Algorithm 1).

Given prior observations, iterate: fit a GP surrogate, let every
acquisition function in the GP-Hedge portfolio nominate a point, evaluate
the probabilistically chosen nominee, augment the priors, and update the
portfolio's gains — until the evaluation budget is exhausted.

Acquisition optimization follows the implementation notes in §4: a
space-filling candidate sweep (vectorized GP prediction over an LHS design
plus exploitation candidates jittered around the incumbent) seeds an
L-BFGS-B refinement of the best candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import minimize

from ..gp.gpr import GaussianProcessRegressor, default_bo_kernel
from ..gp.kernels import Kernel
from ..sampling.lhs import latin_hypercube
from ..space.space import ConfigSpace
from ..tuners.base import Evaluation
from ..utils.rng import as_generator
from .guard import MedianGuard
from .hedge import GPHedge

__all__ = ["BOEngine", "BOIterationRecord"]

#: Standardization floor: observation windows whose spread is below this
#: (all evaluations censored at one cap, or a single repeated value) carry
#: no ranking signal; dividing by their std would overflow or go NaN.
_STD_FLOOR = 1e-12


def _safe_std(y: np.ndarray) -> float:
    """Standard deviation with an epsilon floor for degenerate windows.

    Returns 1.0 (standardized residuals become plain residuals, which are
    ~0 for a constant window) whenever the spread is non-finite or below
    :data:`_STD_FLOOR` — the all-censored case a fault-heavy session can
    produce.
    """
    std = float(np.asarray(y).std())
    if not np.isfinite(std) or std < _STD_FLOOR:
        return 1.0
    return std


class _DegenerateObservations(Exception):
    """Observation window carries no signal for fitting a surrogate."""


@dataclass(frozen=True)
class BOIterationRecord:
    """Diagnostics for one BO iteration (used by Figures 8/9)."""

    iteration: int
    chosen_acquisition: str
    probabilities: np.ndarray
    point: np.ndarray
    objective: float


class BOEngine:
    """GP + GP-Hedge minimization loop.

    Iterations where no usable surrogate exists — the covariance cannot be
    factorized even after jitter escalation, or every observation is
    censored at a single cap (zero spread) — degrade to a space-filling
    LHS proposal instead of raising; ``fallbacks`` counts them (see
    docs/ROBUSTNESS.md).

    Parameters
    ----------
    kernel:
        GP covariance template; defaults to Matérn 5/2 + white noise.
    hedge:
        Acquisition portfolio; defaults to PI/EI/LCB with paper knobs.
    n_candidates:
        LHS candidates swept per acquisition optimization.
    hyperopt_every:
        Re-optimize GP hyperparameters every k-th new observation (the
        Cholesky refit happens every iteration regardless).
    refine:
        Run L-BFGS-B from the best candidate (set False for speed in
        large ablation sweeps).
    early_stop_patience:
        Stop when the incumbent has not improved for this many
        iterations (None = always spend the full budget).
    incremental:
        Between hyperparameter re-optimizations, extend the GP with a
        rank-1 Cholesky update per new observation instead of
        refactorizing the full covariance (see
        :meth:`GaussianProcessRegressor.update`).  Mathematically exact
        but subject to ~1e-7 floating-point divergence from a
        from-scratch factorization, which L-BFGS-B refinement can
        amplify into different nominated points.  Off by default so BO
        decisions are bit-reproducible across versions; enable when raw
        iteration throughput matters more than exact replay.
    """

    def __init__(self, *, kernel: Kernel | None = None,
                 hedge: GPHedge | None = None, n_candidates: int = 512,
                 hyperopt_every: int = 5, refine: bool = True,
                 early_stop_patience: int | None = None,
                 incremental: bool = False,
                 rng: np.random.Generator | int | None = None):
        if n_candidates < 8:
            raise ValueError("n_candidates must be >= 8")
        if hyperopt_every < 1:
            raise ValueError("hyperopt_every must be >= 1")
        self._kernel_template = kernel or default_bo_kernel()
        self._theta0 = self._kernel_template.theta.copy()
        self._rng = as_generator(rng)
        self.hedge = hedge or GPHedge(rng=self._rng)
        self.n_candidates = n_candidates
        self.hyperopt_every = hyperopt_every
        self.refine = refine
        self.early_stop_patience = early_stop_patience
        self.incremental = incremental
        self.records: list[BOIterationRecord] = []
        #: iterations that fell back to an LHS proposal because the GP
        #: could not be fit or the observation window was degenerate.
        self.fallbacks: int = 0
        self._theta: np.ndarray | None = None
        self._gp: GaussianProcessRegressor | None = None
        self.last_gp: GaussianProcessRegressor | None = None

    # -- main loop -----------------------------------------------------------------
    def minimize(self, evaluate: Callable[[np.ndarray, float | None], Evaluation],
                 space: ConfigSpace, initial: Sequence[Evaluation],
                 budget: int, guard: MedianGuard | None = None,
                 ) -> list[Evaluation]:
        """Run the BO loop; returns the evaluations it performed.

        Parameters
        ----------
        evaluate:
            ``(unit_vector, kill_threshold_or_None) -> Evaluation``.
        space:
            The (reduced) tuning space; vectors are snapped onto native
            value grid-cells before evaluation so the surrogate's inputs
            match what actually ran.
        initial:
            Prior observations (the memoized-sampling training set);
            **not** re-evaluated and not counted against *budget*.
        budget:
            Number of new expensive evaluations to perform.
        guard:
            Median-multiple kill-threshold tracker; initial observations
            are fed to it first.
        """
        if budget < 0:
            raise ValueError("budget must be >= 0")
        evals: list[Evaluation] = []
        X = [np.asarray(e.vector, dtype=float) for e in initial]
        y = [float(e.objective) for e in initial]
        if guard is not None:
            for e in initial:
                guard.observe(e.cost_s, e.ok)
        if not X:
            raise ValueError("BO requires at least one prior observation")

        since_improve = 0
        best_so_far = min(y)
        for it in range(budget):
            # Graceful degradation (docs/ROBUSTNESS.md): a GP that cannot
            # be factorized even after jitter escalation, or an
            # observation window with no spread (every evaluation censored
            # at one cap), yields no usable surrogate — propose a
            # space-filling LHS point for this iteration instead of
            # raising away the whole session.
            choice = None
            try:
                y_arr = np.asarray(y)
                if float(np.ptp(y_arr)) < _STD_FLOOR:
                    raise _DegenerateObservations
                gp = self._fit_gp(np.vstack(X), y_arr, len(evals))
                nominees = self._nominate(gp, y_arr, space)
                choice = self.hedge.choose(nominees)
                u = space.snap(choice.nominees[choice.chosen_index])
            except (np.linalg.LinAlgError, _DegenerateObservations):
                self.fallbacks += 1
                u = space.snap(
                    latin_hypercube(1, space.dim, self._rng)[0])

            threshold = guard.threshold_s() if guard is not None else None
            ev = evaluate(u, threshold)
            evals.append(ev)
            X.append(np.asarray(ev.vector, dtype=float))
            y.append(float(ev.objective))
            if guard is not None:
                guard.observe(ev.cost_s, ev.ok)

            if choice is not None:
                # Refit (cheap) and update Hedge gains with the posterior
                # mean at every nominee, standardized and negated for
                # minimization.  Skipped on fallback iterations — there
                # were no nominees to score.
                try:
                    gp2 = self._fit_gp(np.vstack(X), np.asarray(y), None)
                    mu = gp2.predict(choice.nominees)
                    y_arr = np.asarray(y)
                    std = _safe_std(y_arr)
                    self.hedge.update(-(mu - y_arr.mean()) / std)
                except np.linalg.LinAlgError:
                    self.fallbacks += 1

            self.records.append(BOIterationRecord(
                iteration=it,
                chosen_acquisition=choice.chosen_name if choice is not None
                else "fallback/lhs",
                probabilities=choice.probabilities if choice is not None
                else np.array([]),
                point=u,
                objective=ev.objective))

            if ev.objective < best_so_far - 1e-9:
                best_so_far = ev.objective
                since_improve = 0
            else:
                since_improve += 1
                if (self.early_stop_patience is not None
                        and since_improve >= self.early_stop_patience):
                    break
        return evals

    # -- internals ------------------------------------------------------------------
    def _fit_gp(self, X: np.ndarray, y: np.ndarray,
                n_new: int | None) -> GaussianProcessRegressor:
        """Fit the surrogate; full hyperparameter optimization only on
        schedule (n_new is None for the cheap refit after an evaluation).

        One :class:`GaussianProcessRegressor` instance is reused across
        the whole loop — the kernel template is deep-copied once at
        construction rather than every iteration.  Off-schedule refits go
        through the GP's warm :meth:`~GaussianProcessRegressor.update`
        path when ``incremental`` is on.
        """
        full = n_new is not None and (self._theta is None
                                      or n_new % self.hyperopt_every == 0)
        if self._gp is None:
            self._gp = GaussianProcessRegressor(
                kernel=self._kernel_template, normalize_y=True,
                optimize=full, n_restarts=2, rng=self._rng)
        gp = self._gp
        gp.optimize = full
        if full:
            # Start the likelihood optimization from the template's
            # hyperparameters, exactly as a freshly copied kernel would.
            gp.kernel.theta = self._theta0
            gp.fit(X, y)
            self._theta = gp.kernel.theta
        else:
            if self._theta is not None:
                gp.kernel.theta = self._theta
            if self.incremental:
                gp.update(X, y)
            else:
                gp.fit(X, y)
        self.last_gp = gp
        return gp

    def _standardized(self, gp: GaussianProcessRegressor, y: np.ndarray,
                      U: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        """(mu, sigma, f_best) on the standardized objective scale."""
        mu, sigma = gp.predict(U, return_std=True)
        mean = float(y.mean())
        std = _safe_std(y)
        # Censored objectives included: failures repel the search.
        f_best = (float(y.min()) - mean) / std
        return (mu - mean) / std, sigma / std, f_best

    def _nominate(self, gp: GaussianProcessRegressor, y: np.ndarray,
                  space: ConfigSpace) -> np.ndarray:
        """One proposed point per portfolio acquisition function."""
        dim = space.dim
        cands = latin_hypercube(self.n_candidates, dim, self._rng)
        # Exploitation candidates: jitter around the best observed points.
        X_obs = gp.X_train_
        order = np.argsort(y)[: max(3, dim)]
        local = X_obs[order] + self._rng.normal(0.0, 0.05,
                                                size=(len(order), dim))
        U = np.clip(np.vstack([cands, local]), 0.0, 1.0)
        mu, sigma, f_best = self._standardized(gp, y, U)

        mean = float(y.mean())
        std = _safe_std(y)
        nominees = np.empty((len(self.hedge.functions), dim))
        for i, acq in enumerate(self.hedge.functions):
            util = acq(mu, sigma, f_best)
            best_cand = int(np.argmax(util))
            start = U[best_cand]
            nominees[i] = self._refine(acq, gp, start, f_best, mean, std,
                                       float(util[best_cand])) \
                if self.refine else start
        return nominees

    def _refine(self, acq, gp: GaussianProcessRegressor, start: np.ndarray,
                f_best: float, mean: float, std: float,
                start_util: float) -> np.ndarray:
        """L-BFGS-B polish of a candidate under one acquisition (§4).

        *start_util* is the start point's utility from the candidate
        sweep, so accepting/rejecting the polished point costs no extra
        GP prediction.
        """

        def neg_util(u: np.ndarray) -> float:
            m, s = gp.fast_predict(u[None, :])
            mu_n = (float(m[0]) - mean) / std
            sigma_n = float(s[0]) / std
            return -float(acq(np.array([mu_n]), np.array([sigma_n]), f_best)[0])

        res = minimize(neg_util, start, method="L-BFGS-B",
                       bounds=[(0.0, 1.0)] * len(start),
                       options={"maxiter": 25})
        return np.clip(res.x, 0.0, 1.0) if res.success or res.fun < -start_util \
            else start
