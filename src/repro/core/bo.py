"""The Bayesian-optimization engine (paper Algorithm 1).

Given prior observations, iterate: fit a GP surrogate, let every
acquisition function in the GP-Hedge portfolio nominate a point, evaluate
the probabilistically chosen nominee, augment the priors, and update the
portfolio's gains — until the evaluation budget is exhausted.

Acquisition optimization follows the implementation notes in §4: a
space-filling candidate sweep (vectorized GP prediction over an LHS design
plus exploitation candidates jittered around the incumbent) seeds an
L-BFGS-B refinement of the best candidate.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import minimize

from ..gp.gpr import GaussianProcessRegressor, default_bo_kernel
from ..gp.kernels import Kernel
from ..gp.lowrank import LowRankGaussianProcessRegressor
from ..obs import as_tracer, evaluation_data
from ..sampling.lhs import latin_hypercube
from ..space.space import ConfigSpace
from ..sparksim.result import RunStatus
from ..supervise import (Completed, DeadlineHit, EvaluationSupervisor,
                         SupervisePolicy)
from ..supervise.quarantine import vector_key
from ..tuners.base import Evaluation
from ..utils.parallel import WorkerPool, parallel_map
from ..utils.rng import as_generator
from .guard import MedianGuard
from .hedge import GPHedge
from .penalize import LocalPenalizer
from .warmstart import WarmStartData

__all__ = ["BOEngine", "BOIterationRecord"]


class _ContextGP:
    """Query-time view of a datasize-augmented (warm-started) surrogate.

    The inner GP is trained jointly on warm-start rows plus the current
    session's observations, each with a normalized-datasize context
    column appended (LOCAT-style).  This view presents the engine's
    d-dimensional picture: every query is augmented with the session's
    fixed context value, input gradients drop the context coordinate
    (it is constant within a session), and ``X_train_``/``y_train_``
    expose only the current-session rows — restoring the index alignment
    with the engine's observation window that the nomination and
    penalization code relies on.
    """

    def __init__(self, inner, n_warm: int, size: float):
        self._inner = inner
        self._n_warm = int(n_warm)
        self._size = float(size)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        col = np.full((X.shape[0], 1), self._size)
        return np.hstack([X, col])

    def predict(self, X: np.ndarray, return_std: bool = False):
        return self._inner.predict(self._augment(X), return_std)

    def fast_predict(self, X: np.ndarray):
        return self._inner.fast_predict(self._augment(X))

    def predict_with_gradient(self, x: np.ndarray):
        xc = np.append(np.asarray(x, dtype=float), self._size)
        mu, sigma, dmu, dsigma = self._inner.predict_with_gradient(xc)
        return mu, sigma, dmu[:-1], dsigma[:-1]

    @property
    def X_train_(self) -> np.ndarray:
        return self._inner.X_train_[self._n_warm:, :-1]

    @property
    def y_train_(self) -> np.ndarray:
        return self._inner.y_train_[self._n_warm:]

    @property
    def kernel(self):
        return self._inner.kernel


def _spawn_capable(evaluate) -> bool:
    """Can *evaluate* actually produce concurrent views?

    Capabilities are looked up on the objective's *class* (delegating
    wrappers forward unknown attributes, and borrowing the inner
    objective's views would skip their bookkeeping).  Wrappers that do
    implement ``spawn_view`` additionally expose ``spawn_view_capable``
    so a spawnable wrapper around a non-spawnable inner objective still
    degrades audibly instead of blowing up at dispatch time.
    """
    if getattr(type(evaluate), "spawn_view", None) is None:
        return False
    return bool(getattr(evaluate, "spawn_view_capable", True))


#: Standardization floor: observation windows whose spread is below this
#: (all evaluations censored at one cap, or a single repeated value) carry
#: no ranking signal; dividing by their std would overflow or go NaN.
_STD_FLOOR = 1e-12


def _safe_std(y: np.ndarray) -> float:
    """Standard deviation with an epsilon floor for degenerate windows.

    Returns 1.0 (standardized residuals become plain residuals, which are
    ~0 for a constant window) whenever the spread is non-finite or below
    :data:`_STD_FLOOR` — the all-censored case a fault-heavy session can
    produce.
    """
    std = float(np.asarray(y).std())
    if not np.isfinite(std) or std < _STD_FLOOR:
        return 1.0
    return std


class _DegenerateObservations(Exception):
    """Observation window carries no signal for fitting a surrogate."""


@dataclass(frozen=True)
class BOIterationRecord:
    """Diagnostics for one BO iteration (used by Figures 8/9)."""

    iteration: int
    chosen_acquisition: str
    probabilities: np.ndarray
    point: np.ndarray
    objective: float


class BOEngine:
    """GP + GP-Hedge minimization loop.

    Iterations where no usable surrogate exists — the covariance cannot be
    factorized even after jitter escalation, or every observation is
    censored at a single cap (zero spread) — degrade to a space-filling
    LHS proposal instead of raising; ``fallbacks`` counts them (see
    docs/ROBUSTNESS.md).

    Parameters
    ----------
    kernel:
        GP covariance template; defaults to Matérn 5/2 + white noise.
    hedge:
        Acquisition portfolio; defaults to PI/EI/LCB with paper knobs.
    n_candidates:
        LHS candidates swept per acquisition optimization.
    hyperopt_every:
        Re-optimize GP hyperparameters every k-th new observation (the
        Cholesky refit happens every iteration regardless).
    refine:
        Run L-BFGS-B from the best candidate (set False for speed in
        large ablation sweeps).
    early_stop_patience:
        Stop when the incumbent has not improved for this many
        iterations (None = always spend the full budget).
    incremental:
        Between hyperparameter re-optimizations, extend the GP with a
        rank-1 Cholesky update per new observation instead of
        refactorizing the full covariance (see
        :meth:`GaussianProcessRegressor.update`).  Mathematically exact
        but subject to ~1e-7 floating-point divergence from a
        from-scratch factorization, which L-BFGS-B refinement can
        amplify into different nominated points.  Off by default so BO
        decisions are bit-reproducible across versions; enable when raw
        iteration throughput matters more than exact replay.
    gradients:
        Power both inner optimizers with exact analytic gradients: the
        GP hyperparameter fit uses the trace-identity likelihood
        gradient (:class:`GaussianProcessRegressor`
        ``analytic_gradients``), and acquisition refinement passes
        closed-form utility gradients to L-BFGS-B from
        ``refine_starts`` sweep starts instead of a single
        finite-difference polish.  Off by default for the same
        reproducibility reason as ``incremental``: the exact optimizers
        take different (usually better) steps, so nominated points can
        differ from the finite-difference path.
    batch_size:
        Evaluate q points per BO round instead of one.  Points after the
        first are nominated against constant-liar fantasies (pending
        points fixed at the incumbent objective, the "CL-min" lie) so a
        round proposes q *distinct* configurations, then all q are
        evaluated concurrently through ``repro.utils.parallel`` when the
        objective supports ``spawn_view()`` (guard thresholds, journal
        entries, fault accounting and Hedge gains are still charged per
        point).  ``batch_size=1`` (the default) is the paper's serial
        Algorithm 1, decision-for-decision.
    async_workers:
        Fully asynchronous mode: keep up to k evaluations in flight on a
        :class:`repro.utils.parallel.WorkerPool`, fold each completed
        evaluation into the GP immediately, and draw the replacement
        proposal with busy-point penalization over the in-flight set
        (:class:`repro.core.penalize.LocalPenalizer`) instead of
        constant-liar fantasies — no worker ever waits on a round
        barrier.  ``0`` (the default) keeps the synchronous engine;
        ``async_workers=1`` executes exactly the serial loop's decision
        sequence (no pending points, objective called directly), which
        tests pin bit-for-bit.  ``k > 1`` requires the objective to
        expose class-level ``spawn_view()``; otherwise the engine warns,
        counts a ``batch.serial_fallback``, and degrades to one worker.
        Mutually exclusive with ``batch_size > 1``.  See
        docs/PERFORMANCE.md for when to prefer async over constant-liar
        batching.
    refine_starts:
        Sweep candidates polished per acquisition when ``gradients`` is
        on (the gradient refinement is cheap enough to multi-start).
    gp_max_exact:
        Training-set size above which the surrogate switches from the
        exact GP (O(n³) fit) to the low-rank
        :class:`~repro.gp.LowRankGaussianProcessRegressor` (O(n·m²) fit,
        O(m²) per prediction).  The default is far above anything a
        cold session reaches, so decision sequences stay bit-identical
        to prior versions unless warm-start priors (or a huge budget)
        push the observation count past it.  A ``gp.mode`` event is
        emitted whenever the mode changes.
    gp_inducing:
        Inducing-point count m for the low-rank path (see
        docs/PERFORMANCE.md, "Scaling the surrogate").
    gp_chunk:
        Acquisition sweeps stream through the surrogate in blocks of at
        most this many candidates, bounding sweep memory at
        O(chunk · n_train) instead of O(n_cand · n_train).  The default
        exceeds the default sweep size, so the default path stays a
        single block (bit-identical; BLAS blocking makes chunked matmul
        differ in final bits).  Multi-block sweeps emit ``gp.chunk``
        events and bump the ``gp.chunk.blocks`` counter.
    warm_start:
        Optional :class:`~repro.core.warmstart.WarmStartData`: prior
        observations folded into the surrogate before iteration 0.  The
        GP then trains jointly on (d+1)-dimensional rows — the extra
        column is the normalized datasize context — while nomination,
        penalization and refinement keep operating in the session's d
        dimensions through a query-time view.  Warm rows are priors
        only: they never feed the guard, the Hedge gains, early
        stopping, or the budget.
    n_jobs:
        Workers for GP multi-start fits and batched evaluation (``None``
        defers to ``ROBOTUNE_JOBS``).  Results are identical for any
        worker count.
    tracer:
        Optional :class:`repro.obs.Tracer`.  The loop emits
        ``bo.iteration``/``eval.result``/``guard.kill`` events, the GP
        emits ``gp.fit`` and the Hedge portfolio (whose ``tracer``
        attribute is bound here when tracing is on) emits
        ``hedge.probs``/``acq.winner``.  The default no-op tracer leaves
        decisions bit-identical.
    """

    def __init__(self, *, kernel: Kernel | None = None,
                 hedge: GPHedge | None = None, n_candidates: int = 512,
                 hyperopt_every: int = 5, refine: bool = True,
                 early_stop_patience: int | None = None,
                 incremental: bool = False, gradients: bool = False,
                 batch_size: int = 1, async_workers: int = 0,
                 supervise: SupervisePolicy | None = None,
                 refine_starts: int = 4,
                 gp_max_exact: int = 512,
                 gp_inducing: int = 96,
                 gp_chunk: int = 1024,
                 warm_start: WarmStartData | None = None,
                 n_jobs: int | None = None,
                 rng: np.random.Generator | int | None = None,
                 tracer=None):
        if n_candidates < 8:
            raise ValueError("n_candidates must be >= 8")
        if hyperopt_every < 1:
            raise ValueError("hyperopt_every must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if async_workers < 0:
            raise ValueError("async_workers must be >= 0")
        if async_workers > 0 and batch_size > 1:
            raise ValueError("async_workers and batch_size > 1 are mutually "
                             "exclusive: async replaces constant-liar rounds")
        if supervise is not None and not isinstance(supervise,
                                                    SupervisePolicy):
            raise TypeError("supervise must be a SupervisePolicy or None")
        if supervise is not None and async_workers < 1:
            raise ValueError("supervise requires async_workers >= 1 "
                             "(supervision wraps the async dispatch path)")
        if refine_starts < 1:
            raise ValueError("refine_starts must be >= 1")
        if gp_max_exact < 2:
            raise ValueError("gp_max_exact must be >= 2")
        if gp_inducing < 1:
            raise ValueError("gp_inducing must be >= 1")
        if gp_chunk < 8:
            raise ValueError("gp_chunk must be >= 8")
        if warm_start is not None and not isinstance(warm_start,
                                                     WarmStartData):
            raise TypeError("warm_start must be WarmStartData or None")
        self._kernel_template = kernel or default_bo_kernel()
        self._theta0 = self._kernel_template.theta.copy()
        self._rng = as_generator(rng)
        self._tracer = as_tracer(tracer)
        self.hedge = hedge or GPHedge(rng=self._rng)
        if tracer is not None:
            self.hedge.tracer = self._tracer
        self.n_candidates = n_candidates
        self.hyperopt_every = hyperopt_every
        self.refine = refine
        self.early_stop_patience = early_stop_patience
        self.incremental = incremental
        self.gradients = gradients
        self.batch_size = batch_size
        self.async_workers = async_workers
        self.supervise = supervise
        #: unit-cube vectors quarantined by the supervisor this run
        #: (poison configurations that repeatedly hung or killed workers).
        self.quarantined: list[np.ndarray] = []
        self.refine_starts = refine_starts
        self._warned_serial = False
        self.n_jobs = n_jobs
        self.records: list[BOIterationRecord] = []
        #: iterations that fell back to an LHS proposal because the GP
        #: could not be fit or the observation window was degenerate.
        self.fallbacks: int = 0
        self.gp_max_exact = gp_max_exact
        self.gp_inducing = gp_inducing
        self.gp_chunk = gp_chunk
        self.warm_start = warm_start
        self._theta: np.ndarray | None = None
        self._gp: GaussianProcessRegressor | None = None
        self._gp_lowrank: LowRankGaussianProcessRegressor | None = None
        self._gp_mode: str | None = None
        self.last_gp: GaussianProcessRegressor | None = None

    # -- main loop -----------------------------------------------------------------
    def minimize(self, evaluate: Callable[[np.ndarray, float | None], Evaluation],
                 space: ConfigSpace, initial: Sequence[Evaluation],
                 budget: int, guard: MedianGuard | None = None,
                 ) -> list[Evaluation]:
        """Run the BO loop; returns the evaluations it performed.

        Parameters
        ----------
        evaluate:
            ``(unit_vector, kill_threshold_or_None) -> Evaluation``.
        space:
            The (reduced) tuning space; vectors are snapped onto native
            value grid-cells before evaluation so the surrogate's inputs
            match what actually ran.
        initial:
            Prior observations (the memoized-sampling training set);
            **not** re-evaluated and not counted against *budget*.
        budget:
            Number of new expensive evaluations to perform.
        guard:
            Median-multiple kill-threshold tracker; initial observations
            are fed to it first.
        """
        if budget < 0:
            raise ValueError("budget must be >= 0")
        if self.supervise is not None:
            return self._minimize_supervised(evaluate, space, initial,
                                             budget, guard)
        if self.async_workers > 0:
            return self._minimize_async(evaluate, space, initial, budget,
                                        guard)
        if self.batch_size > 1:
            return self._minimize_batched(evaluate, space, initial, budget,
                                          guard)
        evals: list[Evaluation] = []
        X = [np.asarray(e.vector, dtype=float) for e in initial]
        y = [float(e.objective) for e in initial]
        if guard is not None:
            for e in initial:
                guard.observe(e.cost_s, e.ok)
        if not X:
            raise ValueError("BO requires at least one prior observation")

        since_improve = 0
        best_so_far = min(y)
        for it in range(budget):
            # Graceful degradation (docs/ROBUSTNESS.md): a GP that cannot
            # be factorized even after jitter escalation, or an
            # observation window with no spread (every evaluation censored
            # at one cap), yields no usable surrogate — propose a
            # space-filling LHS point for this iteration instead of
            # raising away the whole session.
            choice = None
            try:
                y_arr = np.asarray(y)
                if float(np.ptp(y_arr)) < _STD_FLOOR:
                    raise _DegenerateObservations
                gp = self._fit_gp(np.vstack(X), y_arr, len(evals))
                nominees = self._nominate(gp, y_arr, space)
                choice = self.hedge.choose(nominees)
                u = space.snap(choice.nominees[choice.chosen_index])
            except (np.linalg.LinAlgError, _DegenerateObservations):
                self.fallbacks += 1
                u = space.snap(
                    latin_hypercube(1, space.dim, self._rng)[0])

            threshold = guard.threshold_s() if guard is not None else None
            ev = evaluate(u, threshold)
            evals.append(ev)
            X.append(np.asarray(ev.vector, dtype=float))
            y.append(float(ev.objective))
            if guard is not None:
                guard.observe(ev.cost_s, ev.ok)
            self._tracer.emit("eval.result", evaluation_data(it, ev))
            self._tracer.count("evals")
            if ev.truncated and threshold is not None:
                self._tracer.emit("guard.kill",
                                  {"i": it, "threshold": float(threshold),
                                   "cost_s": float(ev.cost_s)})

            if choice is not None:
                # Refit (cheap) and update Hedge gains with the posterior
                # mean at every nominee, standardized and negated for
                # minimization.  Skipped on fallback iterations — there
                # were no nominees to score.
                try:
                    gp2 = self._fit_gp(np.vstack(X), np.asarray(y), None)
                    mu = gp2.predict(choice.nominees)
                    y_arr = np.asarray(y)
                    std = _safe_std(y_arr)
                    self.hedge.update(-(mu - y_arr.mean()) / std)
                except np.linalg.LinAlgError:
                    self.fallbacks += 1

            self.records.append(BOIterationRecord(
                iteration=it,
                chosen_acquisition=choice.chosen_name if choice is not None
                else "fallback/lhs",
                probabilities=choice.probabilities if choice is not None
                else np.array([]),
                point=u,
                objective=ev.objective))
            self._tracer.emit("bo.iteration", {
                "iteration": it,
                "acq": self.records[-1].chosen_acquisition,
                "objective": float(ev.objective),
                "fallback": choice is None})

            if ev.objective < best_so_far - 1e-9:
                best_so_far = ev.objective
                since_improve = 0
            else:
                since_improve += 1
                if (self.early_stop_patience is not None
                        and since_improve >= self.early_stop_patience):
                    break
        return evals

    # -- asynchronous mode ---------------------------------------------------------
    def _minimize_async(self, evaluate, space: ConfigSpace,
                        initial: Sequence[Evaluation], budget: int,
                        guard: MedianGuard | None) -> list[Evaluation]:
        """Barrier-free variant of :meth:`minimize` (``async_workers=k``).

        Up to k evaluations are in flight at once; the moment one
        completes it is folded into the GP (observations, guard, Hedge
        gains, records — the same per-point bookkeeping as the serial
        loop, in completion order) and a replacement proposal is drawn
        with the still-pending points locally penalized out of the
        acquisition surface.  At ``k=1`` there is never a pending point
        and the objective is called directly, so the decision sequence is
        bit-identical to the serial loop (pinned by the head-parity
        tests).  At ``k>1`` results depend on completion order — the
        price of never idling a worker.

        Observability: ``async.dispatch``/``async.fold`` events carry the
        in-flight depth, the ``async.wait`` timer accumulates queue wait
        (blocked on the pool), ``async.propose`` the proposal time during
        which free workers idle, and the ``async.idle_worker_slots``
        counter the number of worker slots empty at each dispatch.
        """
        evals: list[Evaluation] = []
        X = [np.asarray(e.vector, dtype=float) for e in initial]
        y = [float(e.objective) for e in initial]
        if guard is not None:
            for e in initial:
                guard.observe(e.cost_s, e.ok)
        if not X:
            raise ValueError("BO requires at least one prior observation")

        k = self.async_workers
        if k > 1 and not _spawn_capable(evaluate):
            self._warn_serial_fallback(evaluate, k)
            k = 1
        # One worker needs no thread: the serial pool backend runs the
        # submitted task inside next_completed(), on this thread, which
        # also keeps the k=1 parity contract trivially exact.
        backend = "thread" if k > 1 else "serial"

        since_improve = 0
        best_so_far = min(y)
        pending: dict[int, np.ndarray] = {}
        choices: dict[int, object] = {}
        thresholds: dict[int, float | None] = {}
        issued = 0
        folded = 0
        stop = False
        with WorkerPool(k, backend=backend, tracer=self._tracer) as pool:
            while folded < budget:
                while not stop and issued < budget and len(pending) < k:
                    self._tracer.count("async.idle_worker_slots",
                                       k - len(pending))
                    with self._tracer.timer("async.propose"):
                        u, choice = self._propose(space, X, y, len(evals),
                                                  list(pending.values()))
                    threshold = guard.threshold_s() if guard is not None \
                        else None
                    # Views are spawned serially at dispatch time (the
                    # spawn_view contract); one worker evaluates directly.
                    runner = evaluate.spawn_view() if k > 1 else evaluate
                    idx = issued
                    pending[idx] = u
                    choices[idx] = choice
                    thresholds[idx] = threshold
                    pool.submit(lambda r=runner, v=u, t=threshold: r(v, t),
                                tag=idx)
                    issued += 1
                    self._tracer.emit("async.dispatch",
                                      {"i": idx, "in_flight": len(pending)})
                if not pending:
                    break
                with self._tracer.timer("async.wait"):
                    idx, ev = pool.next_completed()
                u = pending.pop(idx)
                choice = choices.pop(idx)
                threshold = thresholds.pop(idx)
                self._fold_in(ev, u, choice, threshold, folded, evals, X, y,
                              guard)
                self._tracer.emit("async.fold",
                                  {"i": idx, "in_flight": len(pending)})
                folded += 1
                if ev.objective < best_so_far - 1e-9:
                    best_so_far = ev.objective
                    since_improve = 0
                else:
                    since_improve += 1
                    if (self.early_stop_patience is not None
                            and since_improve >= self.early_stop_patience):
                        # Stop issuing; in-flight evaluations still fold
                        # (their cost is already paid).
                        stop = True
        return evals

    # -- supervised asynchronous mode ------------------------------------------------
    def _minimize_supervised(self, evaluate, space: ConfigSpace,
                             initial: Sequence[Evaluation], budget: int,
                             guard: MedianGuard | None) -> list[Evaluation]:
        """:meth:`_minimize_async` under an :class:`EvaluationSupervisor`.

        Every dispatch is accountable: an evaluation that blows its
        deadline, or whose worker dies with redispatch exhausted, is
        charged to the search as a censored-at-cap outcome (status
        TIMEOUT/RUNTIME_ERROR, ``transient=True``,
        ``fault="deadline"``/``"worker_death"``) and folded into the GP
        like any other observation, so the loop always completes its
        budget.  Configurations quarantined by the supervisor (repeat
        offenders) are excluded from re-proposal for the rest of the run
        and collected in :attr:`quarantined`.  The pool always uses the
        thread backend — deadline enforcement requires the driver thread
        to stay free to abandon a wedged task — which is why supervised
        runs are not bit-reproducible (docs/ROBUSTNESS.md).
        """
        evals: list[Evaluation] = []
        X = [np.asarray(e.vector, dtype=float) for e in initial]
        y = [float(e.objective) for e in initial]
        if guard is not None:
            for e in initial:
                guard.observe(e.cost_s, e.ok)
        if not X:
            raise ValueError("BO requires at least one prior observation")

        policy = self.supervise
        k = self.async_workers
        capable = _spawn_capable(evaluate)
        if not capable:
            if k > 1:
                self._warn_serial_fallback(evaluate, k)
                k = 1
            if policy.speculate:
                # A twin would run the one shared objective concurrently
                # with its original; without views that is unsafe.
                policy = replace(policy, speculate=False)
        record_censored = getattr(evaluate, "record_censored", None)

        since_improve = 0
        best_so_far = min(y)
        pending: dict[int, np.ndarray] = {}
        choices: dict[int, object] = {}
        thresholds: dict[int, float | None] = {}
        blocked: set[bytes] = set()
        issued = 0
        folded = 0
        stop = False
        with WorkerPool(k, backend="thread", tracer=self._tracer) as pool:
            supervisor = EvaluationSupervisor(pool, policy,
                                              tracer=self._tracer)
            while folded < budget:
                while (not stop and issued < budget
                       and supervisor.in_flight < k
                       and supervisor.free_slots > 0):
                    self._tracer.count("async.idle_worker_slots",
                                       k - supervisor.in_flight)
                    with self._tracer.timer("async.propose"):
                        u, choice = self._propose(space, X, y, len(evals),
                                                  list(pending.values()))
                        # Quarantined configs never run again: redraw
                        # space-filling replacements (the bound only
                        # matters in degenerate toy spaces where LHS can
                        # keep landing on a blocked grid cell).
                        for _ in range(32):
                            if vector_key(u) not in blocked:
                                break
                            choice = None
                            u = space.snap(
                                latin_hypercube(1, space.dim, self._rng)[0])
                    threshold = guard.threshold_s() if guard is not None \
                        else None
                    idx = issued
                    pending[idx] = u
                    choices[idx] = choice
                    thresholds[idx] = threshold

                    def factory(v=u, t=threshold):
                        # Called by the supervisor once per physical
                        # dispatch, on this thread: a redispatch or
                        # speculative twin gets a fresh objective view.
                        runner = evaluate.spawn_view() if capable \
                            else evaluate
                        return lambda r=runner: r(v, t)

                    supervisor.submit(factory, tag=idx, key=vector_key(u))
                    issued += 1
                    self._tracer.emit("async.dispatch",
                                      {"i": idx,
                                       "in_flight": supervisor.in_flight})
                if supervisor.in_flight == 0:
                    break
                with self._tracer.timer("async.wait"):
                    outcome = supervisor.next_outcome()
                idx = outcome.tag
                u = pending.pop(idx)
                choice = choices.pop(idx)
                threshold = thresholds.pop(idx)
                if isinstance(outcome, Completed):
                    ev = outcome.result
                else:
                    ev = self._censor_outcome(evaluate, space, u, y, outcome)
                    if record_censored is not None:
                        record_censored(ev)
                    if outcome.quarantined:
                        blocked.add(vector_key(u))
                        self.quarantined.append(
                            np.asarray(u, dtype=float).copy())
                self._fold_in(ev, u, choice, threshold, folded, evals, X, y,
                              guard)
                self._tracer.emit("async.fold",
                                  {"i": idx,
                                   "in_flight": supervisor.in_flight})
                folded += 1
                if ev.objective < best_so_far - 1e-9:
                    best_so_far = ev.objective
                    since_improve = 0
                else:
                    since_improve += 1
                    if (self.early_stop_patience is not None
                            and since_improve >= self.early_stop_patience):
                        stop = True
        return evals

    def _censor_outcome(self, evaluate, space: ConfigSpace, u: np.ndarray,
                        y: list[float], outcome) -> Evaluation:
        """Synthesize the censored evaluation for a supervisor verdict.

        The run never returned, so the objective is censored "at least
        this bad": the objective's own censoring hook at the full cap
        when it has one, else the cap itself, else the worst observation
        so far (never ``inf`` — it would wreck GP standardization).  The
        cap is charged to search cost: that is what a real cluster spent
        before the watchdog gave up on the evaluation.
        """
        conf = space.decode(u)
        limit = getattr(evaluate, "time_limit_s", None)
        censor = getattr(evaluate, "censor_value", None)
        if censor is not None:
            objective = float(censor(conf, None))
        elif limit is not None:
            objective = float(limit)
        else:
            objective = float(max(y))
        cost = float(limit) if limit is not None else objective
        if isinstance(outcome, DeadlineHit):
            status, fault = RunStatus.TIMEOUT, "deadline"
        else:
            status, fault = RunStatus.RUNTIME_ERROR, "worker_death"
        return Evaluation(vector=np.asarray(u, dtype=float).copy(),
                          config=conf, objective=objective, cost_s=cost,
                          status=status, truncated=True, transient=True,
                          fault=fault)

    def _propose(self, space: ConfigSpace, X: list[np.ndarray],
                 y: list[float], n_evals: int,
                 pending: list[np.ndarray]):
        """One penalized proposal for the async loop: ``(point, choice)``.

        Mirrors the serial loop's proposal block operation-for-operation
        when *pending* is empty (same degenerate check, same fit
        schedule, same fallback path — the k=1 parity contract); with
        pending points a :class:`LocalPenalizer` multiplies their
        exclusion balls into every acquisition's candidate sweep.  A
        proposal colliding with an in-flight point is replaced by a
        space-filling LHS draw, as in the constant-liar rounds.
        """
        choice = None
        try:
            y_arr = np.asarray(y)
            if float(np.ptp(y_arr)) < _STD_FLOOR:
                raise _DegenerateObservations
            gp = self._fit_gp(np.vstack(X), y_arr, n_evals)
            penalizer = None
            if pending:
                mean = float(y_arr.mean())
                std = _safe_std(y_arr)
                f_best = (float(y_arr.min()) - mean) / std
                penalizer = LocalPenalizer(gp, np.vstack(pending), mean,
                                           std, f_best)
            nominees = self._nominate(gp, y_arr, space, penalizer=penalizer)
            choice = self.hedge.choose(nominees)
            u = space.snap(choice.nominees[choice.chosen_index])
        except (np.linalg.LinAlgError, _DegenerateObservations):
            self.fallbacks += 1
            u = space.snap(latin_hypercube(1, space.dim, self._rng)[0])
        if any(np.array_equal(u, p) for p in pending):
            u = space.snap(latin_hypercube(1, space.dim, self._rng)[0])
        return u, choice

    def _fold_in(self, ev: Evaluation, u: np.ndarray, choice,
                 threshold: float | None, it: int,
                 evals: list[Evaluation], X: list[np.ndarray],
                 y: list[float], guard: MedianGuard | None) -> None:
        """Fold one completed evaluation into the engine's shared state.

        The single place async completions mutate observations, guard,
        Hedge gains and records (rule RPP004: worker callables return
        results; they never touch engine state).  The bookkeeping order
        matches the serial loop exactly.
        """
        evals.append(ev)
        X.append(np.asarray(ev.vector, dtype=float))
        y.append(float(ev.objective))
        if guard is not None:
            guard.observe(ev.cost_s, ev.ok)
        self._tracer.emit("eval.result", evaluation_data(it, ev))
        self._tracer.count("evals")
        if ev.truncated and threshold is not None:
            self._tracer.emit("guard.kill",
                              {"i": it, "threshold": float(threshold),
                               "cost_s": float(ev.cost_s)})
        if choice is not None:
            try:
                gp2 = self._fit_gp(np.vstack(X), np.asarray(y), None)
                mu = gp2.predict(choice.nominees)
                y_arr = np.asarray(y)
                std = _safe_std(y_arr)
                self.hedge.update(-(mu - y_arr.mean()) / std)
            except np.linalg.LinAlgError:
                self.fallbacks += 1
        self.records.append(BOIterationRecord(
            iteration=it,
            chosen_acquisition=choice.chosen_name if choice is not None
            else "fallback/lhs",
            probabilities=choice.probabilities if choice is not None
            else np.array([]),
            point=u,
            objective=ev.objective))
        self._tracer.emit("bo.iteration", {
            "iteration": it,
            "acq": self.records[-1].chosen_acquisition,
            "objective": float(ev.objective),
            "fallback": choice is None})

    def _warn_serial_fallback(self, evaluate, n_points: int) -> None:
        """Record that concurrent evaluation degraded to serial.

        Wrapper objectives (journal, fault injector) intentionally hide
        the inner ``spawn_view`` — borrowing it would skip their
        per-evaluation bookkeeping — but the resulting serialization used
        to be silent.  Now it emits a ``batch.serial_fallback`` event,
        bumps the counter of the same name, and warns once per engine.
        """
        self._tracer.emit("batch.serial_fallback",
                          {"objective": type(evaluate).__name__,
                           "points": int(n_points)})
        self._tracer.count("batch.serial_fallback")
        if not self._warned_serial:
            self._warned_serial = True
            warnings.warn(
                f"objective {type(evaluate).__name__} has no class-level "
                "spawn_view(); concurrent evaluation degraded to serial. "
                "Wrappers must implement spawn_view themselves to keep "
                "per-evaluation bookkeeping under concurrency "
                "(docs/PERFORMANCE.md).", RuntimeWarning, stacklevel=3)

    # -- batched mode --------------------------------------------------------------
    def _minimize_batched(self, evaluate, space: ConfigSpace,
                          initial: Sequence[Evaluation], budget: int,
                          guard: MedianGuard | None) -> list[Evaluation]:
        """q-point-per-round variant of :meth:`minimize`.

        Each round nominates ``min(batch_size, remaining)`` distinct
        points via constant-liar fantasies, evaluates them concurrently
        (when the objective supports :meth:`spawn_view`), then performs
        the same per-point bookkeeping as the serial loop: guard
        observations, iteration records, Hedge gain updates and the
        early-stop counter are all charged per evaluation, in nomination
        order.
        """
        evals: list[Evaluation] = []
        X = [np.asarray(e.vector, dtype=float) for e in initial]
        y = [float(e.objective) for e in initial]
        if guard is not None:
            for e in initial:
                guard.observe(e.cost_s, e.ok)
        if not X:
            raise ValueError("BO requires at least one prior observation")

        since_improve = 0
        best_so_far = min(y)
        it = 0
        while it < budget:
            q = min(self.batch_size, budget - it)
            points, choices = self._nominate_batch(space, X, y, q, len(evals))
            # One kill threshold per round: all q points launch
            # concurrently, so they share the guard state available at
            # dispatch time (results still tighten it for the next round).
            threshold = guard.threshold_s() if guard is not None else None
            batch = self._evaluate_batch(evaluate, points, threshold)
            for j, ev in enumerate(batch):
                evals.append(ev)
                X.append(np.asarray(ev.vector, dtype=float))
                y.append(float(ev.objective))
                if guard is not None:
                    guard.observe(ev.cost_s, ev.ok)
                self._tracer.emit("eval.result", evaluation_data(it + j, ev))
                self._tracer.count("evals")
                if ev.truncated and threshold is not None:
                    self._tracer.emit("guard.kill",
                                      {"i": it + j,
                                       "threshold": float(threshold),
                                       "cost_s": float(ev.cost_s)})

            if any(c is not None for c in choices):
                # Refit once on the real (lie-free) observations and score
                # every round choice's nominees, exactly as the serial
                # loop scores its single choice.
                try:
                    gp2 = self._fit_gp(np.vstack(X), np.asarray(y), None)
                    y_arr = np.asarray(y)
                    mean = float(y_arr.mean())
                    std = _safe_std(y_arr)
                    for choice in choices:
                        if choice is None:
                            continue
                        mu = gp2.predict(choice.nominees)
                        self.hedge.update(-(mu - mean) / std)
                except np.linalg.LinAlgError:
                    self.fallbacks += 1

            stop = False
            for j, (u, ev, choice) in enumerate(zip(points, batch, choices)):
                self.records.append(BOIterationRecord(
                    iteration=it + j,
                    chosen_acquisition=choice.chosen_name
                    if choice is not None else "fallback/lhs",
                    probabilities=choice.probabilities
                    if choice is not None else np.array([]),
                    point=u,
                    objective=ev.objective))
                self._tracer.emit("bo.iteration", {
                    "iteration": it + j,
                    "acq": self.records[-1].chosen_acquisition,
                    "objective": float(ev.objective),
                    "fallback": choice is None})
                if ev.objective < best_so_far - 1e-9:
                    best_so_far = ev.objective
                    since_improve = 0
                else:
                    since_improve += 1
                    if (self.early_stop_patience is not None
                            and since_improve >= self.early_stop_patience):
                        stop = True
            it += q
            if stop:
                break
        return evals

    def _nominate_batch(self, space: ConfigSpace, X: list[np.ndarray],
                        y: list[float], q: int, n_evals: int):
        """Propose q distinct points for one round via constant liars.

        The first point comes from the regular surrogate; each subsequent
        nomination sees the pending points appended with the incumbent
        objective as their fantasy outcome ("CL-min" — the optimistic lie
        deflates the posterior variance around pending points, steering
        later nominations elsewhere).  A nominee that still collides with
        a pending point is replaced by a space-filling LHS draw so the
        round never burns budget re-evaluating one configuration.
        """
        points: list[np.ndarray] = []
        choices: list = []
        Xc = list(X)
        yc = list(y)
        lie = float(min(y))
        for j in range(q):
            choice = None
            try:
                if float(np.ptp(np.asarray(y))) < _STD_FLOOR:
                    raise _DegenerateObservations
                yc_arr = np.asarray(yc)
                # Only the round's first fit may trigger scheduled
                # hyperopt; fantasy refits reuse the current theta.
                gp = self._fit_gp(np.vstack(Xc), yc_arr,
                                  n_evals if j == 0 else None)
                nominees = self._nominate(gp, yc_arr, space)
                choice = self.hedge.choose(nominees)
                u = space.snap(choice.nominees[choice.chosen_index])
            except (np.linalg.LinAlgError, _DegenerateObservations):
                self.fallbacks += 1
                u = space.snap(latin_hypercube(1, space.dim, self._rng)[0])
            if any(np.array_equal(u, p) for p in points):
                u = space.snap(latin_hypercube(1, space.dim, self._rng)[0])
            points.append(u)
            choices.append(choice)
            if j + 1 < q:
                Xc.append(np.asarray(u, dtype=float))
                yc.append(lie)
        return points, choices

    def _evaluate_batch(self, evaluate, points: list[np.ndarray],
                        threshold: float | None) -> list[Evaluation]:
        """Evaluate a round's points, concurrently when safely possible.

        Objectives advertise concurrent evaluation by exposing
        ``spawn_view()`` (see :class:`repro.tuners.base.Objective`); each
        point then runs on its own view, with views spawned *serially*
        beforehand so their RNG streams — and therefore the results — are
        independent of worker count.  Objectives that additionally expose
        ``evaluate_batch`` (a class-level method contracted to return the
        same evaluations the spawned-view path would, bit-for-bit — see
        :meth:`repro.tuners.objective.WorkloadObjective.evaluate_batch`)
        take the vectorized fast path instead.  Capabilities are looked
        up on the objective's *class*: delegating wrappers (journal,
        fault injector) forward unknown attributes via ``__getattr__``,
        and borrowing the inner objective's views would silently skip
        their per-evaluation bookkeeping.  Anything with neither
        capability — wrappers included — evaluates serially, in
        nomination order, with a ``batch.serial_fallback`` event/counter
        and a once-per-engine RuntimeWarning so the degradation is never
        silent.
        """
        if len(points) > 1:
            if getattr(type(evaluate), "evaluate_batch", None) is not None:
                return evaluate.evaluate_batch(points, threshold)
            if _spawn_capable(evaluate):
                views = [evaluate.spawn_view() for _ in points]

                def _run(idx: int) -> Evaluation:
                    return views[idx](points[idx], threshold)

                return parallel_map(_run, list(range(len(points))),
                                    n_jobs=self.n_jobs, backend="thread",
                                    tracer=self._tracer)
            self._warn_serial_fallback(evaluate, len(points))
        return [evaluate(u, threshold) for u in points]

    # -- internals ------------------------------------------------------------------
    def _select_gp(self, n_train: int):
        """The cached surrogate instance for a training-set size.

        Exact below ``gp_max_exact`` observations, low-rank above; the
        first use of each mode (and every change) emits a ``gp.mode``
        event so scale-up is visible in traces.
        """
        mode = "exact" if n_train <= self.gp_max_exact else "lowrank"
        if mode != self._gp_mode:
            self._tracer.emit("gp.mode", {
                "mode": mode, "n": int(n_train),
                "threshold": int(self.gp_max_exact),
                "m": int(self.gp_inducing) if mode == "lowrank" else None})
            if self._gp_mode is not None:
                self._tracer.count("gp.mode.switch")
            self._gp_mode = mode
        if mode == "exact":
            if self._gp is None:
                self._gp = GaussianProcessRegressor(
                    kernel=self._kernel_template, normalize_y=True,
                    n_restarts=2,
                    analytic_gradients=self.gradients, n_jobs=self.n_jobs,
                    rng=self._rng, tracer=self._tracer)
            return self._gp
        if self._gp_lowrank is None:
            self._gp_lowrank = LowRankGaussianProcessRegressor(
                kernel=self._kernel_template, normalize_y=True,
                n_inducing=self.gp_inducing, n_restarts=2,
                analytic_gradients=self.gradients, n_jobs=self.n_jobs,
                rng=self._rng, tracer=self._tracer)
        return self._gp_lowrank

    def _fit_gp(self, X: np.ndarray, y: np.ndarray, n_new: int | None):
        """Fit the surrogate; full hyperparameter optimization only on
        schedule (n_new is None for the cheap refit after an evaluation).

        One regressor instance per mode is reused across the whole loop —
        the kernel template is deep-copied once at construction rather
        than every iteration.  Off-schedule refits go through the GP's
        warm :meth:`~GaussianProcessRegressor.update` path when
        ``incremental`` is on.  With warm-start priors, the fit happens
        jointly on datasize-augmented rows and the returned surrogate is
        a :class:`_ContextGP` view in the session's own dimensions.
        """
        ws = self.warm_start
        if ws is not None and ws.n > 0:
            X = np.vstack([
                np.hstack([ws.X, ws.sizes[:, None]]),
                np.hstack([X, np.full((X.shape[0], 1), ws.current_size)])])
            y = np.concatenate([ws.y, y])
        full = n_new is not None and (self._theta is None
                                      or n_new % self.hyperopt_every == 0)
        gp = self._select_gp(X.shape[0])
        gp.optimize = full
        if (not full and gp._fitted and self._theta is not None
                and np.array_equal(gp._theta_chol, self._theta)
                and gp._X.shape == X.shape and np.array_equal(gp._X, X)
                and np.array_equal(gp._y_raw, y)):
            # The post-evaluation cheap refit already factorized exactly
            # this data at exactly these hyperparameters; refitting would
            # reproduce the same Cholesky bit-for-bit, so skip it.
            pass
        elif full:
            # Start the likelihood optimization from the template's
            # hyperparameters, exactly as a freshly copied kernel would.
            gp.kernel.theta = self._theta0
            gp.fit(X, y)
            self._theta = gp.kernel.theta
        else:
            if self._theta is not None:
                gp.kernel.theta = self._theta
            if self.incremental:
                gp.update(X, y)
            else:
                gp.fit(X, y)
        self.last_gp = gp
        if ws is not None and ws.n > 0:
            return _ContextGP(gp, ws.n, ws.current_size)
        return gp

    def _predict_sweep(self, gp, U: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Stream a candidate sweep through the surrogate in fixed blocks.

        Peak memory for the cross-covariance is O(chunk · n_train)
        instead of O(n_cand · n_train) — the difference between fitting
        and not fitting in cache once warm-start priors push n_train
        into the thousands.  Sweeps at or below ``gp_chunk`` (the
        default configuration) take the single-block path, whose result
        is bit-identical to prior versions; multi-block sweeps emit a
        ``gp.chunk`` event and bump the ``gp.chunk.blocks`` counter.
        """
        n = U.shape[0]
        if n <= self.gp_chunk:
            return gp.predict(U, return_std=True)
        mu = np.empty(n)
        sigma = np.empty(n)
        blocks = 0
        for s in range(0, n, self.gp_chunk):
            e = min(s + self.gp_chunk, n)
            mu[s:e], sigma[s:e] = gp.predict(U[s:e], return_std=True)
            blocks += 1
        self._tracer.emit("gp.chunk", {"n": int(n),
                                       "chunk": int(self.gp_chunk),
                                       "blocks": int(blocks)})
        self._tracer.count("gp.chunk.blocks", blocks)
        return mu, sigma

    def _standardized(self, gp, y: np.ndarray,
                      U: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        """(mu, sigma, f_best) on the standardized objective scale."""
        mu, sigma = self._predict_sweep(gp, U)
        mean = float(y.mean())
        std = _safe_std(y)
        # Censored objectives included: failures repel the search.
        f_best = (float(y.min()) - mean) / std
        return (mu - mean) / std, sigma / std, f_best

    def _nominate(self, gp, y: np.ndarray,
                  space: ConfigSpace,
                  penalizer: LocalPenalizer | None = None) -> np.ndarray:
        """One proposed point per portfolio acquisition function.

        With a *penalizer* (async mode, in-flight points exist) each
        acquisition's sweep utility is multiplied by the busy-point
        penalty factors and the sweep argmax is nominated directly:
        the penalized surface is non-smooth around pending points, so
        L-BFGS-B polish — which could climb back onto a busy region —
        is skipped for these proposals.
        """
        dim = space.dim
        cands = latin_hypercube(self.n_candidates, dim, self._rng)
        # Exploitation candidates: jitter around the best observed points.
        X_obs = gp.X_train_
        order = np.argsort(y)[: max(3, dim)]
        local = X_obs[order] + self._rng.normal(0.0, 0.05,
                                                size=(len(order), dim))
        U = np.clip(np.vstack([cands, local]), 0.0, 1.0)
        mu, sigma, f_best = self._standardized(gp, y, U)

        mean = float(y.mean())
        std = _safe_std(y)
        nominees = np.empty((len(self.hedge.functions), dim))
        for i, acq in enumerate(self.hedge.functions):
            util = acq(mu, sigma, f_best)
            if penalizer is not None:
                nominees[i] = U[int(np.argmax(penalizer.apply(util, U)))]
            elif not self.refine:
                nominees[i] = U[int(np.argmax(util))]
            elif self.gradients:
                # Multi-start polish from the k best sweep candidates —
                # affordable because each gradient step costs one fused
                # prediction instead of d+1 finite-difference probes.
                k = min(self.refine_starts, len(U))
                top = np.argsort(-util, kind="stable")[:k]
                nominees[i] = self._refine_gradient(acq, gp, U[top],
                                                    f_best, mean, std,
                                                    util[top])
            else:
                best_cand = int(np.argmax(util))
                nominees[i] = self._refine(acq, gp, U[best_cand], f_best,
                                           mean, std,
                                           float(util[best_cand]))
        return nominees

    def _refine(self, acq, gp, start: np.ndarray,
                f_best: float, mean: float, std: float,
                start_util: float) -> np.ndarray:
        """L-BFGS-B polish of a candidate under one acquisition (§4).

        *start_util* is the start point's utility from the candidate
        sweep, so accepting/rejecting the polished point costs no extra
        GP prediction.  The polished point is kept only when it does not
        regress the sweep winner — L-BFGS-B can report success after its
        finite-difference line search stalls at a worse point.
        """

        def neg_util(u: np.ndarray) -> float:
            m, s = gp.fast_predict(u[None, :])
            mu_n = (float(m[0]) - mean) / std
            sigma_n = float(s[0]) / std
            return -float(acq(np.array([mu_n]), np.array([sigma_n]), f_best)[0])

        res = minimize(neg_util, start, method="L-BFGS-B",
                       bounds=[(0.0, 1.0)] * len(start),
                       options={"maxiter": 25})
        return np.clip(res.x, 0.0, 1.0) if res.fun <= -start_util else start

    def _refine_gradient(self, acq, gp,
                         starts: np.ndarray, f_best: float, mean: float,
                         std: float, start_utils: np.ndarray) -> np.ndarray:
        """Multi-start L-BFGS-B polish with exact utility gradients.

        Each objective call returns the utility *and* its closed-form
        gradient (posterior input-gradients chained through the
        acquisition), so the optimizer never finite-differences the GP.
        Returns the best polished point across starts, falling back to
        the sweep winner when no start improves on it.
        """

        def neg_util_and_grad(u: np.ndarray) -> tuple[float, np.ndarray]:
            mu, sigma, dmu, dsigma = gp.predict_with_gradient(u)
            mu_n = (mu - mean) / std
            sigma_n = sigma / std
            val = -float(acq(np.array([mu_n]), np.array([sigma_n]),
                             f_best)[0])
            grad = -acq.gradient(mu_n, sigma_n, dmu / std, dsigma / std,
                                 f_best)
            return val, grad

        bounds = [(0.0, 1.0)] * starts.shape[1]
        best_u = starts[0]
        best_fun = -float(start_utils[0])
        for s in starts:
            res = minimize(neg_util_and_grad, s, jac=True,
                           method="L-BFGS-B", bounds=bounds,
                           options={"maxiter": 25})
            if res.fun < best_fun:
                best_fun = float(res.fun)
                best_u = np.clip(res.x, 0.0, 1.0)
        return best_u
