"""Sampling strategies: Latin Hypercube (plain + maximin) and uniform random."""

from .lhs import latin_hypercube, maximin_latin_hypercube, min_pairwise_distance
from .random_sampling import uniform_samples

__all__ = [
    "latin_hypercube",
    "maximin_latin_hypercube",
    "min_pairwise_distance",
    "uniform_samples",
]
