"""Plain uniform random sampling of the unit cube.

Used as the Random Search baseline's proposal distribution (Bergstra &
Bengio, 2012) and for comparing against LHS in ablations.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import as_generator

__all__ = ["uniform_samples"]


def uniform_samples(n_samples: int, dim: int,
                    rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Draw ``(n_samples, dim)`` i.i.d. uniform points on ``[0, 1)``."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    return as_generator(rng).random((n_samples, dim))
