"""Latin Hypercube Sampling (paper §3.2).

For *M* samples in *n* dimensions, LHS divides every axis into *M* equally
probable intervals and draws exactly one sample coordinate from each
interval per axis (McKay et al., 1979).  This stratification covers the
space with far fewer points than plain random sampling and, unlike grid
designs, the number of samples is independent of the dimensionality.

The paper strengthens LHS to a *space-filling* design (via the DOEPY
library); here the same effect is achieved with a best-of-``k`` maximin
criterion: generate ``k`` candidate Latin hypercubes and keep the one whose
minimum pairwise point distance is largest.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import as_generator

__all__ = ["latin_hypercube", "maximin_latin_hypercube", "min_pairwise_distance"]


def latin_hypercube(n_samples: int, dim: int,
                    rng: np.random.Generator | int | None = None,
                    *, centered: bool = False) -> np.ndarray:
    """Draw a Latin hypercube design on the unit cube.

    Parameters
    ----------
    n_samples:
        Number of points *M*; every axis is stratified into *M* cells.
    dim:
        Dimensionality of the cube.
    rng:
        Seed or generator for reproducibility.
    centered:
        If True, place points at cell centres instead of uniformly within
        each cell (a "centred" or midpoint LHS).

    Returns
    -------
    ndarray of shape ``(n_samples, dim)`` with values in ``[0, 1)``.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    rng = as_generator(rng)
    # Column j is an independent random permutation of the M strata.
    strata = np.empty((n_samples, dim), dtype=float)
    for j in range(dim):
        strata[:, j] = rng.permutation(n_samples)
    jitter = 0.5 if centered else rng.random((n_samples, dim))
    return (strata + jitter) / n_samples


def min_pairwise_distance(points: np.ndarray) -> float:
    """Minimum Euclidean distance between any two rows of *points*."""
    pts = np.asarray(points, dtype=float)
    n = pts.shape[0]
    if n < 2:
        return float("inf")
    # O(n^2) pairwise distances; designs here are small (<= a few hundred).
    sq = np.sum(pts ** 2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (pts @ pts.T)
    np.fill_diagonal(d2, np.inf)
    return float(np.sqrt(max(d2.min(), 0.0)))


def maximin_latin_hypercube(n_samples: int, dim: int,
                            rng: np.random.Generator | int | None = None,
                            *, n_candidates: int = 20,
                            centered: bool = False) -> np.ndarray:
    """Space-filling LHS: best of ``n_candidates`` designs by maximin.

    Keeps the candidate Latin hypercube whose minimum pairwise distance is
    largest, improving coverage uniformity over a single random LHS draw.
    """
    if n_candidates <= 0:
        raise ValueError(f"n_candidates must be positive, got {n_candidates}")
    rng = as_generator(rng)
    best: np.ndarray | None = None
    best_score = -np.inf
    for _ in range(n_candidates):
        cand = latin_hypercube(n_samples, dim, rng, centered=centered)
        score = min_pairwise_distance(cand)
        if score > best_score:
            best, best_score = cand, score
    assert best is not None
    return best
