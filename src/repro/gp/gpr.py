"""Gaussian-process regression with marginal-likelihood hyperparameter fit.

The surrogate model of the paper's BO engine (§3.4).  Given observations
``(X, y)`` and a kernel, the posterior at any point is a normal
distribution whose mean is the model's estimate of the objective and whose
variance quantifies uncertainty.  Kernel hyperparameters are chosen by
maximizing the log marginal likelihood with L-BFGS-B (multi-start).
"""

from __future__ import annotations

import copy
import math

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular
from scipy.optimize import minimize

from ..obs import as_tracer
from ..utils.parallel import parallel_map
from ..utils.rng import as_generator
from .kernels import ConstantKernel, Kernel, Matern52, WhiteKernel, _cdist_sq

__all__ = ["GaussianProcessRegressor", "default_bo_kernel"]

_LOG_2PI = math.log(2.0 * math.pi)


def default_bo_kernel() -> Kernel:
    """The paper's kernel: scaled Matérn 5/2 plus white observation noise."""
    return ConstantKernel(1.0) * Matern52(0.5, bounds=(1e-2, 1e2)) \
        + WhiteKernel(1e-2, bounds=(1e-6, 1e1))


class GaussianProcessRegressor:
    """GP regression on the unit hypercube.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to :func:`default_bo_kernel`.  The
        instance is deep-copied so callers can reuse kernel templates.
    alpha:
        Jitter added to the training covariance diagonal for numerical
        stability (on top of any white-noise kernel).
    normalize_y:
        Standardize targets to zero mean / unit variance internally;
        predictions are transformed back.  Recommended when objective
        magnitudes vary wildly across workloads.
    n_restarts:
        Random restarts (beyond the incumbent theta) for the marginal
        likelihood optimization.
    optimize:
        If False, keep the kernel's current hyperparameters (useful for
        tests and for very small training sets).
    analytic_gradients:
        Use the kernels' analytic ``∂K/∂θ`` and the Rasmussen–Williams
        trace identity to hand L-BFGS-B an exact likelihood gradient
        instead of finite differences.  One fused value-and-gradient call
        replaces ``len(theta) + 1`` likelihood evaluations per gradient
        step, all sharing a single Cholesky.  Off by default: the analytic
        optimizer takes different (usually better) steps than the
        finite-difference one, so fitted hyperparameters match only to
        optimizer tolerance, not bit-for-bit.  Kernels without
        ``value_and_theta_gradient`` silently fall back to the
        finite-difference path.
    n_jobs:
        Workers for the multi-start likelihood optimization (``None``
        defers to ``ROBOTUNE_JOBS``).  Each restart runs on a private
        kernel copy and winners are chosen in start order, so the fitted
        model is identical for any worker count.
    tracer:
        Optional :class:`repro.obs.Tracer`: each (re)fit emits a
        ``gp.fit`` event and accumulates in the ``gp.fit`` timer;
        :meth:`predict` calls bump the ``gp.predict``/``gp.predict.points``
        counters.  The hot :meth:`fast_predict` path is deliberately left
        uninstrumented.
    """

    def __init__(self, kernel: Kernel | None = None, *, alpha: float = 1e-10,
                 normalize_y: bool = True, n_restarts: int = 2,
                 optimize: bool = True, analytic_gradients: bool = False,
                 n_jobs: int | None = None,
                 rng: np.random.Generator | int | None = None,
                 tracer=None):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.kernel = copy.deepcopy(kernel) if kernel is not None \
            else default_bo_kernel()
        self.alpha = alpha
        self.normalize_y = normalize_y
        self.n_restarts = n_restarts
        self.optimize = optimize
        self.analytic_gradients = analytic_gradients
        self.n_jobs = n_jobs
        self.rng = rng
        self.tracer = as_tracer(tracer)
        self._fitted = False

    # -- fitting ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with len(y) == len(X)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._X = X
        # Pairwise squared distances are hyperparameter-independent; cache
        # them so likelihood restarts and refits reuse one computation.
        self._d2 = _cdist_sq(X, X)
        self._normalize_targets(y)

        optimized = self.optimize and X.shape[0] >= 2
        with self.tracer.timer("gp.fit"):
            if optimized:
                self._optimize_theta()
            self._precompute()
        self._fitted = True
        self.tracer.emit("gp.fit", {"n": int(X.shape[0]),
                                    "optimized": bool(optimized),
                                    "incremental": False,
                                    "theta": self.kernel.theta})
        return self

    def update(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Warm refit: extend the model with appended observations.

        When *X* equals the previous training matrix with zero or more new
        rows appended and the kernel hyperparameters are unchanged since
        the last factorization, the Cholesky factor is extended with a
        rank-k update (:math:`O(kn^2)`) instead of refactorized
        (:math:`O(n^3)`); the target normalization and the weight vector
        are always recomputed exactly.  Any other change — shrunk or
        reordered rows, different feature count, new hyperparameters —
        falls back to a full :meth:`fit`.  The update never re-optimizes
        hyperparameters, matching ``optimize=False`` fits.

        The extended factor is mathematically exact; it differs from a
        from-scratch factorization only by floating-point rounding (parity
        within ~1e-8 is covered by tests).
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if (not self._fitted or X.ndim != 2
                or y.shape != (X.shape[0],)
                or X.shape[1] != self._X.shape[1]
                or X.shape[0] < self._X.shape[0]
                or not np.array_equal(self.kernel.theta, self._theta_chol)
                or not np.array_equal(X[: self._X.shape[0]], self._X)):
            saved_optimize = self.optimize
            self.optimize = False
            try:
                return self.fit(X, y)
            finally:
                self.optimize = saved_optimize
        n_old = self._X.shape[0]
        k = X.shape[0] - n_old
        if k == 0:
            if not np.array_equal(self._y_raw, y):
                self._normalize_targets(y)
                self._weights = cho_solve(self._chol, self._y)
            return self
        X_new = X[n_old:]
        if not self._extend_cholesky(X_new):
            # Appended block made the factor numerically unstable: refit.
            saved_optimize = self.optimize
            self.optimize = False
            try:
                return self.fit(X, y)
            finally:
                self.optimize = saved_optimize
        self._X = X
        self._normalize_targets(y)
        self._weights = cho_solve(self._chol, self._y)
        self.tracer.emit("gp.fit", {"n": int(X.shape[0]),
                                    "optimized": False,
                                    "incremental": True,
                                    "theta": self.kernel.theta})
        return self

    def _extend_cholesky(self, X_new: np.ndarray) -> bool:
        """Append rows to the training set via a rank-k Cholesky update."""
        n_old = self._X.shape[0]
        k = X_new.shape[0]
        K12 = self.kernel(self._X, X_new)
        K22 = self.kernel(X_new) + self.alpha * np.eye(k)
        L = self._chol[0]
        B = solve_triangular(L, K12, lower=True, check_finite=False)
        S = K22 - B.T @ B
        try:
            Ls = np.linalg.cholesky(S)
        except np.linalg.LinAlgError:
            return False
        n = n_old + k
        c = np.zeros((n, n))
        c[:n_old, :n_old] = L
        c[n_old:, :n_old] = B.T
        c[n_old:, n_old:] = Ls
        self._chol = (c, True)
        # Extend the cached squared-distance matrix with the new block.
        d2 = np.empty((n, n))
        d2[:n_old, :n_old] = self._d2
        cross = _cdist_sq(self._X, X_new)
        d2[:n_old, n_old:] = cross
        d2[n_old:, :n_old] = cross.T
        d2[n_old:, n_old:] = _cdist_sq(X_new, X_new)
        self._d2 = d2
        return True

    def _normalize_targets(self, y: np.ndarray) -> None:
        self._y_raw = y.copy()
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std())
            if self._y_std == 0.0:
                self._y_std = 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std

    def _K_train(self, kernel: Kernel | None = None) -> np.ndarray:
        """Training covariance (without jitter), from cached distances when
        the kernel supports it."""
        kernel = self.kernel if kernel is None else kernel
        try:
            return kernel.from_sq_dists(self._d2)
        except NotImplementedError:
            return kernel(self._X)

    def _nll(self, theta: np.ndarray, kernel: Kernel | None = None) -> float:
        """Negative log marginal likelihood at the given hyperparameters.

        Operates on *kernel* when given (a private copy during parallel
        multi-start), else mutates ``self.kernel`` in place.
        """
        kernel = self.kernel if kernel is None else kernel
        kernel.theta = theta
        K = self._K_train(kernel) + self.alpha * np.eye(self._X.shape[0])
        try:
            L = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            return 1e25
        a = cho_solve(L, self._y)
        n = self._X.shape[0]
        logdet = 2.0 * float(np.sum(np.log(np.diag(L[0]))))
        return 0.5 * float(self._y @ a) + 0.5 * logdet + 0.5 * n * _LOG_2PI

    def _nll_and_grad(self, theta: np.ndarray, kernel: Kernel
                      ) -> tuple[float, np.ndarray]:
        """Negative log marginal likelihood and its exact theta-gradient.

        One fused call shares a single covariance build and Cholesky
        between the value and all partial derivatives, using the trace
        identity (Rasmussen & Williams, eq. 5.9)

        ``∂NLL/∂θ_j = ½ tr((K⁻¹ − ααᵀ) ∂K/∂θ_j)``,  ``α = K⁻¹ y``.
        """
        kernel.theta = theta
        n = self._X.shape[0]
        K, grads = kernel.value_and_theta_gradient(self._X, d2=self._d2)
        K[np.diag_indices_from(K)] += self.alpha
        try:
            L = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            return 1e25, np.zeros(len(theta))
        a = cho_solve(L, self._y)
        logdet = 2.0 * float(np.sum(np.log(np.diag(L[0]))))
        nll = 0.5 * float(self._y @ a) + 0.5 * logdet + 0.5 * n * _LOG_2PI
        # M = K⁻¹ − ααᵀ turns every partial into one O(n²) contraction.
        M = cho_solve(L, np.eye(n), check_finite=False)
        M -= np.outer(a, a)
        grad = np.array([0.5 * np.sum(M * G) for G in grads])
        return nll, grad

    def _kernel_has_theta_gradient(self) -> bool:
        try:
            self.kernel.value_and_theta_gradient(self._X[:1])
        except NotImplementedError:
            return False
        return True

    def log_marginal_likelihood(self, theta: np.ndarray | None = None) -> float:
        """Log marginal likelihood at *theta* (default: current kernel)."""
        if theta is None:
            theta = self.kernel.theta
        saved = self.kernel.theta
        try:
            return -self._nll(np.asarray(theta, dtype=float))
        finally:
            self.kernel.theta = saved

    def _optimize_theta(self) -> None:
        rng = as_generator(self.rng)
        bounds = self.kernel.bounds
        starts = [self.kernel.theta]
        for _ in range(self.n_restarts):
            starts.append(rng.uniform(bounds[:, 0], bounds[:, 1]))
        use_grad = self.analytic_gradients and self._kernel_has_theta_gradient()

        def _run_start(start: np.ndarray) -> tuple[float, np.ndarray]:
            # Each restart optimizes a private kernel copy, so threaded
            # workers never race on shared hyperparameter state and the
            # result matches the serial loop bit-for-bit.
            kernel = copy.deepcopy(self.kernel)
            if use_grad:
                res = minimize(self._nll_and_grad, start, args=(kernel,),
                               jac=True, method="L-BFGS-B",
                               bounds=bounds, options={"maxiter": 100})
            else:
                res = minimize(self._nll, start, args=(kernel,),
                               method="L-BFGS-B",
                               bounds=bounds, options={"maxiter": 100})
            return float(res.fun), res.x

        results = parallel_map(_run_start, starts, n_jobs=self.n_jobs,
                               backend="thread", tracer=self.tracer)
        best_theta, best_nll = self.kernel.theta, np.inf
        for fun, x in results:
            if fun < best_nll:
                best_nll, best_theta = fun, x
        self.kernel.theta = best_theta

    def _precompute(self) -> None:
        K = self._K_train() + self.alpha * np.eye(self._X.shape[0])
        # Escalate jitter if the optimized kernel is barely positive definite.
        jitter = self.alpha if self.alpha > 0 else 1e-10
        for _ in range(8):
            try:
                self._chol = cho_factor(K + 0.0, lower=True)
                break
            except np.linalg.LinAlgError:
                K = K + jitter * np.eye(K.shape[0])
                jitter *= 10.0
        else:  # pragma: no cover - pathological kernels only
            raise np.linalg.LinAlgError("covariance matrix not positive definite")
        self._theta_chol = self.kernel.theta.copy()
        self._weights = cho_solve(self._chol, self._y)

    # -- prediction ---------------------------------------------------------------
    def predict(self, X: np.ndarray, return_std: bool = False):
        """Posterior mean (and optionally standard deviation) at *X*.

        The white-noise component contributes to training covariance but
        not to cross covariance, so the returned std is the uncertainty of
        the latent objective, not of a noisy observation.
        """
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._X.shape[1]:
            raise ValueError(f"X must have shape (n, {self._X.shape[1]})")
        self.tracer.count("gp.predict")
        self.tracer.count("gp.predict.points", X.shape[0])
        Ks = self.kernel(X, self._X)
        mean = Ks @ self._weights
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._chol, Ks.T)
        var = self.kernel.latent_diag(X) - np.einsum("ij,ji->i", Ks, v)
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def fast_predict(self, X: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and std without input validation or finiteness
        checks — the hot path for acquisition refinement, where the same
        fitted model is queried thousands of times with single points.

        Arithmetic is identical to ``predict(X, return_std=True)``; only
        the defensive ``asarray``/shape/finite checks are skipped, so both
        entry points return the same bits for valid input.
        """
        Ks = self.kernel(X, self._X)
        mean = Ks @ self._weights
        mean = mean * self._y_std + self._y_mean
        v = cho_solve(self._chol, Ks.T, check_finite=False)
        var = self.kernel.latent_diag(X) - np.einsum("ij,ji->i", Ks, v)
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def predict_with_gradient(self, x: np.ndarray
                              ) -> tuple[float, float, np.ndarray, np.ndarray]:
        """Posterior mean/std at a single point plus their input gradients.

        Returns ``(mu, sigma, dmu, dsigma)`` where the gradients are
        ``∂μ/∂x`` and ``∂σ/∂x``, each of shape ``(d,)``:

        ``∂μ/∂x = (∂k/∂x)ᵀ K⁻¹y`` and ``∂σ²/∂x = −2 (K⁻¹k)ᵀ ∂k/∂x``
        (every stationary kernel in this package has an input-independent
        prior variance, so ``latent_diag`` contributes nothing).  When the
        variance hits the numerical floor the σ-gradient is zeroed, making
        it consistent with the clipped value :meth:`predict` returns.
        Mean and std match :meth:`fast_predict` bit-for-bit.
        """
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        x = np.asarray(x, dtype=float)
        xq = x[None, :]
        # Mean/std arithmetic mirrors fast_predict exactly (same shapes,
        # same reductions) so both entry points return the same bits.
        Ks = self.kernel(xq, self._X)
        mean = Ks @ self._weights
        mean = mean * self._y_std + self._y_mean
        v = cho_solve(self._chol, Ks.T, check_finite=False)
        var = self.kernel.latent_diag(xq) - np.einsum("ij,ji->i", Ks, v)
        clipped = var[0] < 1e-12
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        dk = self.kernel.input_gradient(x, self._X)
        dmu = (dk.T @ self._weights) * self._y_std
        if clipped:
            dsigma = np.zeros_like(x)
        else:
            dvar = -2.0 * (dk.T @ v[:, 0])
            dsigma = dvar / (2.0 * float(np.sqrt(var[0]))) * self._y_std
        return float(mean[0]), float(std[0]), dmu, dsigma

    @property
    def X_train_(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        return self._X

    @property
    def y_train_(self) -> np.ndarray:
        """Training targets in original (denormalized) units."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        return self._y * self._y_std + self._y_mean
