"""Covariance kernels for Gaussian-process regression.

The paper's BO engine uses the sum of a Matérn 5/2 kernel and a white-noise
kernel (§4, "Bayesian Optimization"), the standard choice for modelling
practical performance functions (Snoek et al., 2012).  Kernels expose their
hyperparameters as a log-scale vector ``theta`` with box ``bounds`` so the
regressor can optimize the marginal likelihood with L-BFGS-B.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Kernel",
    "ConstantKernel",
    "RBF",
    "Matern52",
    "WhiteKernel",
    "Sum",
    "Product",
]


def _cdist_sq(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of X and Y."""
    xx = np.sum(X ** 2, axis=1)[:, None]
    yy = np.sum(Y ** 2, axis=1)[None, :]
    d2 = xx + yy - 2.0 * (X @ Y.T)
    return np.maximum(d2, 0.0)


#: Identity matrices reused by white-noise kernels across likelihood
#: evaluations (the gradient hot path allocates one per call otherwise).
_EYE_CACHE: dict[int, np.ndarray] = {}


def _eye(n: int) -> np.ndarray:
    """Cached identity matrix; treat the result as read-only."""
    out = _EYE_CACHE.get(n)
    if out is None:
        if len(_EYE_CACHE) > 8:
            _EYE_CACHE.clear()
        out = _EYE_CACHE[n] = np.eye(n)
    return out


class Kernel(ABC):
    """Base covariance function with log-parameterized hyperparameters."""

    @abstractmethod
    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix ``k(X, Y)`` (``Y=None`` means ``k(X, X)``)."""

    @abstractmethod
    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``k(X, X)`` without forming the full matrix."""

    def latent_diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of the *noise-free* prior covariance at X.

        Identical to :meth:`diag` except that white-noise components
        contribute zero, so GP predictive variance derived from it reflects
        the latent objective rather than a noisy observation.
        """
        return self.diag(X)

    def from_sq_dists(self, d2: np.ndarray) -> np.ndarray:
        """Training covariance ``k(X, X)`` from precomputed squared
        pairwise distances.

        The squared-distance matrix is hyperparameter-independent, so the
        GP regressor computes it once per training set and re-evaluates
        the kernel cheaply at every candidate ``theta`` during marginal
        -likelihood optimization.  Distance-based kernels that divide the
        *unscaled* distance by their length scale (Matérn) reproduce
        :meth:`__call__` bit-for-bit; :class:`RBF` rescales inputs before
        the distance computation, so its cached path is only equivalent to
        floating-point tolerance.  Kernels that cannot exploit the cache
        raise :class:`NotImplementedError`, and callers fall back to the
        direct evaluation.
        """
        raise NotImplementedError

    @property
    @abstractmethod
    def theta(self) -> np.ndarray:
        """Current hyperparameters in log space."""

    @theta.setter
    @abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    @abstractmethod
    def bounds(self) -> np.ndarray:
        """Log-space box bounds, shape ``(len(theta), 2)``."""

    # -- analytic gradients --------------------------------------------------------
    def value_and_theta_gradient(self, X: np.ndarray,
                                 d2: np.ndarray | None = None
                                 ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Training covariance ``k(X, X)`` together with ``∂K/∂θ_i``.

        Returns ``(K, grads)`` where ``grads`` is one ``(n, n)`` matrix per
        log-space hyperparameter, in :attr:`theta` order.  Passing the
        cached squared-distance matrix *d2* lets distance-based kernels
        skip recomputing it (the same contract as :meth:`from_sq_dists`).
        Kernels share intermediates (distances, exponentials) between the
        value and its gradients, so one fused call is substantially
        cheaper than ``self(X)`` plus per-parameter evaluations.

        Contract: the returned matrices never alias each other or *d2*,
        so callers may mutate ``K`` (e.g. add diagonal jitter) freely.
        """
        raise NotImplementedError

    def cross_value_and_theta_gradient(self, X: np.ndarray, Y: np.ndarray
                                       ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Cross covariance ``k(X, Y)`` together with ``∂k(X, Y)/∂θ_i``.

        The cross convention of :meth:`__call__` with an explicit *Y*
        applies: white-noise components contribute zero (and a zero
        gradient), so the result is the *latent* covariance even when the
        same array is passed twice.  Returns ``(K, grads)`` with one
        ``(n, p)`` matrix per log-space hyperparameter, in :attr:`theta`
        order; the matrices never alias each other.
        """
        raise NotImplementedError

    def diag_theta_gradient(self, X: np.ndarray
                            ) -> tuple[np.ndarray, list[np.ndarray]]:
        """``diag(k(X, X))`` together with ``∂diag/∂θ_i`` vectors."""
        raise NotImplementedError

    def latent_diag_theta_gradient(self, X: np.ndarray
                                   ) -> tuple[np.ndarray, list[np.ndarray]]:
        """:meth:`latent_diag` together with its ``∂/∂θ_i`` vectors."""
        raise NotImplementedError

    def theta_gradient(self, X: np.ndarray) -> np.ndarray:
        """Stack of ``∂k(X, X)/∂θ_i``, shape ``(len(theta), n, n)``.

        Gradients are with respect to the *log-space* hyperparameters
        exposed by :attr:`theta` (the coordinates the marginal-likelihood
        optimization runs in).
        """
        _, grads = self.value_and_theta_gradient(X)
        n = X.shape[0]
        if not grads:
            return np.empty((0, n, n))
        return np.stack(grads)

    def input_gradient(self, x: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Jacobian ``∂k(x, X_j)/∂x`` of the cross-covariance vector.

        *x* is a single query point of shape ``(d,)``; the result has
        shape ``(n, d)`` with row *j* holding the gradient of
        ``k(x, X_j)`` with respect to *x*.  Like :meth:`__call__` with
        distinct point sets, white-noise components contribute zero, so
        the Jacobian is that of the latent (noise-free) covariance.
        """
        raise NotImplementedError

    # -- composition -------------------------------------------------------------
    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)


class ConstantKernel(Kernel):
    """Constant (signal-variance) kernel: ``k(x, x') = value``."""

    def __init__(self, value: float = 1.0,
                 bounds: tuple[float, float] = (1e-4, 1e4)):
        if value <= 0:
            raise ValueError("value must be positive")
        self.value = float(value)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        Y = X if Y is None else Y
        return np.full((X.shape[0], Y.shape[0]), self.value)

    def diag(self, X):
        return np.full(X.shape[0], self.value)

    def from_sq_dists(self, d2):
        return np.full(d2.shape, self.value)

    def value_and_theta_gradient(self, X, d2=None):
        n = X.shape[0] if d2 is None else d2.shape[0]
        K = np.full((n, n), self.value)
        # d/dlog(v) of v = v, i.e. the kernel matrix itself.
        return K, [K.copy()]

    def cross_value_and_theta_gradient(self, X, Y):
        K = np.full((X.shape[0], Y.shape[0]), self.value)
        return K, [K.copy()]

    def diag_theta_gradient(self, X):
        d = np.full(X.shape[0], self.value)
        return d, [d.copy()]

    def latent_diag_theta_gradient(self, X):
        return self.diag_theta_gradient(X)

    def input_gradient(self, x, X):
        return np.zeros((X.shape[0], x.shape[0]))

    @property
    def theta(self):
        return np.array([math.log(self.value)])

    @theta.setter
    def theta(self, value):
        self.value = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class RBF(Kernel):
    """Squared-exponential kernel with an isotropic length scale."""

    def __init__(self, length_scale: float = 1.0,
                 bounds: tuple[float, float] = (1e-3, 1e3)):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        Y = X if Y is None else Y
        d2 = _cdist_sq(X / self.length_scale, Y / self.length_scale)
        return np.exp(-0.5 * d2)

    def diag(self, X):
        return np.ones(X.shape[0])

    def from_sq_dists(self, d2):
        return np.exp(-0.5 * d2 / self.length_scale ** 2)

    def value_and_theta_gradient(self, X, d2=None):
        if d2 is None:
            d2 = _cdist_sq(X, X)
        q = d2 / self.length_scale ** 2
        K = np.exp(-0.5 * q)
        # K = exp(-q/2) with q = d²/ℓ²; dq/dlogℓ = -2q, so dK/dlogℓ = K·q.
        return K, [K * q]

    def cross_value_and_theta_gradient(self, X, Y):
        q = _cdist_sq(X, Y) / self.length_scale ** 2
        K = np.exp(-0.5 * q)
        return K, [K * q]

    def diag_theta_gradient(self, X):
        n = X.shape[0]
        return np.ones(n), [np.zeros(n)]

    def latent_diag_theta_gradient(self, X):
        return self.diag_theta_gradient(X)

    def input_gradient(self, x, X):
        diff = x[None, :] - X
        inv_l2 = 1.0 / self.length_scale ** 2
        k = np.exp(-0.5 * np.sum(diff ** 2, axis=1) * inv_l2)
        return (-inv_l2) * diff * k[:, None]

    @property
    def theta(self):
        return np.array([math.log(self.length_scale)])

    @theta.setter
    def theta(self, value):
        self.length_scale = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class Matern52(Kernel):
    """Matérn kernel with smoothness ν = 5/2 (twice differentiable).

    ``k(r) = (1 + √5 r/ℓ + 5 r² / (3 ℓ²)) exp(-√5 r/ℓ)``
    """

    def __init__(self, length_scale: float = 1.0,
                 bounds: tuple[float, float] = (1e-3, 1e3)):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        Y = X if Y is None else Y
        r = np.sqrt(_cdist_sq(X, Y)) / self.length_scale
        s = math.sqrt(5.0) * r
        return (1.0 + s + s ** 2 / 3.0) * np.exp(-s)

    def diag(self, X):
        return np.ones(X.shape[0])

    def from_sq_dists(self, d2):
        r = np.sqrt(d2) / self.length_scale
        s = math.sqrt(5.0) * r
        return (1.0 + s + s ** 2 / 3.0) * np.exp(-s)

    def value_and_theta_gradient(self, X, d2=None):
        if d2 is None:
            d2 = _cdist_sq(X, X)
        s = math.sqrt(5.0) * np.sqrt(d2) / self.length_scale
        es = np.exp(-s)
        s2 = s ** 2
        K = (1.0 + s + s2 / 3.0) * es
        # dk/ds = -(s/3)(1+s)e^{-s} and ds/dlogℓ = -s, hence:
        dK = (s2 / 3.0) * (1.0 + s) * es
        return K, [dK]

    def cross_value_and_theta_gradient(self, X, Y):
        s = math.sqrt(5.0) * np.sqrt(_cdist_sq(X, Y)) / self.length_scale
        es = np.exp(-s)
        s2 = s ** 2
        K = (1.0 + s + s2 / 3.0) * es
        dK = (s2 / 3.0) * (1.0 + s) * es
        return K, [dK]

    def diag_theta_gradient(self, X):
        n = X.shape[0]
        return np.ones(n), [np.zeros(n)]

    def latent_diag_theta_gradient(self, X):
        return self.diag_theta_gradient(X)

    def input_gradient(self, x, X):
        diff = x[None, :] - X
        r = np.sqrt(np.sum(diff ** 2, axis=1))
        s = math.sqrt(5.0) * r / self.length_scale
        coef = -(5.0 / (3.0 * self.length_scale ** 2)) * (1.0 + s) * np.exp(-s)
        return coef[:, None] * diff

    @property
    def theta(self):
        return np.array([math.log(self.length_scale)])

    @theta.setter
    def theta(self, value):
        self.length_scale = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class WhiteKernel(Kernel):
    """I.i.d. observation-noise kernel: ``noise_level`` on the diagonal.

    Only contributes when ``X is Y`` (training covariance); cross
    covariances between distinct point sets are zero, so predictions are of
    the noise-free latent function.
    """

    def __init__(self, noise_level: float = 1e-2,
                 bounds: tuple[float, float] = (1e-8, 1e2)):
        if noise_level <= 0:
            raise ValueError("noise_level must be positive")
        self.noise_level = float(noise_level)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        if Y is None:
            return self.noise_level * np.eye(X.shape[0])
        return np.zeros((X.shape[0], Y.shape[0]))

    def diag(self, X):
        return np.full(X.shape[0], self.noise_level)

    def latent_diag(self, X):
        return np.zeros(X.shape[0])

    def from_sq_dists(self, d2):
        return self.noise_level * np.eye(d2.shape[0])

    def value_and_theta_gradient(self, X, d2=None):
        n = X.shape[0] if d2 is None else d2.shape[0]
        K = self.noise_level * _eye(n)
        return K, [K.copy()]

    def cross_value_and_theta_gradient(self, X, Y):
        K = np.zeros((X.shape[0], Y.shape[0]))
        return K, [K.copy()]

    def diag_theta_gradient(self, X):
        d = np.full(X.shape[0], self.noise_level)
        return d, [d.copy()]

    def latent_diag_theta_gradient(self, X):
        n = X.shape[0]
        return np.zeros(n), [np.zeros(n)]

    def input_gradient(self, x, X):
        return np.zeros((X.shape[0], x.shape[0]))

    @property
    def theta(self):
        return np.array([math.log(self.noise_level)])

    @theta.setter
    def theta(self, value):
        self.noise_level = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class _Binary(Kernel):
    """Composite of two kernels with concatenated hyperparameters."""

    def __init__(self, k1: Kernel, k2: Kernel):
        self.k1 = k1
        self.k2 = k2

    def diag(self, X):
        raise NotImplementedError

    @property
    def theta(self):
        return np.concatenate([self.k1.theta, self.k2.theta])

    @theta.setter
    def theta(self, value):
        n1 = len(self.k1.theta)
        self.k1.theta = np.asarray(value)[:n1]
        self.k2.theta = np.asarray(value)[n1:]

    @property
    def bounds(self):
        return np.vstack([self.k1.bounds, self.k2.bounds])


class Sum(_Binary):
    """Pointwise sum of two kernels."""

    def __call__(self, X, Y=None):
        return self.k1(X, Y) + self.k2(X, Y)

    def diag(self, X):
        return self.k1.diag(X) + self.k2.diag(X)

    def from_sq_dists(self, d2):
        return self.k1.from_sq_dists(d2) + self.k2.from_sq_dists(d2)

    def latent_diag(self, X):
        return self.k1.latent_diag(X) + self.k2.latent_diag(X)

    def value_and_theta_gradient(self, X, d2=None):
        K1, g1 = self.k1.value_and_theta_gradient(X, d2)
        K2, g2 = self.k2.value_and_theta_gradient(X, d2)
        return K1 + K2, g1 + g2

    def cross_value_and_theta_gradient(self, X, Y):
        K1, g1 = self.k1.cross_value_and_theta_gradient(X, Y)
        K2, g2 = self.k2.cross_value_and_theta_gradient(X, Y)
        return K1 + K2, g1 + g2

    def diag_theta_gradient(self, X):
        d1, g1 = self.k1.diag_theta_gradient(X)
        d2, g2 = self.k2.diag_theta_gradient(X)
        return d1 + d2, g1 + g2

    def latent_diag_theta_gradient(self, X):
        d1, g1 = self.k1.latent_diag_theta_gradient(X)
        d2, g2 = self.k2.latent_diag_theta_gradient(X)
        return d1 + d2, g1 + g2

    def input_gradient(self, x, X):
        return self.k1.input_gradient(x, X) + self.k2.input_gradient(x, X)


class Product(_Binary):
    """Pointwise product of two kernels."""

    def __call__(self, X, Y=None):
        return self.k1(X, Y) * self.k2(X, Y)

    def diag(self, X):
        return self.k1.diag(X) * self.k2.diag(X)

    def from_sq_dists(self, d2):
        return self.k1.from_sq_dists(d2) * self.k2.from_sq_dists(d2)

    def latent_diag(self, X):
        return self.k1.latent_diag(X) * self.k2.latent_diag(X)

    def value_and_theta_gradient(self, X, d2=None):
        K1, g1 = self.k1.value_and_theta_gradient(X, d2)
        K2, g2 = self.k2.value_and_theta_gradient(X, d2)
        grads = [g * K2 for g in g1] + [K1 * g for g in g2]
        return K1 * K2, grads

    def cross_value_and_theta_gradient(self, X, Y):
        K1, g1 = self.k1.cross_value_and_theta_gradient(X, Y)
        K2, g2 = self.k2.cross_value_and_theta_gradient(X, Y)
        grads = [g * K2 for g in g1] + [K1 * g for g in g2]
        return K1 * K2, grads

    def diag_theta_gradient(self, X):
        d1, g1 = self.k1.diag_theta_gradient(X)
        d2, g2 = self.k2.diag_theta_gradient(X)
        grads = [g * d2 for g in g1] + [d1 * g for g in g2]
        return d1 * d2, grads

    def latent_diag_theta_gradient(self, X):
        d1, g1 = self.k1.latent_diag_theta_gradient(X)
        d2, g2 = self.k2.latent_diag_theta_gradient(X)
        grads = [g * d2 for g in g1] + [d1 * g for g in g2]
        return d1 * d2, grads

    def input_gradient(self, x, X):
        xq = x[None, :]
        k1 = self.k1(xq, X)[0]
        k2 = self.k2(xq, X)[0]
        g1 = self.k1.input_gradient(x, X)
        g2 = self.k2.input_gradient(x, X)
        return g1 * k2[:, None] + k1[:, None] * g2
