"""Covariance kernels for Gaussian-process regression.

The paper's BO engine uses the sum of a Matérn 5/2 kernel and a white-noise
kernel (§4, "Bayesian Optimization"), the standard choice for modelling
practical performance functions (Snoek et al., 2012).  Kernels expose their
hyperparameters as a log-scale vector ``theta`` with box ``bounds`` so the
regressor can optimize the marginal likelihood with L-BFGS-B.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Kernel",
    "ConstantKernel",
    "RBF",
    "Matern52",
    "WhiteKernel",
    "Sum",
    "Product",
]


def _cdist_sq(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of X and Y."""
    xx = np.sum(X ** 2, axis=1)[:, None]
    yy = np.sum(Y ** 2, axis=1)[None, :]
    d2 = xx + yy - 2.0 * (X @ Y.T)
    return np.maximum(d2, 0.0)


class Kernel(ABC):
    """Base covariance function with log-parameterized hyperparameters."""

    @abstractmethod
    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix ``k(X, Y)`` (``Y=None`` means ``k(X, X)``)."""

    @abstractmethod
    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``k(X, X)`` without forming the full matrix."""

    def latent_diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of the *noise-free* prior covariance at X.

        Identical to :meth:`diag` except that white-noise components
        contribute zero, so GP predictive variance derived from it reflects
        the latent objective rather than a noisy observation.
        """
        return self.diag(X)

    def from_sq_dists(self, d2: np.ndarray) -> np.ndarray:
        """Training covariance ``k(X, X)`` from precomputed squared
        pairwise distances.

        The squared-distance matrix is hyperparameter-independent, so the
        GP regressor computes it once per training set and re-evaluates
        the kernel cheaply at every candidate ``theta`` during marginal
        -likelihood optimization.  Distance-based kernels that divide the
        *unscaled* distance by their length scale (Matérn) reproduce
        :meth:`__call__` bit-for-bit; :class:`RBF` rescales inputs before
        the distance computation, so its cached path is only equivalent to
        floating-point tolerance.  Kernels that cannot exploit the cache
        raise :class:`NotImplementedError`, and callers fall back to the
        direct evaluation.
        """
        raise NotImplementedError

    @property
    @abstractmethod
    def theta(self) -> np.ndarray:
        """Current hyperparameters in log space."""

    @theta.setter
    @abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    @abstractmethod
    def bounds(self) -> np.ndarray:
        """Log-space box bounds, shape ``(len(theta), 2)``."""

    # -- composition -------------------------------------------------------------
    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)


class ConstantKernel(Kernel):
    """Constant (signal-variance) kernel: ``k(x, x') = value``."""

    def __init__(self, value: float = 1.0,
                 bounds: tuple[float, float] = (1e-4, 1e4)):
        if value <= 0:
            raise ValueError("value must be positive")
        self.value = float(value)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        Y = X if Y is None else Y
        return np.full((X.shape[0], Y.shape[0]), self.value)

    def diag(self, X):
        return np.full(X.shape[0], self.value)

    def from_sq_dists(self, d2):
        return np.full(d2.shape, self.value)

    @property
    def theta(self):
        return np.array([math.log(self.value)])

    @theta.setter
    def theta(self, value):
        self.value = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class RBF(Kernel):
    """Squared-exponential kernel with an isotropic length scale."""

    def __init__(self, length_scale: float = 1.0,
                 bounds: tuple[float, float] = (1e-3, 1e3)):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        Y = X if Y is None else Y
        d2 = _cdist_sq(X / self.length_scale, Y / self.length_scale)
        return np.exp(-0.5 * d2)

    def diag(self, X):
        return np.ones(X.shape[0])

    def from_sq_dists(self, d2):
        return np.exp(-0.5 * d2 / self.length_scale ** 2)

    @property
    def theta(self):
        return np.array([math.log(self.length_scale)])

    @theta.setter
    def theta(self, value):
        self.length_scale = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class Matern52(Kernel):
    """Matérn kernel with smoothness ν = 5/2 (twice differentiable).

    ``k(r) = (1 + √5 r/ℓ + 5 r² / (3 ℓ²)) exp(-√5 r/ℓ)``
    """

    def __init__(self, length_scale: float = 1.0,
                 bounds: tuple[float, float] = (1e-3, 1e3)):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        Y = X if Y is None else Y
        r = np.sqrt(_cdist_sq(X, Y)) / self.length_scale
        s = math.sqrt(5.0) * r
        return (1.0 + s + s ** 2 / 3.0) * np.exp(-s)

    def diag(self, X):
        return np.ones(X.shape[0])

    def from_sq_dists(self, d2):
        r = np.sqrt(d2) / self.length_scale
        s = math.sqrt(5.0) * r
        return (1.0 + s + s ** 2 / 3.0) * np.exp(-s)

    @property
    def theta(self):
        return np.array([math.log(self.length_scale)])

    @theta.setter
    def theta(self, value):
        self.length_scale = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class WhiteKernel(Kernel):
    """I.i.d. observation-noise kernel: ``noise_level`` on the diagonal.

    Only contributes when ``X is Y`` (training covariance); cross
    covariances between distinct point sets are zero, so predictions are of
    the noise-free latent function.
    """

    def __init__(self, noise_level: float = 1e-2,
                 bounds: tuple[float, float] = (1e-8, 1e2)):
        if noise_level <= 0:
            raise ValueError("noise_level must be positive")
        self.noise_level = float(noise_level)
        self._bounds = (float(bounds[0]), float(bounds[1]))

    def __call__(self, X, Y=None):
        if Y is None:
            return self.noise_level * np.eye(X.shape[0])
        return np.zeros((X.shape[0], Y.shape[0]))

    def diag(self, X):
        return np.full(X.shape[0], self.noise_level)

    def latent_diag(self, X):
        return np.zeros(X.shape[0])

    def from_sq_dists(self, d2):
        return self.noise_level * np.eye(d2.shape[0])

    @property
    def theta(self):
        return np.array([math.log(self.noise_level)])

    @theta.setter
    def theta(self, value):
        self.noise_level = float(np.exp(value[0]))

    @property
    def bounds(self):
        return np.log(np.array([self._bounds]))


class _Binary(Kernel):
    """Composite of two kernels with concatenated hyperparameters."""

    def __init__(self, k1: Kernel, k2: Kernel):
        self.k1 = k1
        self.k2 = k2

    def diag(self, X):
        raise NotImplementedError

    @property
    def theta(self):
        return np.concatenate([self.k1.theta, self.k2.theta])

    @theta.setter
    def theta(self, value):
        n1 = len(self.k1.theta)
        self.k1.theta = np.asarray(value)[:n1]
        self.k2.theta = np.asarray(value)[n1:]

    @property
    def bounds(self):
        return np.vstack([self.k1.bounds, self.k2.bounds])


class Sum(_Binary):
    """Pointwise sum of two kernels."""

    def __call__(self, X, Y=None):
        return self.k1(X, Y) + self.k2(X, Y)

    def diag(self, X):
        return self.k1.diag(X) + self.k2.diag(X)

    def from_sq_dists(self, d2):
        return self.k1.from_sq_dists(d2) + self.k2.from_sq_dists(d2)

    def latent_diag(self, X):
        return self.k1.latent_diag(X) + self.k2.latent_diag(X)


class Product(_Binary):
    """Pointwise product of two kernels."""

    def __call__(self, X, Y=None):
        return self.k1(X, Y) * self.k2(X, Y)

    def diag(self, X):
        return self.k1.diag(X) * self.k2.diag(X)

    def from_sq_dists(self, d2):
        return self.k1.from_sq_dists(d2) * self.k2.from_sq_dists(d2)

    def latent_diag(self, X):
        return self.k1.latent_diag(X) * self.k2.latent_diag(X)
