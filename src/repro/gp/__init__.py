"""Gaussian-process substrate: kernels, exact and low-rank GP regression."""

from .kernels import (
    ConstantKernel,
    Kernel,
    Matern52,
    Product,
    RBF,
    Sum,
    WhiteKernel,
)
from .gpr import GaussianProcessRegressor, default_bo_kernel
from .lowrank import LowRankGaussianProcessRegressor, select_inducing

__all__ = [
    "Kernel",
    "ConstantKernel",
    "RBF",
    "Matern52",
    "WhiteKernel",
    "Sum",
    "Product",
    "GaussianProcessRegressor",
    "LowRankGaussianProcessRegressor",
    "default_bo_kernel",
    "select_inducing",
]
