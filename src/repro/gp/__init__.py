"""Gaussian-process substrate: kernels and exact GP regression."""

from .kernels import (
    ConstantKernel,
    Kernel,
    Matern52,
    Product,
    RBF,
    Sum,
    WhiteKernel,
)
from .gpr import GaussianProcessRegressor, default_bo_kernel

__all__ = [
    "Kernel",
    "ConstantKernel",
    "RBF",
    "Matern52",
    "WhiteKernel",
    "Sum",
    "Product",
    "GaussianProcessRegressor",
    "default_bo_kernel",
]
