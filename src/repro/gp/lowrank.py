"""Low-rank (subset-of-regressors) Gaussian-process regression.

Scales the surrogate past the exact GP's O(n³) fit and O(n·n_cand)
prediction: warm-starting from accumulated journals (LOCAT-style
datasize-aware transfer) means fitting on hundreds-to-thousands of prior
observations, where the dense Cholesky dominates wall time.

The approximation is the classical Nyström / subset-of-regressors (SoR)
family (Quiñonero-Candela & Rasmussen, 2005): m inducing points Z ⊆ X
summarize the training set, the marginal likelihood uses the SoR
covariance ``Q = KnmKmm⁻¹Kmn + diag(Λ)``, and predictions use the DTC
predictive variance (same marginal likelihood, but the variance behaves
like a GP's far from data instead of collapsing to zero — essential for
the exploration term of BO acquisitions).  Fit is O(n·m²), prediction is
O(m²) per point, and at m = n the model reproduces the exact GP's mean,
variance and likelihood (covered by property tests).

Inducing points are chosen by deterministic greedy max-variance —
pivoted-Cholesky selection on the latent kernel — so the same data and
hyperparameters always produce the same model; the optional RNG only
seeds the multi-start likelihood optimization, exactly like the exact
regressor.
"""

from __future__ import annotations

import copy
import math

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular
from scipy.optimize import minimize

from ..obs import as_tracer
from ..utils.parallel import parallel_map
from ..utils.rng import as_generator
from .gpr import default_bo_kernel
from .kernels import Kernel

__all__ = ["LowRankGaussianProcessRegressor", "select_inducing"]

_LOG_2PI = math.log(2.0 * math.pi)

#: Conditional-variance floor below which greedy selection stops early:
#: remaining points are numerically inside the span of the chosen set.
_SELECT_FLOOR = 1e-12


def select_inducing(kernel: Kernel, X: np.ndarray, m: int) -> np.ndarray:
    """Indices of ``min(m, n)`` inducing points via greedy max-variance.

    Pivoted-Cholesky selection on the latent kernel: each step picks the
    point with the largest conditional prior variance given the points
    already chosen, then downdates the remaining variances — equivalent
    to greedily minimizing the Nyström trace error.  Deterministic: ties
    break toward the lowest index and no random numbers are drawn.  Runs
    in O(n·m²) time and O(n·m) memory; kernel columns are computed on
    demand so the full n×n covariance is never formed.
    """
    n = X.shape[0]
    m = min(m, n)
    d = kernel.latent_diag(X).astype(float).copy()
    rows = np.empty((m, n))
    chosen: list[int] = []
    for j in range(m):
        i = int(np.argmax(d))
        if d[i] <= _SELECT_FLOOR:
            break
        col = kernel(X, X[i:i + 1])[:, 0]
        if j:
            col = col - rows[:j].T @ rows[:j, i]
        rows[j] = col / math.sqrt(d[i])
        d -= rows[j] ** 2
        np.maximum(d, 0.0, out=d)
        d[i] = 0.0
        chosen.append(i)
    return np.asarray(chosen, dtype=int)


class LowRankGaussianProcessRegressor:
    """SoR/DTC approximation of :class:`~repro.gp.GaussianProcessRegressor`.

    Drop-in for the exact regressor: identical constructor semantics plus
    ``n_inducing``, and the full prediction API (``fit`` / ``update`` /
    ``predict`` / ``fast_predict`` / ``predict_with_gradient`` /
    ``log_marginal_likelihood``), so :class:`repro.core.BOEngine`, the
    acquisition portfolio and :class:`repro.core.LocalPenalizer` work
    unchanged.

    Parameters mirror the exact GP; additionally:

    n_inducing:
        Maximum number of inducing points m.  Fit costs O(n·m²) and each
        prediction O(m²); at ``m >= n`` the model equals the exact GP.

    ``update`` never re-optimizes hyperparameters and always equals an
    ``optimize=False`` fit from scratch on the concatenated data — with
    an O(n·m²) refit there is nothing to gain from incremental
    factorization, and the exact-equality property keeps warm-started
    sessions reproducible.
    """

    def __init__(self, kernel: Kernel | None = None, *,
                 n_inducing: int = 96, alpha: float = 1e-10,
                 normalize_y: bool = True, n_restarts: int = 2,
                 optimize: bool = True, analytic_gradients: bool = False,
                 n_jobs: int | None = None,
                 rng: np.random.Generator | int | None = None,
                 tracer=None):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if n_inducing < 1:
            raise ValueError("n_inducing must be >= 1")
        self.kernel = copy.deepcopy(kernel) if kernel is not None \
            else default_bo_kernel()
        self.n_inducing = n_inducing
        self.alpha = alpha
        self.normalize_y = normalize_y
        self.n_restarts = n_restarts
        self.optimize = optimize
        self.analytic_gradients = analytic_gradients
        self.n_jobs = n_jobs
        self.rng = rng
        self.tracer = as_tracer(tracer)
        self._fitted = False

    # -- fitting ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray
            ) -> "LowRankGaussianProcessRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if y.shape != (X.shape[0],):
            raise ValueError("y must be 1-D with len(y) == len(X)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._X = X
        self._normalize_targets(y)
        # Inducing points are chosen once per fit, at the incoming
        # hyperparameters, and held fixed through likelihood optimization:
        # a moving support would make the objective discontinuous.
        self._inducing = select_inducing(self.kernel, X, self.n_inducing)
        self._Z = X[self._inducing]

        optimized = self.optimize and X.shape[0] >= 2
        with self.tracer.timer("gp.fit"):
            if optimized:
                self._optimize_theta()
            self._precompute()
        self._fitted = True
        self.tracer.emit("gp.fit", {"n": int(X.shape[0]),
                                    "optimized": bool(optimized),
                                    "incremental": False,
                                    "theta": self.kernel.theta,
                                    "mode": "lowrank",
                                    "m": int(self._Z.shape[0])})
        return self

    def update(self, X: np.ndarray, y: np.ndarray
               ) -> "LowRankGaussianProcessRegressor":
        """Refit on the (typically extended) data without re-optimizing.

        Exactly equal to ``fit`` with ``optimize=False`` on the same
        arrays — including re-running inducing selection, since appended
        observations can shift which points best summarize the set.
        """
        saved_optimize = self.optimize
        self.optimize = False
        try:
            return self.fit(X, y)
        finally:
            self.optimize = saved_optimize

    def _normalize_targets(self, y: np.ndarray) -> None:
        self._y_raw = y.copy()
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std())
            if self._y_std == 0.0:
                self._y_std = 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std

    def _noise_diag(self, kernel: Kernel) -> np.ndarray:
        """Per-point observation-noise variance Λ (white noise + jitter)."""
        lam = kernel.diag(self._X) - kernel.latent_diag(self._X) + self.alpha
        return np.maximum(lam, _SELECT_FLOOR)

    def _factor(self, kernel: Kernel, jitter: float):
        """Shared SoR factorization at the kernel's current theta.

        Returns ``(Lm, V, LB, lam)`` where ``Lm = chol(Kmm + jitter·I)``,
        ``V = Lm⁻¹Kmn`` scaled by ``Λ^{-1/2}`` column-wise is used to form
        ``B = I + VΛ⁻¹Vᵀ`` with ``LB = chol(B)``.  Raises
        ``np.linalg.LinAlgError`` if Kmm is not positive definite at this
        jitter level.
        """
        Z, X = self._Z, self._X
        Kmm = kernel(Z, Z)
        Kmm[np.diag_indices_from(Kmm)] += jitter
        Lm = np.linalg.cholesky(Kmm)
        Kmn = kernel(Z, X)
        V = solve_triangular(Lm, Kmn, lower=True, check_finite=False)
        lam = self._noise_diag(kernel)
        Vs = V / np.sqrt(lam)[None, :]
        B = Vs @ Vs.T
        B[np.diag_indices_from(B)] += 1.0
        LB = np.linalg.cholesky(B)
        return Lm, V, LB, lam

    def _nll(self, theta: np.ndarray, kernel: Kernel | None = None) -> float:
        """Negative log marginal likelihood of the SoR model at *theta*.

        ``NLL = ½[yᵀQσ⁻¹y + log|Qσ| + n log 2π]`` with
        ``Qσ = KnmKmm⁻¹Kmn + diag(Λ)``; both terms reduce to the m×m
        factor B via the matrix-inversion and determinant lemmas:
        ``log|Qσ| = log|B| + Σᵢ log Λᵢ`` and
        ``yᵀQσ⁻¹y = yᵀΛ⁻¹y − ‖LB⁻¹VΛ⁻¹y‖²``.
        """
        kernel = self.kernel if kernel is None else kernel
        kernel.theta = theta
        jitter = self.alpha if self.alpha > 0 else 1e-10
        try:
            Lm, V, LB, lam = self._factor(kernel, jitter)
        except np.linalg.LinAlgError:
            return 1e25
        yt = self._y / np.sqrt(lam)
        beta = (V / np.sqrt(lam)[None, :]) @ yt
        gamma = solve_triangular(LB, beta, lower=True, check_finite=False)
        n = self._X.shape[0]
        logdet = 2.0 * float(np.sum(np.log(np.diag(LB)))) \
            + float(np.sum(np.log(lam)))
        quad = float(yt @ yt) - float(gamma @ gamma)
        return 0.5 * (quad + logdet + n * _LOG_2PI)

    def _nll_and_grad(self, theta: np.ndarray, kernel: Kernel
                      ) -> tuple[float, np.ndarray]:
        """NLL and its exact theta-gradient in O(n·m²) per parameter.

        The trace identity ``∂NLL/∂θ = ½ tr(P ∂Qσ/∂θ)`` with
        ``P = Qσ⁻¹ − ααᵀ`` is contracted against the low-rank structure
        ``∂Qσ/∂θ = ĠᵀA + AᵀĠ − AᵀK̇mmA + diag(λ̇)`` (``A = Kmm⁻¹Kmn``)
        without ever forming an n×n matrix: the three pieces become
        elementwise sums against ``AP`` (m×n), ``APAᵀ`` (m×m) and
        ``diag(P)`` (n).
        """
        kernel.theta = theta
        jitter = self.alpha if self.alpha > 0 else 1e-10
        Z, X = self._Z, self._X
        Kmm, dKmm = kernel.cross_value_and_theta_gradient(Z, Z)
        Kmm[np.diag_indices_from(Kmm)] += jitter
        try:
            Lm = np.linalg.cholesky(Kmm)
        except np.linalg.LinAlgError:
            return 1e25, np.zeros(len(theta))
        Kmn, dKmn = kernel.cross_value_and_theta_gradient(Z, X)
        diag_all, ddiag = kernel.diag_theta_gradient(X)
        latent, dlatent = kernel.latent_diag_theta_gradient(X)
        lam = np.maximum(diag_all - latent + self.alpha, _SELECT_FLOOR)
        dlam = [gd - gl for gd, gl in zip(ddiag, dlatent)]

        sqrt_lam = np.sqrt(lam)
        V = solve_triangular(Lm, Kmn, lower=True, check_finite=False)
        Vs = V / sqrt_lam[None, :]
        B = Vs @ Vs.T
        B[np.diag_indices_from(B)] += 1.0
        LB_factor = cho_factor(B, lower=True)
        LB = np.tril(LB_factor[0])

        n = X.shape[0]
        yt = self._y / sqrt_lam
        beta = Vs @ yt
        gamma = solve_triangular(LB, beta, lower=True, check_finite=False)
        logdet = 2.0 * float(np.sum(np.log(np.diag(LB)))) \
            + float(np.sum(np.log(lam)))
        quad = float(yt @ yt) - float(gamma @ gamma)
        nll = 0.5 * (quad + logdet + n * _LOG_2PI)

        # α = Qσ⁻¹y = (y − Kmnᵀ w)/Λ with w = Lm⁻ᵀB⁻¹VΛ⁻¹y.
        c = cho_solve(LB_factor, beta, check_finite=False)
        w = solve_triangular(Lm, c, lower=True, trans="T", check_finite=False)
        alpha_vec = (self._y - Kmn.T @ w) / lam
        # A = Kmm⁻¹Kmn and AP = AQσ⁻¹ − (Aα)αᵀ, both m×n.
        A = solve_triangular(Lm, V, lower=True, trans="T", check_finite=False)
        D = A / lam[None, :]
        G1 = D @ Kmn.T
        R = solve_triangular(
            Lm, cho_solve(LB_factor, V / lam[None, :], check_finite=False),
            lower=True, trans="T", check_finite=False)
        AP = D - G1 @ R - np.outer(A @ alpha_vec, alpha_vec)
        W = AP @ A.T
        # diag(P) = 1/Λ − colsum((LB⁻¹V)²)/Λ² − α².
        U = solve_triangular(LB, V, lower=True, check_finite=False)
        diag_p = 1.0 / lam - np.sum(U ** 2, axis=0) / lam ** 2 \
            - alpha_vec ** 2
        grad = np.array([
            float(np.sum(AP * g_mn)) - 0.5 * float(np.sum(W * g_mm))
            + 0.5 * float(diag_p @ g_lam)
            for g_mn, g_mm, g_lam in zip(dKmn, dKmm, dlam)])
        return nll, grad

    def _kernel_has_theta_gradient(self) -> bool:
        try:
            self.kernel.cross_value_and_theta_gradient(self._Z[:1],
                                                       self._X[:1])
            self.kernel.diag_theta_gradient(self._X[:1])
            self.kernel.latent_diag_theta_gradient(self._X[:1])
        except NotImplementedError:
            return False
        return True

    def log_marginal_likelihood(self, theta: np.ndarray | None = None) -> float:
        """Log marginal likelihood at *theta* (default: current kernel)."""
        if theta is None:
            theta = self.kernel.theta
        saved = self.kernel.theta
        try:
            return -self._nll(np.asarray(theta, dtype=float))
        finally:
            self.kernel.theta = saved

    def _optimize_theta(self) -> None:
        rng = as_generator(self.rng)
        bounds = self.kernel.bounds
        starts = [self.kernel.theta]
        for _ in range(self.n_restarts):
            starts.append(rng.uniform(bounds[:, 0], bounds[:, 1]))
        use_grad = self.analytic_gradients and self._kernel_has_theta_gradient()

        def _run_start(start: np.ndarray) -> tuple[float, np.ndarray]:
            kernel = copy.deepcopy(self.kernel)
            if use_grad:
                res = minimize(self._nll_and_grad, start, args=(kernel,),
                               jac=True, method="L-BFGS-B",
                               bounds=bounds, options={"maxiter": 100})
            else:
                res = minimize(self._nll, start, args=(kernel,),
                               method="L-BFGS-B",
                               bounds=bounds, options={"maxiter": 100})
            return float(res.fun), res.x

        results = parallel_map(_run_start, starts, n_jobs=self.n_jobs,
                               backend="thread", tracer=self.tracer)
        best_theta, best_nll = self.kernel.theta, np.inf
        for fun, x in results:
            if fun < best_nll:
                best_nll, best_theta = fun, x
        self.kernel.theta = best_theta

    def _precompute(self) -> None:
        jitter = self.alpha if self.alpha > 0 else 1e-10
        for _ in range(8):
            try:
                Lm, V, LB, lam = self._factor(self.kernel, jitter)
                break
            except np.linalg.LinAlgError:
                jitter *= 10.0
        else:  # pragma: no cover - pathological kernels only
            raise np.linalg.LinAlgError(
                "inducing covariance not positive definite")
        self._Lm, self._LB = Lm, LB
        yt = self._y / np.sqrt(lam)
        beta = (V / np.sqrt(lam)[None, :]) @ yt
        c = solve_triangular(LB, beta, lower=True, check_finite=False)
        c = solve_triangular(LB, c, lower=True, trans="T", check_finite=False)
        # Mean weights in inducing space: μ(x) = k(x, Z)ᵀ w.
        self._weights = solve_triangular(Lm, c, lower=True, trans="T",
                                         check_finite=False)
        self._theta_chol = self.kernel.theta.copy()

    # -- prediction ---------------------------------------------------------------
    def _mean_var(self, X: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Normalized posterior mean and DTC variance at *X*.

        ``var = k** − ‖Lm⁻¹k*‖² + ‖LB⁻¹Lm⁻¹k*‖²`` — prior variance minus
        the Nyström explained part, plus the posterior uncertainty of the
        inducing values; far from data it approaches the prior variance
        like the exact GP's.  Also returns the two triangular solves for
        gradient reuse.
        """
        Ks = self.kernel(X, self._Z)
        mean = Ks @ self._weights
        a = solve_triangular(self._Lm, Ks.T, lower=True, check_finite=False)
        t = solve_triangular(self._LB, a, lower=True, check_finite=False)
        var = self.kernel.latent_diag(X) - np.sum(a ** 2, axis=0) \
            + np.sum(t ** 2, axis=0)
        return mean, var, a, t

    def predict(self, X: np.ndarray, return_std: bool = False):
        """Posterior mean (and optionally std) at *X*; same contract as
        the exact regressor, including the latent-variance convention."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._X.shape[1]:
            raise ValueError(f"X must have shape (n, {self._X.shape[1]})")
        self.tracer.count("gp.predict")
        self.tracer.count("gp.predict.points", X.shape[0])
        mean, var, _, _ = self._mean_var(X)
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def fast_predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Mean and std without validation or counters — the refinement
        hot path.  Arithmetic identical to :meth:`predict`."""
        mean, var, _, _ = self._mean_var(X)
        mean = mean * self._y_std + self._y_mean
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def predict_with_gradient(self, x: np.ndarray
                              ) -> tuple[float, float, np.ndarray, np.ndarray]:
        """Mean/std at a single point plus their input gradients.

        Same return contract as the exact regressor: ``(mu, sigma, dmu,
        dsigma)`` with the σ-gradient zeroed when the variance hits the
        numerical floor.
        """
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        x = np.asarray(x, dtype=float)
        xq = x[None, :]
        mean, var, a, t = self._mean_var(xq)
        mean = mean * self._y_std + self._y_mean
        clipped = var[0] < 1e-12
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        dk = self.kernel.input_gradient(x, self._Z)
        dmu = (dk.T @ self._weights) * self._y_std
        if clipped:
            dsigma = np.zeros_like(x)
        else:
            g = solve_triangular(self._Lm, dk, lower=True, check_finite=False)
            h = solve_triangular(self._LB, g, lower=True, check_finite=False)
            dvar = -2.0 * (g.T @ a[:, 0]) + 2.0 * (h.T @ t[:, 0])
            dsigma = dvar / (2.0 * float(np.sqrt(var[0]))) * self._y_std
        return float(mean[0]), float(std[0]), dmu, dsigma

    @property
    def X_train_(self) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        return self._X

    @property
    def y_train_(self) -> np.ndarray:
        """Training targets in original (denormalized) units."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        return self._y * self._y_std + self._y_mean

    @property
    def inducing_indices_(self) -> np.ndarray:
        """Row indices of the training points used as inducing points."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted")
        return self._inducing
