"""Retry policy for transient evaluation failures (docs/ROBUSTNESS.md).

Only *transient* outcomes are retried — a configuration-caused failure
(OOM, Kryo overflow, guard kill on a genuinely slow run) is information
the surrogate model must see, and retrying it would only re-pay cluster
time for the same answer.  Every failed attempt's wall-clock and every
backoff wait is charged to search cost: a real cluster would have spent
that time too.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient failures.

    Parameters
    ----------
    max_retries:
        Additional attempts after the first (0 disables retrying).
    backoff_s:
        Wait before the first retry.
    backoff_factor:
        Multiplier applied per subsequent retry
        (wait for retry *k* = ``backoff_s * backoff_factor**k``).
    """

    max_retries: int = 2
    backoff_s: float = 5.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay_s(self, retry: int) -> float:
        """Backoff wait before 0-based retry number *retry*."""
        if retry < 0:
            raise ValueError("retry must be >= 0")
        return float(self.backoff_s * self.backoff_factor ** retry)
