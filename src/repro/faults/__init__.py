"""Resilience layer: deterministic fault injection and retry policies.

See docs/ROBUSTNESS.md for the fault taxonomy, retry semantics and how
this composes with the crash-safe evaluation journal
(:mod:`repro.core.journal`).
"""

from .injector import FaultInjector, HangInjector, WorkerDeath
from .plan import FAULT_KINDS, FaultEvent, FaultPlan, HangEvent, HangPlan
from .retry import RetryPolicy

__all__ = ["FaultPlan", "FaultEvent", "FaultInjector", "RetryPolicy",
           "FAULT_KINDS", "HangPlan", "HangEvent", "HangInjector",
           "WorkerDeath"]
