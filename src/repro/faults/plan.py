"""Deterministic transient-fault plans (docs/ROBUSTNESS.md).

A :class:`FaultPlan` is a pure function from ``(evaluation index, attempt
number)`` to a :class:`FaultEvent` or ``None``: every draw comes from a
generator seeded with ``SeedSequence(seed, index, attempt)``, so the plan
has no mutable state, the same coordinates always yield the same fault,
and retrying an evaluation (attempt + 1) re-rolls the dice independently —
exactly how a transient cluster fault behaves.

Fault taxonomy (weights sum to 1 by construction):

===================  =============================================  =========
kind                 effect on the wrapped evaluation               share
===================  =============================================  =========
executor_loss        50/50: job aborts early, or the lost
                     executor's tasks are recomputed
                     (1.3–2.2x slowdown)                            0.35
straggler_node       one slow node stretches the critical path
                     (1.5–3.0x slowdown)                            0.25
network_degradation  shuffle fetch over a degraded link
                     (1.2–2.2x slowdown)                            0.25
spurious_failure     the evaluation dies for no configuration
                     reason (driver RPC drop, lost heartbeat)       0.15
===================  =============================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS",
           "HangEvent", "HangPlan"]

#: (kind, selection weight) — must stay in a stable order for determinism.
FAULT_KINDS: tuple[tuple[str, float], ...] = (
    ("executor_loss", 0.35),
    ("straggler_node", 0.25),
    ("network_degradation", 0.25),
    ("spurious_failure", 0.15),
)

#: Per-kind slowdown ranges for non-aborting faults.
_SLOWDOWN_RANGES = {
    "executor_loss": (1.3, 2.2),
    "straggler_node": (1.5, 3.0),
    "network_degradation": (1.2, 2.2),
}

#: Aborting faults surface after this fraction of the run's natural time.
_ABORT_FRACTION_RANGE = (0.05, 0.6)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: either an abort or a multiplicative slowdown."""

    kind: str
    aborts: bool
    #: duration multiplier for slowdown faults (1.0 when aborting).
    slowdown: float = 1.0
    #: fraction of the natural run time elapsed before an abort surfaced.
    abort_fraction: float = 0.0


class FaultPlan:
    """Seeded map from ``(evaluation index, attempt)`` to faults.

    Parameters
    ----------
    rate:
        Per-attempt probability of injecting a fault, in ``[0, 1]``.
    seed:
        Plan identity; two plans with the same ``(rate, seed)`` inject
        identical faults at identical coordinates.
    kinds:
        ``(name, weight)`` pairs restricting/reweighting the taxonomy
        (default: all four kinds with the documented shares).
    """

    def __init__(self, rate: float, seed: int = 0,
                 kinds: tuple[tuple[str, float], ...] = FAULT_KINDS):
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        unknown = {k for k, _ in kinds} - {k for k, _ in FAULT_KINDS}
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        total = float(sum(w for _, w in kinds))
        if total <= 0:
            raise ValueError("kind weights must sum to a positive value")
        self.rate = rate
        self.seed = int(seed)
        self._names = tuple(k for k, _ in kinds)
        self._weights = np.asarray([w / total for _, w in kinds])

    def draw(self, index: int, attempt: int = 0) -> FaultEvent | None:
        """The fault (or None) for one evaluation attempt.

        Pure: depends only on ``(rate, seed, kinds, index, attempt)``.
        """
        if index < 0 or attempt < 0:
            raise ValueError("index and attempt must be non-negative")
        if self.rate == 0.0:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(index, attempt)))
        if rng.random() >= self.rate:
            return None
        kind = self._names[int(rng.choice(len(self._names), p=self._weights))]
        if kind == "spurious_failure" or (kind == "executor_loss"
                                          and rng.random() < 0.5):
            return FaultEvent(kind, aborts=True,
                              abort_fraction=float(
                                  rng.uniform(*_ABORT_FRACTION_RANGE)))
        lo, hi = _SLOWDOWN_RANGES[kind]
        return FaultEvent(kind, aborts=False,
                          slowdown=float(rng.uniform(lo, hi)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(rate={self.rate}, seed={self.seed})"


@dataclass(frozen=True)
class HangEvent:
    """A liveness fault: the worker hangs or dies mid-evaluation.

    ``kind`` is ``"hang"`` (the evaluation wedges for ``hang_s`` of real
    wall-clock time — bounded, so tests stay fast) or ``"worker_death"``
    (the worker thread dies before producing a result).
    """

    kind: str
    hang_s: float = 0.0


class HangPlan:
    """Deterministic liveness-fault plan for the supervision layer.

    Same pure-coordinate contract as :class:`FaultPlan` — the draw for
    ``(index, attempt)`` depends only on the constructor arguments — but
    the injected trouble is about *liveness*, not outcomes: hangs and
    worker deaths are what deadlines, heartbeat reclaim and speculative
    re-execution exist to absorb (docs/ROBUSTNESS.md).

    Parameters
    ----------
    rate:
        Probability an evaluation attempt draws a liveness fault.
    seed:
        Plan seed.
    hang_s:
        Real seconds a hanging evaluation wedges before returning (the
        supervisor's deadline should fire well before this).
    death_share:
        Fraction of liveness faults that are worker deaths rather than
        hangs.
    poison:
        Optional set of evaluation *indices* that always hang, every
        attempt — a deterministic "poison config" for quarantine tests.
    """

    def __init__(self, rate: float, seed: int = 0, *, hang_s: float = 5.0,
                 death_share: float = 0.5,
                 poison: frozenset[int] | set[int] = frozenset()):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"hang rate must be in [0, 1], got {rate}")
        if hang_s < 0:
            raise ValueError("hang_s must be >= 0")
        if not 0.0 <= death_share <= 1.0:
            raise ValueError("death_share must be in [0, 1]")
        self.rate = float(rate)
        self.seed = int(seed)
        self.hang_s = float(hang_s)
        self.death_share = float(death_share)
        self.poison = frozenset(poison)

    def draw(self, index: int, attempt: int = 0) -> HangEvent | None:
        """The liveness fault (or None) for one evaluation attempt."""
        if index < 0 or attempt < 0:
            raise ValueError("index and attempt must be non-negative")
        if index in self.poison:
            return HangEvent("hang", hang_s=self.hang_s)
        if self.rate == 0.0:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(index, attempt)))
        if rng.random() >= self.rate:
            return None
        if rng.random() < self.death_share:
            return HangEvent("worker_death")
        return HangEvent("hang", hang_s=self.hang_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HangPlan(rate={self.rate}, seed={self.seed}, "
                f"hang_s={self.hang_s})")
