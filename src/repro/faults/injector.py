"""Transient-fault injection around a workload objective.

:class:`FaultInjector` is a drop-in :class:`~repro.tuners.base.Objective`:
it executes every configuration through the wrapped objective and then
applies the :class:`~repro.faults.plan.FaultPlan`'s verdict for that
``(evaluation index, attempt)`` coordinate — an abort, a slowdown, or
nothing.  Because the wrapped objective is *always* executed first, the
simulator's noise stream advances identically whether or not a fault
fires, so fault-rate sweeps compare the same underlying runs.

Outcome semantics:

* A **config-caused failure** (OOM, runtime error, ...) surfaces as-is —
  the fault is moot, the model must see the bad region.
* An **aborting fault** turns the run into a transient failure: a
  fraction of the natural wall-clock was spent, the result is censored,
  and ``transient=True`` marks it as environmental.
* A **slowdown fault** stretches the run.  If it still finishes under the
  enforced limit the evaluation succeeds with an inflated time (ordinary
  environment noise, ``transient=False``); if it crosses the limit it
  becomes a transient timeout.

With a :class:`~repro.faults.retry.RetryPolicy`, transient outcomes are
re-attempted (each attempt re-rolls the plan at ``attempt + 1``); all
failed attempts' wall-clock plus the exponential-backoff waits are charged
to the returned evaluation's ``cost_s``.  Config-caused outcomes are never
retried, so only genuinely bad configurations are censored into the
surrogate model.
"""

from __future__ import annotations

import threading
from dataclasses import replace

import numpy as np

from ..obs import as_tracer
from ..sparksim.result import RunStatus
from ..tuners.base import Evaluation
from .plan import FaultEvent, FaultPlan, HangEvent, HangPlan
from .retry import RetryPolicy

__all__ = ["FaultInjector", "HangInjector", "WorkerDeath"]


class FaultInjector:
    """Wrap an objective with deterministic fault injection and retries.

    Parameters
    ----------
    objective:
        The wrapped objective (typically a
        :class:`~repro.tuners.objective.WorkloadObjective`).
    plan:
        Seeded fault plan; ``(index, attempt)`` draws are pure.
    retry:
        Retry policy for transient outcomes; ``None`` returns the first
        attempt unconditionally.
    tracer:
        Optional :class:`repro.obs.Tracer`; every injected fault emits a
        ``fault.injected`` event and every retry a ``retry.attempt``
        event.  Shared by ``with_space`` views, like the counters.
    """

    def __init__(self, objective, plan: FaultPlan,
                 retry: RetryPolicy | None = None, tracer=None):
        self._objective = objective
        self.plan = plan
        self.retry = retry
        self.tracer = as_tracer(tracer)
        # Shared across with_space/spawn_view views so the evaluation
        # index (the fault plan's coordinate) is global to the tuning
        # session; the lock keeps index claims atomic when views run
        # concurrently under async_workers > 1.
        self._shared = {"index": 0, "injected": 0, "transient": 0,
                        "retries": 0, "backoff_s": 0.0,
                        "lock": threading.Lock()}

    # -- Objective protocol -------------------------------------------------------
    @property
    def space(self):
        return self._objective.space

    @property
    def time_limit_s(self) -> float:
        return self._objective.time_limit_s

    def with_space(self, space) -> "FaultInjector":
        """Re-bound view sharing the plan, retry policy and fault index."""
        clone = object.__new__(FaultInjector)
        clone.__dict__ = dict(self.__dict__)
        clone._objective = self._objective.with_space(space)
        return clone

    def spawn_view(self) -> "FaultInjector":
        """A view for one concurrent evaluation (async dispatch path).

        The view wraps a freshly spawned view of the inner objective but
        shares the fault-plan index, counters and retry policy, so
        retries with backoff run *on the worker* — charged to the
        returned evaluation's ``cost_s`` exactly as in the serial loop.
        """
        clone = object.__new__(FaultInjector)
        clone.__dict__ = dict(self.__dict__)
        clone._objective = self._objective.spawn_view()
        return clone

    @property
    def spawn_view_capable(self) -> bool:
        """True when the wrapped objective can actually spawn views."""
        inner = self.__dict__["_objective"]
        if getattr(type(inner), "spawn_view", None) is None:
            return False
        return bool(getattr(inner, "spawn_view_capable", True))

    def __getattr__(self, name: str):
        # Delegate everything else (workload, simulator, n_evaluations,
        # rng_state/set_rng_state, ...) to the wrapped objective.
        return getattr(self.__dict__["_objective"], name)

    def skip(self, n: int = 1) -> None:
        """Advance the fault-plan index without executing (journal replay)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        with self._shared["lock"]:
            self._shared["index"] += n

    @property
    def stats(self) -> dict:
        """Injection counters: injected, transient, retries, backoff_s."""
        return {k: v for k, v in self._shared.items() if k != "lock"}

    # -- evaluation ---------------------------------------------------------------
    def __call__(self, u: np.ndarray,
                 time_limit_s: float | None = None) -> Evaluation:
        with self._shared["lock"]:
            index = self._shared["index"]
            self._shared["index"] = index + 1
        max_attempts = 1 + (self.retry.max_retries if self.retry else 0)
        spent = 0.0
        for attempt in range(max_attempts):
            ev = self._attempt(u, time_limit_s, index, attempt)
            if ev.transient and attempt + 1 < max_attempts:
                wait = self.retry.delay_s(attempt)
                spent += ev.cost_s + wait
                with self._shared["lock"]:
                    self._shared["retries"] += 1
                    self._shared["backoff_s"] += wait
                self.tracer.emit("retry.attempt",
                                 {"index": index, "attempt": attempt,
                                  "wait_s": float(wait)})
                self.tracer.count("retries")
                continue
            break
        if ev.transient:
            with self._shared["lock"]:
                self._shared["transient"] += 1
        if spent > 0.0 or attempt > 0:
            ev = replace(ev, cost_s=ev.cost_s + spent, attempts=attempt + 1)
        return ev

    def _attempt(self, u: np.ndarray, time_limit_s: float | None,
                 index: int, attempt: int) -> Evaluation:
        event = self.plan.draw(index, attempt)
        ev = self._objective(u, time_limit_s)
        if event is None:
            return ev
        with self._shared["lock"]:
            self._shared["injected"] += 1
        self.tracer.emit("fault.injected",
                         {"index": index, "attempt": attempt,
                          "kind": event.kind, "aborts": bool(event.aborts)})
        self.tracer.count("faults.injected")
        if not ev.ok:
            # Config-caused failure dominates: the fault changes nothing
            # the tuner should learn from.
            return ev
        if event.aborts:
            return self._aborted(ev, event)
        return self._slowed(ev, event, time_limit_s)

    def _aborted(self, ev: Evaluation, event: FaultEvent) -> Evaluation:
        """Transient abort after a fraction of the natural run time."""
        return replace(
            ev,
            objective=self._censor(ev.config, None),
            cost_s=float(ev.cost_s * event.abort_fraction),
            status=RunStatus.RUNTIME_ERROR,
            truncated=False,
            transient=True,
            fault=event.kind,
        )

    def _slowed(self, ev: Evaluation, event: FaultEvent,
                time_limit_s: float | None) -> Evaluation:
        limit = self.time_limit_s
        if time_limit_s is not None:
            limit = min(limit, float(time_limit_s))
        slowed_s = ev.cost_s * event.slowdown
        if slowed_s > limit:
            # The stretched run crosses the enforced cap: killed, but by
            # the environment — a transient timeout, censored at the
            # limit that actually stopped it.
            return replace(
                ev,
                objective=self._censor(ev.config, limit),
                cost_s=float(limit),
                status=RunStatus.TIMEOUT,
                truncated=True,
                transient=True,
                fault=event.kind,
            )
        return replace(
            ev,
            objective=self._metric(ev, slowed_s),
            cost_s=float(slowed_s),
            transient=False,
            fault=event.kind,
        )

    # -- metric plumbing ----------------------------------------------------------
    def _metric(self, ev: Evaluation, duration_s: float) -> float:
        """Objective value at a stretched duration.

        Uses the wrapped objective's metric when exposed; otherwise scales
        the observed value proportionally (exact for metrics linear in
        duration, which both built-in metrics are).
        """
        metric = getattr(self._objective, "metric_value", None)
        if metric is not None:
            return float(metric(duration_s, ev.config))
        return float(ev.objective * duration_s / max(ev.cost_s, 1e-12))

    def _censor(self, config, limit_s: float | None) -> float:
        """Censoring value at *limit_s* (None = the objective's full cap)."""
        censor = getattr(self._objective, "censor_value", None)
        if censor is not None:
            return float(censor(config, limit_s))
        return float(limit_s if limit_s is not None else self.time_limit_s)


class WorkerDeath(RuntimeError):
    """An injected worker death: the evaluation's worker died mid-run.

    Raised *before* the wrapped objective executes, so a supervised
    redispatch re-runs the evaluation from scratch — exactly what a real
    evaluator process crash looks like to the engine.
    """


class HangInjector:
    """Wrap an objective with deterministic liveness faults.

    The liveness analogue of :class:`FaultInjector`: where that class
    perturbs *outcomes* (aborts, slowdowns), this one perturbs
    *liveness* — the evaluation hangs for a bounded stretch of real
    wall-clock time, or its worker dies outright
    (:class:`WorkerDeath`).  It exists to exercise the supervision layer
    (``repro.supervise``): deadlines, heartbeat reclaim, speculation and
    poison-config quarantine.

    Parameters
    ----------
    objective:
        The wrapped objective (or another injector).
    plan:
        A :class:`~repro.faults.plan.HangPlan`.
    poison:
        Optional predicate on the unit-cube vector; a matching config
        *always* draws ``poison_kind``, every attempt — a deterministic
        repeat offender for quarantine tests.
    poison_kind:
        ``"worker_death"`` (default) or ``"hang"``.
    tracer:
        Optional tracer; each injection emits a ``fault.injected`` event.
    """

    def __init__(self, objective, plan: HangPlan, *, poison=None,
                 poison_kind: str = "worker_death", tracer=None):
        if poison_kind not in ("worker_death", "hang"):
            raise ValueError(
                f"poison_kind must be 'worker_death' or 'hang', "
                f"got {poison_kind!r}")
        self._objective = objective
        self.plan = plan
        self.tracer = as_tracer(tracer)
        self._poison = poison
        self._poison_kind = poison_kind
        self._shared = {"index": 0, "hangs": 0, "deaths": 0,
                        "lock": threading.Lock()}

    # -- Objective protocol -------------------------------------------------------
    @property
    def space(self):
        return self._objective.space

    @property
    def time_limit_s(self) -> float:
        return self._objective.time_limit_s

    def with_space(self, space) -> "HangInjector":
        clone = object.__new__(HangInjector)
        clone.__dict__ = dict(self.__dict__)
        clone._objective = self._objective.with_space(space)
        return clone

    def spawn_view(self) -> "HangInjector":
        clone = object.__new__(HangInjector)
        clone.__dict__ = dict(self.__dict__)
        clone._objective = self._objective.spawn_view()
        return clone

    @property
    def spawn_view_capable(self) -> bool:
        inner = self.__dict__["_objective"]
        if getattr(type(inner), "spawn_view", None) is None:
            return False
        return bool(getattr(inner, "spawn_view_capable", True))

    def __getattr__(self, name: str):
        return getattr(self.__dict__["_objective"], name)

    def skip(self, n: int = 1) -> None:
        """Advance the plan index without executing (journal replay)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        with self._shared["lock"]:
            self._shared["index"] += n
        inner_skip = getattr(self.__dict__["_objective"], "skip", None)
        if inner_skip is not None:
            inner_skip(n)

    @property
    def stats(self) -> dict:
        """Injection counters: index, hangs, deaths."""
        return {k: v for k, v in self._shared.items() if k != "lock"}

    # -- evaluation ---------------------------------------------------------------
    def __call__(self, u: np.ndarray,
                 time_limit_s: float | None = None) -> Evaluation:
        with self._shared["lock"]:
            index = self._shared["index"]
            self._shared["index"] = index + 1
        if self._poison is not None \
                and self._poison(np.asarray(u, dtype=float)):
            event = HangEvent(self._poison_kind, hang_s=self.plan.hang_s)
        else:
            event = self.plan.draw(index, 0)
        if event is not None:
            self.tracer.emit("fault.injected",
                             {"index": index, "attempt": 0,
                              "kind": event.kind,
                              "aborts": event.kind == "worker_death"})
            self.tracer.count("faults.injected")
            if event.kind == "worker_death":
                with self._shared["lock"]:
                    self._shared["deaths"] += 1
                raise WorkerDeath(
                    f"injected worker death at evaluation {index}")
            with self._shared["lock"]:
                self._shared["hangs"] += 1
            # A bounded *real* wall-clock wedge: the supervisor's
            # deadline should fire long before this returns.
            threading.Event().wait(event.hang_s)
        return self._objective(u, time_limit_s)
