"""Durable session store: a directory of journals plus an index file.

Layout (everything under one *root* directory)::

    root/
      index.json              # summary cache: {sid: {state, priority, ...}}
      index.lock              # transient pid lock serializing index updates
      daemon.json             # last daemon's pid + socket endpoint
      sessions/<sid>/
        spec.json             # the immutable SessionSpec
        state.json            # authoritative lifecycle state (fsync'd)
        journal.jsonl         # the session's EvaluationJournal (fsync'd)
        result.json           # settled outcome (written before DONE)
        lock                  # advisory claim lock while RUNNING
        cancel                # cancel-request marker
        trace-<n>.jsonl       # per-attempt obs traces

Durability and concurrency rules:

* ``state.json`` is the **source of truth**; every transition is written
  via write-to-temp → fsync → atomic rename → fsync(dir), so a crash
  leaves either the old or the new state, never a torn file.
* ``index.json`` is a cache over the per-session state files, updated
  under ``index.lock`` and always reconstructible bit-for-bit with
  :meth:`SessionStore.rebuild_index` (the hypothesis suite in
  ``tests/serve/test_store_properties.py`` holds the store to that).
* A session is claimed by creating ``lock`` with ``O_CREAT|O_EXCL`` —
  the filesystem is the arbiter, so two daemons sharing a store can
  never both claim one session.  A lock whose recorded pid is dead is
  *stale*; takeover renames it away (only one racer's rename succeeds)
  before re-claiming, which is how a restarted daemon adopts the
  sessions a killed daemon left RUNNING.
* Settling operations require the :class:`Claim` returned by
  :meth:`SessionStore.claim` and verify its token against the lock on
  disk, so a handle that lost its claim cannot corrupt a successor's.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from ..core.journal import EvaluationJournal
from ..obs import as_tracer
from .session import STATES, TERMINAL_STATES, TRANSITIONS, SessionSpec

__all__ = ["SessionStore", "Claim", "StaleClaimError"]

_INDEX_VERSION = 1


class StaleClaimError(RuntimeError):
    """A settle was attempted with a claim that no longer holds the lock."""


@dataclass(frozen=True)
class Claim:
    """Proof of ownership of one RUNNING session."""

    sid: str
    spec: SessionSpec
    token: str
    #: True when a prior journal exists: the runner must resume, not start.
    resumed: bool


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    return True


class SessionStore:
    """One handle onto a (possibly shared) session store directory.

    Handles are cheap; several may point at the same *root* from the
    same or different processes (client + daemon, or two daemons).  All
    cross-handle coordination happens through the filesystem.

    Parameters
    ----------
    root:
        Store directory; created on first use.
    tracer:
        Optional :class:`repro.obs.Tracer`; the store emits the
        ``serve.submit`` / ``serve.state`` events (docs/OBSERVABILITY.md).
    fsync:
        Force durability on every state write (disable only in tests
        where speed matters more than crash-safety).
    """

    def __init__(self, root: str | Path, *, tracer=None,
                 fsync: bool = True) -> None:
        self.root = Path(root)
        self._fsync = fsync
        self.tracer = as_tracer(tracer)
        self._local = threading.Lock()  # serializes THIS handle's claims

    # -- paths --------------------------------------------------------------------
    @property
    def sessions_dir(self) -> Path:
        return self.root / "sessions"

    def session_dir(self, sid: str) -> Path:
        return self.sessions_dir / sid

    def journal_path(self, sid: str) -> Path:
        return self.session_dir(sid) / "journal.jsonl"

    def next_trace_path(self, sid: str) -> Path:
        """A fresh per-attempt trace file (attempt 0 on first claim)."""
        directory = self.session_dir(sid)
        n = len(list(directory.glob("trace-*.jsonl")))
        return directory / f"trace-{n}.jsonl"

    def trace_paths(self, sid: str) -> list[Path]:
        return sorted(self.session_dir(sid).glob("trace-*.jsonl"))

    # -- durable writes -----------------------------------------------------------
    def _write_json(self, path: Path, payload: Mapping[str, Any]) -> None:
        """Atomic durable JSON write: temp → fsync → rename → fsync(dir)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True))
            fh.flush()
            if self._fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if self._fsync:
            fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    @staticmethod
    def _read_json(path: Path) -> dict[str, Any]:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    # -- index lock ---------------------------------------------------------------
    def _index_lock_path(self) -> Path:
        return self.root / "index.lock"

    def _acquire_index_lock(self, *, spin_s: float = 0.002) -> None:
        path = self._index_lock_path()
        self.root.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._takeover_stale(path):
                    continue
                time.sleep(spin_s)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(str(os.getpid()))
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            return

    @staticmethod
    def _force_takeover(path: Path) -> bool:
        """Rename-then-unlink a lock already judged stale.

        The rename is the race arbiter: the source disappears with the
        first winner, so exactly one racer takes a given stale lock
        over (the rest see FileNotFoundError and re-contend).
        """
        stale = path.with_name(f"{path.name}.stale.{os.getpid()}")
        try:
            os.rename(path, stale)
        except FileNotFoundError:
            return True
        stale.unlink(missing_ok=True)
        return True

    def _takeover_stale(self, path: Path) -> bool:
        """Remove *path* iff its recorded pid is dead; True if removed."""
        try:
            pid = int(path.read_text().strip() or "0")
        except (FileNotFoundError, ValueError):
            return True  # vanished or torn: retry the create immediately
        if pid and _pid_alive(pid):
            return False
        return self._force_takeover(path)

    def _release_index_lock(self) -> None:
        self._index_lock_path().unlink(missing_ok=True)

    # -- index --------------------------------------------------------------------
    def _index_path(self) -> Path:
        return self.root / "index.json"

    def _load_index_unlocked(self) -> dict[str, Any]:
        try:
            return self._read_json(self._index_path())
        except (FileNotFoundError, json.JSONDecodeError):
            return {"version": _INDEX_VERSION, "next_seq": 0, "sessions": {}}

    def load_index(self) -> dict[str, Any]:
        """The stored index (a cache; ``state.json`` files are the truth)."""
        return self._load_index_unlocked()

    def rebuild_index(self) -> dict[str, Any]:
        """Reconstruct the index purely from the per-session files on disk.

        The reconstruction must equal :meth:`load_index` after any
        sequence of store operations — the round-trip invariant the
        property suite pins.  It is also the recovery path when the
        index cache is lost or torn: ``next_seq`` is recomputed as one
        past the highest per-session sequence number.
        """
        sessions: dict[str, Any] = {}
        next_seq = 0
        if self.sessions_dir.exists():
            for directory in sorted(self.sessions_dir.iterdir()):
                state_path = directory / "state.json"
                spec_path = directory / "spec.json"
                if not state_path.exists() or not spec_path.exists():
                    continue  # torn submit: never made it into the index
                state = self._read_json(state_path)
                spec = self._read_json(spec_path)
                sessions[directory.name] = {
                    "state": state["state"],
                    "priority": int(spec.get("priority", 0)),
                    "seq": int(state["seq"]),
                    "workload": spec["workload"],
                    "dataset": spec.get("dataset", "D1"),
                }
                next_seq = max(next_seq, int(state["seq"]) + 1)
        return {"version": _INDEX_VERSION, "next_seq": next_seq,
                "sessions": sessions}

    def repair_index(self) -> dict[str, Any]:
        """Rewrite the index cache from disk (after torn/lost caches)."""
        self._acquire_index_lock()
        try:
            index = self.rebuild_index()
            self._write_json(self._index_path(), index)
        finally:
            self._release_index_lock()
        return index

    def _update_index(self, sid: str, summary: Mapping[str, Any]) -> None:
        self._acquire_index_lock()
        try:
            index = self._load_index_unlocked()
            entry = dict(index["sessions"].get(sid, {}))
            entry.update(summary)
            index["sessions"][sid] = entry
            index["next_seq"] = max(int(index.get("next_seq", 0)),
                                    int(entry.get("seq", -1)) + 1)
            self._write_json(self._index_path(), index)
        finally:
            self._release_index_lock()

    # -- submission ---------------------------------------------------------------
    def submit(self, spec: SessionSpec) -> str:
        """Accept a session: durably create its directory, PENDING."""
        self._acquire_index_lock()
        try:
            index = self._load_index_unlocked()
            seq = int(index.get("next_seq", 0))
            sid = f"s{seq:06d}-{os.urandom(4).hex()}"
            directory = self.session_dir(sid)
            directory.mkdir(parents=True, exist_ok=False)
            self._write_json(directory / "spec.json", spec.to_dict())
            self._write_json(directory / "state.json",
                             {"state": "PENDING", "seq": seq, "error": None})
            index["next_seq"] = seq + 1
            index["sessions"][sid] = {
                "state": "PENDING", "priority": int(spec.priority),
                "seq": seq, "workload": spec.workload,
                "dataset": spec.dataset,
            }
            self._write_json(self._index_path(), index)
        finally:
            self._release_index_lock()
        self.tracer.emit("serve.submit",
                         {"sid": sid, "workload": spec.workload,
                          "dataset": spec.dataset, "budget": int(spec.budget),
                          "seed": int(spec.seed),
                          "priority": int(spec.priority)})
        self.tracer.count("serve.submitted")
        return sid

    # -- reading ------------------------------------------------------------------
    def spec(self, sid: str) -> SessionSpec:
        try:
            payload = self._read_json(self.session_dir(sid) / "spec.json")
        except FileNotFoundError:
            raise KeyError(f"no session {sid!r} in {self.root}") from None
        return SessionSpec.from_dict(payload)

    def state(self, sid: str) -> str:
        try:
            return self._read_json(
                self.session_dir(sid) / "state.json")["state"]
        except FileNotFoundError:
            raise KeyError(f"no session {sid!r} in {self.root}") from None

    def result(self, sid: str) -> dict[str, Any] | None:
        try:
            return self._read_json(self.session_dir(sid) / "result.json")
        except FileNotFoundError:
            return None

    def view(self, sid: str) -> dict[str, Any]:
        """One session's externally visible status (the client payload)."""
        try:
            state = self._read_json(self.session_dir(sid) / "state.json")
        except FileNotFoundError:
            raise KeyError(f"no session {sid!r} in {self.root}") from None
        spec = self.spec(sid)
        journal = EvaluationJournal(self.journal_path(sid))
        n_evals = len(journal)
        view: dict[str, Any] = {
            "sid": sid, "state": state["state"], "seq": int(state["seq"]),
            "error": state.get("error"),
            "workload": spec.workload, "dataset": spec.dataset,
            "budget": int(spec.budget), "seed": int(spec.seed),
            "priority": int(spec.priority),
            "n_evaluations": n_evals,
            "cancel_requested": self.cancel_requested(sid),
        }
        result = self.result(sid)
        if result is not None:
            view["result"] = result
        return view

    def list_sessions(self) -> list[dict[str, Any]]:
        """Summaries of every stored session, in submission order."""
        index = self.load_index()
        out = []
        for sid, entry in sorted(index["sessions"].items(),
                                 key=lambda kv: kv[1]["seq"]):
            out.append({"sid": sid, **entry})
        return out

    def queue_depth(self) -> dict[str, int]:
        """Sessions per lifecycle state (the ``serve.queue`` payload)."""
        depth = {state: 0 for state in STATES}
        for entry in self.load_index()["sessions"].values():
            depth[entry["state"]] = depth.get(entry["state"], 0) + 1
        return depth

    # -- claiming -----------------------------------------------------------------
    def _lock_path(self, sid: str) -> Path:
        return self.session_dir(sid) / "lock"

    def _try_lock(self, sid: str, owner: str) -> str | None:
        """Create the claim lock; returns the token or None if held live."""
        path = self._lock_path(sid)
        token = os.urandom(8).hex()
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    holder = self._read_json(path)
                except FileNotFoundError:
                    continue  # vanished under us: retry the create
                except json.JSONDecodeError:
                    # Torn by a crash between create and write: stale by
                    # definition (a live writer fsyncs before returning).
                    holder = {}
                if holder and _pid_alive(int(holder.get("pid", 0))):
                    return None
                if not self._force_takeover(path):
                    return None
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps({"pid": os.getpid(), "owner": owner,
                                     "token": token}))
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            return token

    def lock_holder(self, sid: str) -> dict[str, Any] | None:
        """The live claim lock's contents, or None (dead holders count
        as None: their sessions are adoptable)."""
        try:
            holder = self._read_json(self._lock_path(sid))
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        return holder if _pid_alive(int(holder.get("pid", 0))) else None

    def claim(self, owner: str = "worker") -> Claim | None:
        """Claim the best runnable session, or None when nothing runs.

        Candidates are PENDING sessions plus RUNNING sessions whose
        claim lock is stale (their daemon died — adopting them is the
        crash-recovery path); ordering is highest priority first, then
        submission order.  A PENDING candidate with a cancel marker is
        settled CANCELLED here instead of being claimed.
        """
        with self._local:
            candidates = [
                (-(entry["priority"]), entry["seq"], sid, entry["state"])
                for sid, entry in self.load_index()["sessions"].items()
                if entry["state"] in ("PENDING", "RUNNING")]
            for _, _, sid, _ in sorted(candidates):
                claim = self._try_claim(sid, owner)
                if claim is not None:
                    return claim
        return None

    def _try_claim(self, sid: str, owner: str) -> Claim | None:
        token = self._try_lock(sid, owner)
        if token is None:
            return None
        # Re-read the authoritative state *after* winning the lock: the
        # index snapshot may be stale (TOCTOU window).
        state = self._read_json(self.session_dir(sid) / "state.json")
        if state["state"] not in ("PENDING", "RUNNING"):
            self._lock_path(sid).unlink(missing_ok=True)
            return None
        if state["state"] == "PENDING" and self.cancel_requested(sid):
            self._transition(sid, state, "CANCELLED")
            self._lock_path(sid).unlink(missing_ok=True)
            self.tracer.count("serve.cancelled")
            return None
        resumed = (state["state"] == "RUNNING"
                   or (self.journal_path(sid).exists()
                       and self.journal_path(sid).stat().st_size > 0))
        if state["state"] == "PENDING":
            self._transition(sid, state, "RUNNING")
        spec = self.spec(sid)
        self.tracer.emit("serve.claim", {"sid": sid, "owner": owner,
                                         "resumed": bool(resumed)})
        self.tracer.count("serve.claims")
        if resumed:
            self.tracer.emit("serve.recover", {"sid": sid})
            self.tracer.count("serve.resumed")
        return Claim(sid=sid, spec=spec, token=token, resumed=bool(resumed))

    def _transition(self, sid: str, state: Mapping[str, Any], to: str, *,
                    error: str | None = None) -> None:
        frm = state["state"]
        if to not in TRANSITIONS[frm]:
            raise ValueError(f"illegal transition {frm} -> {to} for {sid}")
        payload = dict(state)
        payload["state"] = to
        payload["error"] = error
        self._write_json(self.session_dir(sid) / "state.json", payload)
        self._update_index(sid, {"state": to})
        self.tracer.emit("serve.state", {"sid": sid, "from": frm, "to": to})

    # -- settling (claim-holders only) --------------------------------------------
    def _verify(self, claim: Claim) -> dict[str, Any]:
        try:
            holder = self._read_json(self._lock_path(claim.sid))
        except (FileNotFoundError, json.JSONDecodeError):
            raise StaleClaimError(f"claim on {claim.sid} no longer holds "
                                  "the lock") from None
        if holder.get("token") != claim.token:
            raise StaleClaimError(f"claim on {claim.sid} was taken over")
        return self._read_json(self.session_dir(claim.sid) / "state.json")

    def complete(self, claim: Claim, result: Mapping[str, Any]) -> None:
        """Settle DONE: the result is durable before the state says so."""
        state = self._verify(claim)
        self._write_json(self.session_dir(claim.sid) / "result.json",
                         dict(result))
        self._transition(claim.sid, state, "DONE")
        self._lock_path(claim.sid).unlink(missing_ok=True)
        self.tracer.count("serve.done")

    def fail(self, claim: Claim, error: str) -> None:
        state = self._verify(claim)
        self._transition(claim.sid, state, "FAILED", error=str(error))
        self._lock_path(claim.sid).unlink(missing_ok=True)
        self.tracer.count("serve.failed")

    def cancelled(self, claim: Claim) -> None:
        state = self._verify(claim)
        self._transition(claim.sid, state, "CANCELLED")
        self._lock_path(claim.sid).unlink(missing_ok=True)
        self.tracer.count("serve.cancelled")

    def release(self, claim: Claim) -> None:
        """Give a claim back without settling (state stays RUNNING; the
        session is adoptable by the next claim — used on daemon
        shutdown with work in flight)."""
        self._verify(claim)
        self._lock_path(claim.sid).unlink(missing_ok=True)

    # -- cancellation -------------------------------------------------------------
    def _cancel_marker(self, sid: str) -> Path:
        return self.session_dir(sid) / "cancel"

    def cancel_requested(self, sid: str) -> bool:
        return self._cancel_marker(sid).exists()

    def cancel(self, sid: str) -> str:
        """Request cancellation; returns the resulting (or current) state.

        PENDING sessions cancel immediately when the claim lock is free;
        RUNNING (or contended) sessions get a durable marker the runner
        honors at its next evaluation boundary.  Terminal sessions are
        left alone.
        """
        state = self.state(sid)  # raises KeyError for unknown sids
        if state in TERMINAL_STATES:
            return state
        self._write_json(self._cancel_marker(sid), {"requested": True})
        if state == "PENDING":
            token = self._try_lock(sid, "cancel")
            if token is not None:
                fresh = self._read_json(self.session_dir(sid) / "state.json")
                if fresh["state"] == "PENDING":
                    self._transition(sid, fresh, "CANCELLED")
                    self.tracer.count("serve.cancelled")
                self._lock_path(sid).unlink(missing_ok=True)
                return self.state(sid)
        return "CANCELLED" if self.state(sid) == "CANCELLED" else "requested"

    # -- daemon registration ------------------------------------------------------
    def write_daemon_info(self, info: Mapping[str, Any]) -> None:
        """Record the serving daemon's pid/endpoint (client discovery)."""
        self._write_json(self.root / "daemon.json", dict(info))

    def daemon_info(self) -> dict[str, Any] | None:
        try:
            return self._read_json(self.root / "daemon.json")
        except FileNotFoundError:
            return None
