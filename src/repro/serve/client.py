"""Thin service client: one call per CLI verb, transport-agnostic.

The client owns no policy — it forwards to whichever
:class:`~repro.serve.transport.Transport` it was given (file or socket)
and adds the one convenience the CLI and the tests both need:
:meth:`ServiceClient.wait`, a bounded poll for a session to reach a
terminal state.  The poll budget is expressed as an attempt count
(``timeout_s / poll_s``) instead of a deadline read from a clock, so the
client stays out of the timing-sensitive code paths the determinism
lints fence off (docs/ANALYSIS.md, RPD005).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from .session import TERMINAL_STATES, SessionSpec
from .store import SessionStore
from .transport import FileTransport, SocketTransport, Transport

__all__ = ["ServiceClient", "WaitTimeout"]


class WaitTimeout(TimeoutError):
    """A session did not settle within the wait budget."""


class ServiceClient:
    """Submit, watch and cancel tuning sessions on a service.

    Build one from whichever endpoint you have::

        ServiceClient.for_store("runs/serve")          # file transport
        ServiceClient.for_socket("127.0.0.1:7341")     # live daemon
        ServiceClient.for_socket("auto", store_root="runs/serve")
    """

    def __init__(self, transport: Transport) -> None:
        self.transport = transport

    @classmethod
    def for_store(cls, root: str | Path) -> "ServiceClient":
        return cls(FileTransport(SessionStore(root)))

    @classmethod
    def for_socket(cls, address: str, *,
                   store_root: str | Path | None = None,
                   timeout_s: float = 30.0) -> "ServiceClient":
        return cls(SocketTransport(address, store_root=store_root,
                                   timeout_s=timeout_s))

    # -- verbs --------------------------------------------------------------------
    def submit(self, spec: SessionSpec) -> str:
        return self.transport.submit(spec)

    def status(self, sid: str) -> dict[str, Any]:
        return self.transport.status(sid)

    def results(self, sid: str) -> dict[str, Any] | None:
        return self.transport.results(sid)

    def cancel(self, sid: str) -> str:
        return self.transport.cancel(sid)

    def list_sessions(self) -> list[dict[str, Any]]:
        return self.transport.list_sessions()

    def ping(self) -> bool:
        return self.transport.ping()

    # -- waiting ------------------------------------------------------------------
    def wait(self, sid: str, *, timeout_s: float = 300.0,
             poll_s: float = 0.25) -> dict[str, Any]:
        """Poll until *sid* settles; returns its final status view.

        Raises :class:`WaitTimeout` after ``timeout_s / poll_s``
        attempts without a terminal state.
        """
        attempts = max(1, int(timeout_s / poll_s))
        view: dict[str, Any] = {}
        for _ in range(attempts):
            view = self.status(sid)
            if view["state"] in TERMINAL_STATES:
                return view
            time.sleep(poll_s)
        raise WaitTimeout(
            f"session {sid} still {view.get('state', '?')} after "
            f"{attempts} polls of {poll_s}s")

    def wait_all(self, sids: list[str], *, timeout_s: float = 600.0,
                 poll_s: float = 0.25) -> dict[str, dict[str, Any]]:
        """Wait for several sessions; returns {sid: final view}."""
        views: dict[str, dict[str, Any]] = {}
        pending = list(sids)
        attempts = max(1, int(timeout_s / poll_s))
        for _ in range(attempts):
            still = []
            for sid in pending:
                view = self.status(sid)
                if view["state"] in TERMINAL_STATES:
                    views[sid] = view
                else:
                    still.append(sid)
            pending = still
            if not pending:
                return views
            time.sleep(poll_s)
        raise WaitTimeout(f"sessions {pending} did not settle within "
                          f"{attempts} polls of {poll_s}s")
