"""Tuning-as-a-service: durable session store, daemon, client.

See docs/SERVING.md for the service model.  The public surface:

* :class:`SessionSpec` — the JSON-able identity of one tuning session.
* :class:`SessionStore` — the durable directory-of-journals store.
* :class:`TuningDaemon` — the scheduler daemon (``repro serve``).
* :class:`ServiceClient` — the thin client the CLI verbs wrap.
* :func:`run_session` / :func:`result_payload` — the shared session
  runner that makes served results bit-identical to in-process runs.
"""

from .client import ServiceClient, WaitTimeout
from .daemon import TuningDaemon
from .runner import (CancellableObjective, build_objective, build_tuner,
                     result_payload, run_session)
from .session import (STATES, TERMINAL_STATES, TRANSITIONS, SessionCancelled,
                      SessionSpec, evaluation_digest)
from .store import Claim, SessionStore, StaleClaimError
from .transport import (FileTransport, SocketTransport, Transport,
                        handle_request, parse_address)

__all__ = [
    "STATES", "TERMINAL_STATES", "TRANSITIONS",
    "SessionSpec", "SessionCancelled", "evaluation_digest",
    "SessionStore", "Claim", "StaleClaimError",
    "TuningDaemon",
    "ServiceClient", "WaitTimeout",
    "Transport", "FileTransport", "SocketTransport",
    "handle_request", "parse_address",
    "run_session", "result_payload", "build_objective", "build_tuner",
    "CancellableObjective",
]
