"""Client⇄service transports behind one :class:`Transport` protocol.

Two implementations, one contract:

* :class:`FileTransport` operates directly on a shared
  :class:`~repro.serve.store.SessionStore` directory.  No daemon needs
  to be listening for ``submit``/``status``/``results``/``cancel`` to
  work — the daemon discovers submitted sessions by polling the store —
  so the file transport is also the service's offline/degraded mode.
* :class:`SocketTransport` speaks a newline-delimited JSON request/
  response protocol to a live daemon over TCP (``host:port``) or a unix
  domain socket (a filesystem path).  ``address="auto"`` reads the
  endpoint the daemon registered in the store's ``daemon.json``.

The wire protocol is deliberately tiny: one request object per
connection, one response object back (``{"ok": true, ...}`` or
``{"ok": false, "error": ...}``).  :func:`handle_request` implements the
server side against a store so the daemon and the tests share it.
"""

from __future__ import annotations

import json
import os
import socket
from pathlib import Path
from typing import Any, Protocol

from .session import SessionSpec
from .store import SessionStore

__all__ = ["Transport", "FileTransport", "SocketTransport",
           "parse_address", "handle_request"]

#: Max bytes of one framed request/response line.
_MAX_LINE = 1 << 20


class Transport(Protocol):
    """What every client⇄service transport must provide."""

    def submit(self, spec: SessionSpec) -> str: ...

    def status(self, sid: str) -> dict[str, Any]: ...

    def results(self, sid: str) -> dict[str, Any] | None: ...

    def cancel(self, sid: str) -> str: ...

    def list_sessions(self) -> list[dict[str, Any]]: ...

    def ping(self) -> bool: ...


class FileTransport:
    """Transport over a shared store directory (no daemon required)."""

    def __init__(self, store: SessionStore | str | Path) -> None:
        self.store = store if isinstance(store, SessionStore) \
            else SessionStore(store)

    def submit(self, spec: SessionSpec) -> str:
        return self.store.submit(spec)

    def status(self, sid: str) -> dict[str, Any]:
        return self.store.view(sid)

    def results(self, sid: str) -> dict[str, Any] | None:
        return self.store.result(sid)

    def cancel(self, sid: str) -> str:
        return self.store.cancel(sid)

    def list_sessions(self) -> list[dict[str, Any]]:
        return self.store.list_sessions()

    def ping(self) -> bool:
        """True when a registered daemon process is alive."""
        info = self.store.daemon_info()
        if info is None:
            return False
        try:
            os.kill(int(info.get("pid", 0)), 0)
        except (ProcessLookupError, ValueError):
            return False
        except PermissionError:  # pragma: no cover - other-user daemon
            return True
        return True


def parse_address(text: str) -> tuple[str, Any]:
    """``host:port`` → ``("tcp", (host, port))``; else a unix-socket path."""
    if ":" in text:
        host, _, port = text.rpartition(":")
        try:
            return "tcp", (host or "127.0.0.1", int(port))
        except ValueError:
            pass  # not a port number: treat the whole text as a path
    return "unix", text


def handle_request(store: SessionStore,
                   request: dict[str, Any]) -> dict[str, Any]:
    """Serve one decoded request against *store* (the daemon's side)."""
    op = request.get("op")
    try:
        if op == "submit":
            spec = SessionSpec.from_dict(request["spec"])
            return {"ok": True, "sid": store.submit(spec)}
        if op == "status":
            return {"ok": True, "view": store.view(request["sid"])}
        if op == "results":
            return {"ok": True, "result": store.result(request["sid"])}
        if op == "cancel":
            return {"ok": True, "state": store.cancel(request["sid"])}
        if op == "list":
            return {"ok": True, "sessions": store.list_sessions()}
        if op in ("ping", "shutdown"):
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}
    except (KeyError, ValueError, TypeError, FileNotFoundError) as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


class SocketTransport:
    """Transport to a live daemon over TCP or a unix domain socket.

    Parameters
    ----------
    address:
        ``"host:port"``, a unix-socket path, or ``"auto"`` (resolve from
        the daemon registration in *store_root*'s ``daemon.json``).
    store_root:
        Needed only for ``address="auto"``.
    timeout_s:
        Per-request socket timeout.
    """

    def __init__(self, address: str, *, store_root: str | Path | None = None,
                 timeout_s: float = 30.0) -> None:
        if address == "auto":
            if store_root is None:
                raise ValueError('address="auto" needs store_root')
            info = SessionStore(store_root).daemon_info()
            if info is None or not info.get("address"):
                raise ConnectionError(
                    f"no daemon registered a socket in {store_root}")
            address = str(info["address"])
        self.family, self.endpoint = parse_address(address)
        self.timeout_s = float(timeout_s)

    # -- wire ---------------------------------------------------------------------
    def _call(self, request: dict[str, Any]) -> dict[str, Any]:
        if self.family == "tcp":
            sock = socket.create_connection(self.endpoint,
                                            timeout=self.timeout_s)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(self.endpoint)
        try:
            sock.sendall(json.dumps(request).encode() + b"\n")
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n") or sum(map(len, chunks)) > _MAX_LINE:
                    break
        finally:
            sock.close()
        raw = b"".join(chunks)
        if not raw:
            raise ConnectionError("daemon closed the connection mid-request")
        response = json.loads(raw.decode())
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "request failed"))
        return response

    # -- Transport protocol -------------------------------------------------------
    def submit(self, spec: SessionSpec) -> str:
        return self._call({"op": "submit", "spec": spec.to_dict()})["sid"]

    def status(self, sid: str) -> dict[str, Any]:
        return self._call({"op": "status", "sid": sid})["view"]

    def results(self, sid: str) -> dict[str, Any] | None:
        return self._call({"op": "results", "sid": sid})["result"]

    def cancel(self, sid: str) -> str:
        return self._call({"op": "cancel", "sid": sid})["state"]

    def list_sessions(self) -> list[dict[str, Any]]:
        return self._call({"op": "list"})["sessions"]

    def ping(self) -> bool:
        try:
            return bool(self._call({"op": "ping"})["ok"])
        except (OSError, RuntimeError):
            return False

    def shutdown(self) -> bool:
        """Ask the daemon to drain and exit (tests and operators)."""
        return bool(self._call({"op": "shutdown"})["ok"])
