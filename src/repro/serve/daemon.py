"""The tuning-as-a-service scheduler daemon (docs/SERVING.md).

One :class:`TuningDaemon` owns a :class:`~repro.serve.store.SessionStore`
and a fleet of session-runner threads.  Each runner loops
claim → run → settle: it claims the highest-priority runnable session
(PENDING, or RUNNING-with-a-dead-owner — the crash-recovery case), runs
it through :func:`repro.serve.runner.run_session` with the session's
crash-safe journal, and settles DONE/FAILED/CANCELLED.  Within a
session, supervised execution (``async_workers``/``eval_timeout_s`` in
the spec) claims individual evaluations through the existing
:class:`~repro.supervise.EvaluationSupervisor`/`WorkerPool` path, so
deadlines, speculation, quarantine and redispatch-on-death all apply
unchanged under the daemon.

Durability contract: the daemon itself holds **no** state a kill can
lose.  Sessions live in the store (fsync'd transitions), evaluations in
per-session journals (fsync'd dispatch/settle pairs), so SIGKILL at any
instant loses at most the evaluations in flight — which journal-v2
``pending_dispatches()`` recovery re-executes bit-identically on the
next daemon's resume (``recover="redispatch"``).

Observability: the daemon's tracer carries the ``serve.*`` event family
(queue depth, claim latency, session lifecycle — docs/OBSERVABILITY.md)
and every session attempt writes its own ``trace-<n>.jsonl`` in the
session directory: the service's metrics feed is the trace stream.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import traceback
from pathlib import Path

from ..core.journal import EvaluationJournal
from ..obs import JsonlTraceWriter, Tracer, as_tracer
from .runner import result_payload, run_session
from .session import SessionCancelled
from .store import Claim, SessionStore
from .transport import handle_request, parse_address

__all__ = ["TuningDaemon"]


class TuningDaemon:
    """Schedule and execute stored tuning sessions until told to stop.

    Parameters
    ----------
    store:
        The session store (a :class:`SessionStore` or its root path).
    workers:
        Session-runner threads: how many sessions run concurrently.
    poll_s:
        Idle claim-poll interval.
    drain:
        Exit once no session is runnable and no runner is busy (batch
        mode for tests/CI); the default serves until :meth:`stop`.
    max_sessions:
        Exit after settling this many sessions (None = unbounded).
    recover:
        Journal recovery mode for adopted sessions (``"redispatch"``
        re-executes in-flight evaluations bit-identically,
        ``"censor"`` writes them off — see docs/ROBUSTNESS.md).
    socket_address:
        ``"host:port"``, a unix-socket path, or ``"auto"`` (bind
        127.0.0.1 on an ephemeral port); None disables the RPC server.
        The bound endpoint is registered in the store's ``daemon.json``.
    tracer:
        Daemon-level tracer for the ``serve.*`` feed (the store shares
        it); per-session traces are separate files in the session dirs.
    session_traces:
        Write a ``trace-<n>.jsonl`` per session attempt (default on).
    """

    def __init__(self, store: SessionStore | str | Path, *, workers: int = 1,
                 poll_s: float = 0.05, drain: bool = False,
                 max_sessions: int | None = None,
                 recover: str = "redispatch",
                 socket_address: str | None = None,
                 tracer=None, session_traces: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if poll_s <= 0:
            raise ValueError("poll_s must be positive")
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.store = store if isinstance(store, SessionStore) \
            else SessionStore(store)
        self.workers = workers
        self.poll_s = poll_s
        self.drain = drain
        self.max_sessions = max_sessions
        self.recover = recover
        self.socket_address = socket_address
        self.tracer = as_tracer(tracer)
        self.store.tracer = self.tracer
        self.session_traces = session_traces
        self._stop = threading.Event()
        self._settled = 0
        self._busy = 0
        self._count_lock = threading.Lock()
        self._server_sock: socket.socket | None = None

    # -- control ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the daemon to finish in-flight sessions and exit."""
        self._stop.set()

    @property
    def sessions_settled(self) -> int:
        return self._settled

    # -- main loop ----------------------------------------------------------------
    def run(self) -> int:
        """Serve until stopped/drained; returns sessions settled."""
        bound = self._start_rpc_server()
        self.store.write_daemon_info(
            {"pid": os.getpid(), "address": bound,
             "workers": self.workers})
        threads = [threading.Thread(target=self._worker_loop,
                                    name=f"serve-worker-{i}", daemon=True)
                   for i in range(self.workers)]
        for thread in threads:
            thread.start()
        last_depth: dict | None = None
        try:
            while not self._stop.is_set():
                depth = self.store.queue_depth()
                if depth != last_depth:
                    self.tracer.emit("serve.queue", dict(depth))
                    last_depth = depth
                if self._done_serving(depth):
                    self._stop.set()
                    break
                self._stop.wait(self.poll_s)
        finally:
            self._stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            self._close_rpc_server()
        return self._settled

    def _done_serving(self, depth: dict) -> bool:
        if (self.max_sessions is not None
                and self._settled >= self.max_sessions):
            return True
        if not self.drain:
            return False
        with self._count_lock:
            busy = self._busy
        return busy == 0 and depth["PENDING"] == 0 and depth["RUNNING"] == 0

    # -- workers ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        owner = threading.current_thread().name
        while not self._stop.is_set():
            # Enforce --max-sessions at claim time, not just on the main
            # loop's poll tick: claims issued between ticks would
            # overshoot the cap otherwise.  The busy slot is reserved
            # under the lock BEFORE claiming so concurrent workers
            # cannot jointly overshoot.
            with self._count_lock:
                if (self.max_sessions is not None
                        and self._settled + self._busy
                        >= self.max_sessions):
                    reserved = False
                else:
                    self._busy += 1
                    reserved = True
            if not reserved:
                self._stop.wait(self.poll_s)
                continue
            with self.tracer.timer("serve.claim"):
                claim = self.store.claim(owner)
            if claim is None:
                with self._count_lock:
                    self._busy -= 1
                self._stop.wait(self.poll_s)
                continue
            try:
                self._run_claim(claim)
            finally:
                with self._count_lock:
                    self._busy -= 1
                    self._settled += 1

    def _run_claim(self, claim: Claim) -> None:
        sid = claim.sid
        tracer = None
        if self.session_traces:
            tracer = Tracer(
                JsonlTraceWriter(self.store.next_trace_path(sid)),
                meta={"sid": sid, "workload": claim.spec.workload,
                      "dataset": claim.spec.dataset,
                      "budget": int(claim.spec.budget),
                      "seed": int(claim.spec.seed),
                      "resumed": bool(claim.resumed)})
        journal = EvaluationJournal(self.store.journal_path(sid))
        try:
            with self.tracer.span("serve.session", sid=sid,
                                  resumed=bool(claim.resumed)):
                result = run_session(
                    claim.spec, journal=journal, resume=claim.resumed,
                    recover=self.recover, tracer=tracer,
                    should_cancel=lambda: self.store.cancel_requested(sid))
            self.store.complete(claim, result_payload(claim.spec, result))
        except SessionCancelled:
            self.store.cancelled(claim)
        except Exception as exc:  # noqa - settled as FAILED with the traceback
            self.store.fail(claim, f"{type(exc).__name__}: {exc}\n"
                                   f"{traceback.format_exc()}")
        finally:
            journal.close()
            if tracer is not None:
                tracer.close()

    # -- RPC server ---------------------------------------------------------------
    def _start_rpc_server(self) -> str | None:
        if self.socket_address is None:
            return None
        if self.socket_address == "auto":
            family, endpoint = "tcp", ("127.0.0.1", 0)
        else:
            family, endpoint = parse_address(self.socket_address)
        if family == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(endpoint)
            host, port = sock.getsockname()[:2]
            bound = f"{host}:{port}"
        else:
            Path(endpoint).unlink(missing_ok=True)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(endpoint)
            bound = str(endpoint)
        sock.listen(16)
        sock.settimeout(0.2)
        self._server_sock = sock
        thread = threading.Thread(target=self._serve_rpc, name="serve-rpc",
                                  daemon=True)
        thread.start()
        return bound

    def _serve_rpc(self) -> None:
        assert self._server_sock is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._server_sock.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # socket closed during shutdown
            try:
                self._handle_conn(conn)
            finally:
                conn.close()

    def _handle_conn(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        chunks: list[bytes] = []
        try:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
            raw = b"".join(chunks)
            if not raw:
                return
            try:
                request = json.loads(raw.decode())
            except json.JSONDecodeError as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            else:
                response = handle_request(self.store, request)
                if request.get("op") == "shutdown":
                    self._stop.set()
            conn.sendall(json.dumps(response).encode() + b"\n")
        except OSError:
            return  # client went away mid-exchange; nothing to settle

    def _close_rpc_server(self) -> None:
        if self._server_sock is not None:
            self._server_sock.close()
            self._server_sock = None
