"""Build and run one tuning session from its :class:`SessionSpec`.

This module is the *only* place a spec turns into an objective and a
tuner, and it is used by both sides of the service's bit-identity
contract: the daemon runs sessions through :func:`run_session` with a
journal, and the black-box harness (``tests/serve/harness.py``) replays
the same spec in process through the same function without one.  Because
construction is shared, "served results equal in-process results" is a
property of the journaling layer (which records but never decides), not
of two codepaths staying accidentally in sync.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.selection import ParameterSelector
from ..core.tuner import ROBOTune, ROBOTuneResult
from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..space.spark_params import spark_space
from ..supervise import SupervisePolicy
from ..tuners.objective import DEFAULT_TIME_LIMIT_S, WorkloadObjective
from ..workloads.registry import get_workload
from .session import SessionCancelled, SessionSpec, evaluation_digest

__all__ = ["build_objective", "build_tuner", "run_session",
           "result_payload", "CancellableObjective"]


class CancellableObjective:
    """Objective wrapper that aborts the session when a check fires.

    *should_cancel* is consulted before every evaluation (one cheap
    callback — the daemon points it at the store's cancel marker), so a
    ``repro cancel`` lands at the next evaluation boundary instead of
    waiting out the whole budget.  Views spawned for concurrent
    evaluation share the same check.
    """

    def __init__(self, objective: Any,
                 should_cancel: Callable[[], bool]) -> None:
        self._objective = objective
        self._should_cancel = should_cancel

    @property
    def space(self) -> Any:
        return self._objective.space

    @property
    def time_limit_s(self) -> float:
        return self._objective.time_limit_s

    def with_space(self, space: Any) -> "CancellableObjective":
        return CancellableObjective(self._objective.with_space(space),
                                    self._should_cancel)

    def spawn_view(self) -> "CancellableObjective":
        return CancellableObjective(self._objective.spawn_view(),
                                    self._should_cancel)

    @property
    def spawn_view_capable(self) -> bool:
        inner = self.__dict__["_objective"]
        if getattr(type(inner), "spawn_view", None) is None:
            return False
        return bool(getattr(inner, "spawn_view_capable", True))

    def __getattr__(self, name: str) -> Any:
        return getattr(self.__dict__["_objective"], name)

    def __call__(self, u, time_limit_s=None):
        if self._should_cancel():
            raise SessionCancelled("session cancelled by request")
        return self._objective(u, time_limit_s)


def build_objective(spec: SessionSpec, *, tracer=None):
    """The spec's objective: workload + metric + optional fault plan."""
    space = spark_space()
    workload = get_workload(spec.workload, spec.dataset)
    time_limit = spec.time_limit_s if spec.time_limit_s is not None \
        else DEFAULT_TIME_LIMIT_S
    objective = WorkloadObjective(workload, space, metric=spec.metric,
                                  time_limit_s=time_limit, rng=spec.seed)
    if spec.fault_rate > 0.0:
        retry = RetryPolicy(max_retries=spec.retries) if spec.retries \
            else None
        objective = FaultInjector(objective,
                                  FaultPlan(spec.fault_rate,
                                            seed=spec.seed + 1),
                                  retry=retry, tracer=tracer)
    return objective


def build_tuner(spec: SessionSpec) -> ROBOTune:
    """The spec's ROBOTune, seeded exactly like ``repro tune`` would."""
    selector = None
    if spec.selection_samples is not None or spec.selection_repeats is not None:
        selector = ParameterSelector(
            n_samples=spec.selection_samples or 100,
            n_repeats=spec.selection_repeats or 10,
            rng=spec.seed)
    supervise = None
    if spec.eval_timeout_s is not None:
        supervise = SupervisePolicy(eval_timeout_s=spec.eval_timeout_s,
                                    speculate=spec.speculate,
                                    quarantine_after=spec.quarantine_after)
    return ROBOTune(selector=selector,
                    init_samples=spec.init_samples,
                    # Tiny smoke sessions may shrink init_samples below the
                    # default memo replay width; clamp instead of refusing.
                    memo_configs=min(4, spec.init_samples),
                    async_workers=spec.async_workers,
                    supervise=supervise,
                    rng=spec.seed)


def run_session(spec: SessionSpec, *, journal=None, resume: bool = False,
                recover: str = "redispatch", tracer=None,
                should_cancel: Callable[[], bool] | None = None
                ) -> ROBOTuneResult:
    """Execute one session: the daemon's path and the test comparator.

    With *journal* the session checkpoints (or, with ``resume=True``,
    resumes) through the crash-safe journal layer; without one it runs
    plain in process.  Either way the decision sequence is a function of
    the spec alone, so the two produce bit-identical evaluation streams
    for deterministic specs.
    """
    objective = build_objective(spec, tracer=tracer)
    if should_cancel is not None:
        objective = CancellableObjective(objective, should_cancel)
    tuner = build_tuner(spec)
    if journal is None:
        return tuner.tune(objective, spec.budget, rng=spec.seed,
                          tracer=tracer)
    if resume:
        return tuner.resume(objective, spec.budget, journal, rng=spec.seed,
                            tracer=tracer, recover=recover)
    return tuner.checkpoint(objective, spec.budget, journal, rng=spec.seed,
                            tracer=tracer)


def result_payload(spec: SessionSpec,
                   result: ROBOTuneResult) -> dict[str, Any]:
    """The JSON result a settled session stores (and clients fetch).

    ``digest`` covers the whole evaluation stream — selection phase
    included — and is the value the acceptance tests compare against an
    in-process run of the same spec.
    """
    stream = list(result.selection_evaluations) + list(result.evaluations)
    payload: dict[str, Any] = {
        "workload": spec.workload,
        "dataset": spec.dataset,
        "seed": int(spec.seed),
        "n_evaluations": int(result.n_evaluations),
        "n_stream": len(stream),
        "search_cost_s": float(result.search_cost_s),
        "selection_cost_s": float(result.selection_cost_s),
        "selected_parameters": list(result.selected_parameters),
        "digest": evaluation_digest(stream),
        "quarantined_configs": [dict(c) for c in
                                result.quarantined_configs],
    }
    try:
        payload["best_objective"] = float(result.best_time_s)
        payload["best_config"] = dict(result.best_config)
    except RuntimeError:
        # Every evaluation failed (heavy chaos on a tiny budget): the
        # session still settles DONE with an explicit null best.
        payload["best_objective"] = None
        payload["best_config"] = None
    return payload
