"""Session identity for the tuning service (docs/SERVING.md).

A *session* is one tuning run owned by the service: a
:class:`SessionSpec` (what to tune, with which budget, seed and
resilience knobs) plus a lifecycle state that only ever moves forward
through :data:`TRANSITIONS`::

    PENDING ──claim──▶ RUNNING ──settle──▶ DONE | FAILED | CANCELLED
       └──────────────cancel───────────────────────────▶ CANCELLED

Specs are plain JSON-able dataclasses so they cross the file and socket
transports unchanged, and :func:`evaluation_digest` is the service's
bit-identity witness: a canonical SHA-256 over the full evaluation
stream (selection phase included), equal between a served session and
an in-process run of the same spec if and only if every vector,
objective value, cost and status matched exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["SessionSpec", "SessionCancelled", "STATES", "TERMINAL_STATES",
           "TRANSITIONS", "evaluation_digest"]

#: Lifecycle states a stored session moves through.
STATES = ("PENDING", "RUNNING", "DONE", "FAILED", "CANCELLED")

#: States a session never leaves.
TERMINAL_STATES = ("DONE", "FAILED", "CANCELLED")

#: Legal state transitions; the store refuses everything else.
TRANSITIONS: dict[str, tuple[str, ...]] = {
    "PENDING": ("RUNNING", "CANCELLED"),
    "RUNNING": ("DONE", "FAILED", "CANCELLED"),
    "DONE": (),
    "FAILED": (),
    "CANCELLED": (),
}


class SessionCancelled(Exception):
    """Raised inside a session runner when its cancel marker appears."""


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to (re)construct one tuning session.

    The spec is the *whole* identity of a session's decision sequence:
    two runs of the same spec — served or in-process, interrupted or not
    — produce bit-identical evaluation streams as long as the resilience
    knobs stay on the deterministic defaults (``fault_rate=0``,
    ``async_workers=0``, no supervision; see docs/ROBUSTNESS.md for why
    supervised runs trade that guarantee for liveness).
    """

    workload: str
    dataset: str = "D1"
    budget: int = 100
    seed: int = 0
    metric: str = "time"
    #: higher runs sooner; ties break by submission order.
    priority: int = 0
    time_limit_s: float | None = None
    #: BO training-set size (paper: 20).
    init_samples: int = 20
    #: parameter-selection sample count; ``None`` keeps the paper's 100.
    selection_samples: int | None = None
    #: permutation-importance repeats; ``None`` keeps the selector default.
    selection_repeats: int | None = None
    #: transient-fault injection rate (0 = off) and its retry budget.
    fault_rate: float = 0.0
    retries: int = 2
    #: asynchronous BO workers (0 = the serial, bit-reproducible loop).
    async_workers: int = 0
    #: supervised execution (requires ``async_workers >= 1``).
    eval_timeout_s: float | None = None
    speculate: bool = False
    quarantine_after: int = 3
    #: free-form caller metadata, stored and echoed back verbatim.
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("workload must be non-empty")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.init_samples < 2:
            raise ValueError("init_samples must be >= 2")
        if self.selection_samples is not None and self.selection_samples < 10:
            raise ValueError("selection_samples must be >= 10")
        if self.selection_repeats is not None and self.selection_repeats < 1:
            raise ValueError("selection_repeats must be >= 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.async_workers < 0:
            raise ValueError("async_workers must be >= 0")
        if self.eval_timeout_s is not None:
            if self.eval_timeout_s <= 0:
                raise ValueError("eval_timeout_s must be positive")
            if self.async_workers < 1:
                raise ValueError("eval_timeout_s requires async_workers >= 1")
        elif self.speculate:
            raise ValueError("speculate requires eval_timeout_s")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ValueError("time_limit_s must be positive")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown session spec fields: {sorted(unknown)}")
        return cls(**dict(payload))


def _canonical_evaluation(ev: Any) -> list[Any]:
    """The digest-relevant fields of one Evaluation, canonically ordered."""
    status = getattr(ev.status, "value", ev.status)
    return [[float(v) for v in ev.vector],
            sorted((str(k), v) for k, v in dict(ev.config).items()),
            float(ev.objective), float(ev.cost_s), str(status),
            bool(ev.truncated), bool(ev.transient), ev.fault,
            int(ev.attempts)]


def evaluation_digest(evaluations: Iterable[Any]) -> str:
    """Canonical SHA-256 of an evaluation stream (the bit-identity witness).

    Two sessions digest equal iff every evaluation matched in order:
    vectors, decoded configs, objective values, charged costs, statuses
    and fault annotations.  Timing-free by construction, so it is stable
    across machines, tracing, journaling and crash/resume.
    """
    payload = [_canonical_evaluation(ev) for ev in evaluations]
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()
