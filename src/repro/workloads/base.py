"""Workload abstraction: dataset descriptor → compiled stage list.

A :class:`Workload` is the SparkBench-application analogue.  Each concrete
workload models the stage DAG the real application would produce — the
same shuffle patterns, caching behaviour and compute intensity — scaled by
its dataset descriptor.  Stage lists are configuration-independent; the
simulator derives partition counts, memory behaviour, and all cost terms
from the configuration at run time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..sparksim.stage import StageSpec

__all__ = ["Dataset", "Workload"]


@dataclass(frozen=True)
class Dataset:
    """A generated input dataset (Table 1 row entry).

    ``scale`` is the workload-specific size knob (million pages, million
    points/examples, or GB) and ``label`` the paper's D1/D2/D3 tag.
    """

    label: str
    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("dataset scale must be positive")


class Workload(ABC):
    """A tunable data-analytics application bound to one dataset."""

    #: short name used by the registry and caches, e.g. ``"pagerank"``.
    name: str = ""
    #: abbreviation used in the paper's figures, e.g. ``"PR"``.
    abbrev: str = ""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset

    @property
    def key(self) -> str:
        """Identity used by the parameter-selection cache: the workload
        name *without* the dataset, since high-impact parameters are stable
        across dataset sizes (paper §3.2)."""
        return self.name

    @property
    def full_key(self) -> str:
        """Workload plus dataset, e.g. ``"pagerank/D2"``."""
        return f"{self.name}/{self.dataset.label}"

    @abstractmethod
    def build_stages(self) -> list[StageSpec]:
        """Compile the stage DAG for this dataset."""

    @property
    @abstractmethod
    def input_mb(self) -> float:
        """Logical bytes of the generated input (MB)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.dataset.label}, {self.dataset.scale})"
