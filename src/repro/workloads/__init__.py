"""The five SparkBench workloads of Table 1, as stage-DAG models."""

from .base import Dataset, Workload
from .connected_components import ConnectedComponents
from .datasets import DATASET_LABELS, SCALE_UNITS, TABLE1, dataset_for
from .kmeans import KMeans
from .logistic_regression import LogisticRegression
from .pagerank import PageRank
from .registry import WORKLOADS, all_workload_names, get_workload, iter_table1
from .terasort import TeraSort

__all__ = [
    "Dataset",
    "Workload",
    "PageRank",
    "KMeans",
    "ConnectedComponents",
    "LogisticRegression",
    "TeraSort",
    "TABLE1",
    "DATASET_LABELS",
    "SCALE_UNITS",
    "dataset_for",
    "WORKLOADS",
    "get_workload",
    "all_workload_names",
    "iter_table1",
]
