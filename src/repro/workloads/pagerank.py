"""PageRank (SparkBench PR): iterative graph workload.

DAG shape: parse the edge list and build + cache the adjacency structure
(a wide groupBy-like construction with heavy object expansion — the stage
that OOMs under Spark's default 1 GB executors), then per iteration a
contributions map over the cached graph feeding an aggregate-by-key
shuffle of rank updates.  Shuffle-heavy and cache-sensitive: the paper
finds PR benefits most from fine-grained exploitation.
"""

from __future__ import annotations

from ..sparksim.stage import CachedRDD, CacheLevel, InputSource, StageSpec
from .base import Workload

__all__ = ["PageRank"]

# Logical bytes per page: adjacency text (page id + outlinks).
_BYTES_PER_PAGE = 550.0
_ITERATIONS = 3


class PageRank(Workload):
    """PageRank over a generated web graph of ``scale`` million pages."""

    name = "pagerank"
    abbrev = "PR"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * _BYTES_PER_PAGE  # 1e6 pages * B = MB

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        graph_mb = input_mb * 1.1  # adjacency plus rank vector
        graph = CachedRDD(
            name="pr-graph",
            logical_mb=graph_mb,
            level=CacheLevel.MEMORY,
            expansion=3.6,  # pointer-heavy adjacency objects
            rebuild_io_mb_per_mb=input_mb / graph_mb,
            rebuild_cpu_s_per_mb=0.012,
        )
        stages: list[StageSpec] = [
            StageSpec(
                name="parse-and-cache-graph",
                input_mb=input_mb,
                input_source=InputSource.HDFS,
                compute_s_per_mb=0.012,
                expansion=3.6,
                cache_output=graph,
                largest_record_mb=2.0,  # hub pages with huge adjacency lists
            ),
        ]
        for it in range(_ITERATIONS):
            contrib_mb = graph_mb * 0.7  # rank contributions along edges
            stages.append(StageSpec(
                name=f"contributions-{it}",
                input_mb=graph_mb,
                input_source=InputSource.CACHE,
                reads_cached="pr-graph",
                compute_s_per_mb=0.010,
                shuffle_write_ratio=0.7,
                expansion=3.6,
                largest_record_mb=2.0,
            ))
            stages.append(StageSpec(
                name=f"aggregate-ranks-{it}",
                input_mb=contrib_mb,
                input_source=InputSource.SHUFFLE,
                compute_s_per_mb=0.006,
                shuffle_agg=True,
                expansion=2.5,
                driver_collect_mb=0.5,  # convergence delta
            ))
        stages.append(StageSpec(
            name="save-ranks",
            input_mb=graph_mb * 0.15,
            input_source=InputSource.CACHE,
            reads_cached="pr-graph",
            compute_s_per_mb=0.002,
            expansion=2.0,
            output_mb=graph_mb * 0.1,
        ))
        return stages
