"""KMeans (SparkBench KM): cache-bound iterative machine learning.

DAG shape: parse the points file once and cache the feature vectors
(MEMORY_ONLY, deserialized), then run Lloyd iterations — a CPU-heavy
distance map over the cached points with a tiny aggregate shuffle and a
centroid broadcast per iteration.  When the cached points do not fit,
every iteration re-reads and re-parses the evicted partitions, producing
the long execution-time tail the paper shows in Figure 5.
"""

from __future__ import annotations

from ..sparksim.stage import CachedRDD, CacheLevel, InputSource, StageSpec
from .base import Workload

__all__ = ["KMeans"]

# Logical bytes per point: ~20 numeric features as text.
_BYTES_PER_POINT = 120.0
_ITERATIONS = 10


class KMeans(Workload):
    """KMeans over ``scale`` million generated points."""

    name = "kmeans"
    abbrev = "KM"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * _BYTES_PER_POINT

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        points_mb = input_mb * 0.75  # parsed numeric vectors beat text
        points = CachedRDD(
            name="km-points",
            logical_mb=points_mb,
            level=CacheLevel.MEMORY,
            expansion=1.9,
            rebuild_io_mb_per_mb=input_mb / points_mb,
            rebuild_cpu_s_per_mb=0.008,
        )
        stages: list[StageSpec] = [
            StageSpec(
                name="parse-and-cache-points",
                input_mb=input_mb,
                input_source=InputSource.HDFS,
                compute_s_per_mb=0.008,
                expansion=1.9,
                cache_output=points,
                largest_record_mb=0.01,
            ),
        ]
        for it in range(_ITERATIONS):
            stages.append(StageSpec(
                name=f"assign-and-update-{it}",
                input_mb=points_mb,
                input_source=InputSource.CACHE,
                reads_cached="km-points",
                compute_s_per_mb=0.030,       # distance computation dominates
                shuffle_write_ratio=0.0005,   # per-cluster partial sums
                shuffle_agg=True,
                expansion=1.9,
                broadcast_mb=2.0,             # current centroids
                driver_collect_mb=2.0,        # updated centroids
                largest_record_mb=0.01,
            ))
        return stages
