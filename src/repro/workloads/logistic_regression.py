"""LogisticRegression (SparkBench LR): gradient-descent machine learning.

DAG shape mirrors KMeans (cache the parsed examples, iterate a map +
tiny aggregate), but with lighter per-byte compute and a meaningful
per-iteration driver round trip (gradient collection + weight broadcast),
which keeps the best achievable speedup moderate — matching the paper's
2.17x over default versus 27x for KMeans.
"""

from __future__ import annotations

from ..sparksim.stage import CachedRDD, CacheLevel, InputSource, StageSpec
from .base import Workload

__all__ = ["LogisticRegression"]

_BYTES_PER_EXAMPLE = 120.0
_ITERATIONS = 5


class LogisticRegression(Workload):
    """Logistic regression over ``scale`` million labelled examples."""

    name = "logisticregression"
    abbrev = "LR"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * _BYTES_PER_EXAMPLE

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        examples_mb = input_mb * 0.75
        examples = CachedRDD(
            name="lr-examples",
            logical_mb=examples_mb,
            level=CacheLevel.MEMORY,
            expansion=1.8,
            rebuild_io_mb_per_mb=input_mb / examples_mb,
            rebuild_cpu_s_per_mb=0.007,
        )
        stages: list[StageSpec] = [
            StageSpec(
                name="parse-and-cache-examples",
                input_mb=input_mb,
                input_source=InputSource.HDFS,
                compute_s_per_mb=0.007,
                expansion=1.8,
                cache_output=examples,
                largest_record_mb=0.01,
            ),
        ]
        for it in range(_ITERATIONS):
            stages.append(StageSpec(
                name=f"gradient-{it}",
                input_mb=examples_mb,
                input_source=InputSource.CACHE,
                reads_cached="lr-examples",
                compute_s_per_mb=0.012,
                shuffle_write_ratio=0.0003,  # partial gradients
                shuffle_agg=True,
                expansion=1.8,
                broadcast_mb=1.0,            # current weight vector
                driver_collect_mb=4.0,       # aggregated gradient
                driver_compute_s=8.0,        # serial weight update/barrier
                largest_record_mb=0.01,
            ))
        return stages
