"""Extra workloads beyond the paper's Table 1.

The paper evaluates five SparkBench applications; these additional models
(also SparkBench members) are provided for users who want a broader
workload mix — they exercise the same simulator features but are *not*
part of the reproduced experiments.
"""

from __future__ import annotations

from ..sparksim.stage import CachedRDD, CacheLevel, InputSource, StageSpec
from .base import Workload

__all__ = ["WordCount", "SupportVectorMachine", "TriangleCount",
           "EXTRA_WORKLOADS"]


class WordCount(Workload):
    """The canonical map + aggregate shuffle job over ``scale`` GB of text."""

    name = "wordcount"
    abbrev = "WC"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * 1024.0

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        return [
            StageSpec(name="tokenize-and-count", input_mb=input_mb,
                      compute_s_per_mb=0.006,
                      shuffle_write_ratio=0.15,  # partial counts
                      shuffle_agg=True, expansion=2.0,
                      largest_record_mb=0.001),
            StageSpec(name="aggregate-counts", input_mb=input_mb * 0.15,
                      input_source=InputSource.SHUFFLE,
                      compute_s_per_mb=0.004, shuffle_agg=True,
                      expansion=2.2, output_mb=input_mb * 0.05),
        ]


class SupportVectorMachine(Workload):
    """SGD-trained linear SVM over ``scale`` million examples.

    Cache-bound and compute-heavy like KMeans, but with a per-iteration
    driver synchronization like LogisticRegression.
    """

    name = "svm"
    abbrev = "SVM"
    iterations = 8

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * 140.0

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        examples_mb = input_mb * 0.7
        examples = CachedRDD(
            name="svm-examples", logical_mb=examples_mb,
            level=CacheLevel.MEMORY, expansion=1.8,
            rebuild_io_mb_per_mb=input_mb / examples_mb,
            rebuild_cpu_s_per_mb=0.007)
        stages: list[StageSpec] = [
            StageSpec(name="parse-and-cache", input_mb=input_mb,
                      compute_s_per_mb=0.007, expansion=1.8,
                      cache_output=examples, largest_record_mb=0.01),
        ]
        for it in range(self.iterations):
            stages.append(StageSpec(
                name=f"sgd-epoch-{it}", input_mb=examples_mb,
                input_source=InputSource.CACHE, reads_cached="svm-examples",
                compute_s_per_mb=0.020, shuffle_write_ratio=0.0004,
                shuffle_agg=True, expansion=1.8, broadcast_mb=1.5,
                driver_collect_mb=3.0, driver_compute_s=3.0,
                largest_record_mb=0.01))
        return stages


class TriangleCount(Workload):
    """Triangle counting over a graph of ``scale`` million pages.

    The most shuffle-intensive of the graph workloads: enumerating wedges
    multiplies the data volume before the final aggregation.
    """

    name = "trianglecount"
    abbrev = "TC"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * 600.0

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        graph_mb = input_mb * 1.05
        graph = CachedRDD(
            name="tc-graph", logical_mb=graph_mb,
            level=CacheLevel.MEMORY_SER, expansion=3.4,
            rebuild_io_mb_per_mb=input_mb / graph_mb,
            rebuild_cpu_s_per_mb=0.010)
        wedges_mb = graph_mb * 2.5
        return [
            StageSpec(name="build-graph", input_mb=input_mb,
                      compute_s_per_mb=0.010, expansion=3.4,
                      unroll_fraction=1.0, cache_output=graph,
                      largest_record_mb=2.0),
            StageSpec(name="enumerate-wedges", input_mb=graph_mb,
                      input_source=InputSource.CACHE, reads_cached="tc-graph",
                      compute_s_per_mb=0.012, shuffle_write_ratio=2.5,
                      expansion=3.2, largest_record_mb=2.0),
            StageSpec(name="close-triangles", input_mb=wedges_mb,
                      input_source=InputSource.SHUFFLE,
                      compute_s_per_mb=0.008, shuffle_agg=True,
                      expansion=2.8, driver_collect_mb=0.5),
        ]


EXTRA_WORKLOADS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (WordCount, SupportVectorMachine, TriangleCount)
}
