"""Workload registry: name/label lookup for the five SparkBench workloads."""

from __future__ import annotations

from .base import Dataset, Workload
from .connected_components import ConnectedComponents
from .datasets import DATASET_LABELS, TABLE1, dataset_for
from .extras import EXTRA_WORKLOADS
from .kmeans import KMeans
from .logistic_regression import LogisticRegression
from .pagerank import PageRank
from .terasort import TeraSort

__all__ = ["WORKLOADS", "EXTRA_WORKLOADS", "get_workload",
           "all_workload_names", "iter_table1"]

WORKLOADS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (PageRank, KMeans, ConnectedComponents, LogisticRegression,
                TeraSort)
}

_ALL = {**WORKLOADS, **EXTRA_WORKLOADS}
_ABBREVS = {cls.abbrev.lower(): cls.name for cls in _ALL.values()}

#: Default scales for the extra (non-Table 1) workloads' D1/D2/D3 labels.
_EXTRA_SCALES: dict[str, tuple[float, float, float]] = {
    "wordcount": (20.0, 30.0, 40.0),          # GB
    "svm": (50.0, 100.0, 150.0),              # million examples
    "trianglecount": (2.0, 3.0, 4.0),         # million pages
}


def get_workload(name: str, dataset: str | Dataset | float = "D1") -> Workload:
    """Instantiate a workload by name (or abbreviation) and dataset.

    ``dataset`` is a Table 1 label ("D1"/"D2"/"D3"), a custom
    :class:`Dataset`, or a bare numeric scale.  Extra (non-paper)
    workloads resolve labels through their own default scales.
    """
    key = name.lower()
    key = _ABBREVS.get(key, key)
    if key not in _ALL:
        raise KeyError(f"unknown workload {name!r}; "
                       f"known: {sorted(_ALL)}")
    if isinstance(dataset, (int, float)):
        dataset = Dataset("custom", float(dataset))
    elif isinstance(dataset, str):
        if key in TABLE1:
            dataset = dataset_for(key, dataset)
        else:
            try:
                scale = _EXTRA_SCALES[key][DATASET_LABELS.index(dataset)]
            except (KeyError, ValueError):
                raise KeyError(f"unknown dataset label {dataset!r} for "
                               f"extra workload {key!r}") from None
            dataset = Dataset(dataset, scale)
    return _ALL[key](dataset)


def all_workload_names() -> list[str]:
    """Registry keys in Table 1 order."""
    return list(WORKLOADS)


def iter_table1():
    """Yield every (workload_name, dataset_label) cell of Table 1."""
    for name in WORKLOADS:
        for label in DATASET_LABELS:
            yield name, label
