"""ConnectedComponents (SparkBench CC): label-propagation graph workload.

Same family as PageRank — cached adjacency plus iterative shuffles — but
with more, lighter iterations (label propagation converges component by
component, shrinking the frontier) and a serialized graph cache, making
``spark.rdd.compress`` and the serializer consequential for CC where they
are not for the deserialized KMeans cache.
"""

from __future__ import annotations

from ..sparksim.stage import CachedRDD, CacheLevel, InputSource, StageSpec
from .base import Workload

__all__ = ["ConnectedComponents"]

_BYTES_PER_PAGE = 600.0
_ITERATIONS = 5
# Frontier shrink factor per iteration once labels start converging.
_FRONTIER_DECAY = 0.6


class ConnectedComponents(Workload):
    """Connected components over a graph of ``scale`` million pages."""

    name = "connectedcomponents"
    abbrev = "CC"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * _BYTES_PER_PAGE

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        graph_mb = input_mb * 1.05
        graph = CachedRDD(
            name="cc-graph",
            logical_mb=graph_mb,
            level=CacheLevel.MEMORY_SER,  # GraphX-style serialized edges
            expansion=3.6,
            rebuild_io_mb_per_mb=input_mb / graph_mb,
            rebuild_cpu_s_per_mb=0.010,
        )
        stages: list[StageSpec] = [
            StageSpec(
                name="parse-and-cache-graph",
                input_mb=input_mb,
                input_source=InputSource.HDFS,
                compute_s_per_mb=0.011,
                expansion=3.6,
                # Building the edge partitions still materializes the
                # deserialized partition before serializing it into the
                # cache, so the unroll demand matches PageRank's.
                unroll_fraction=1.0,
                cache_output=graph,
                largest_record_mb=2.0,
            ),
        ]
        frontier = 1.0
        for it in range(_ITERATIONS):
            msgs_mb = graph_mb * 0.5 * frontier
            stages.append(StageSpec(
                name=f"propagate-labels-{it}",
                input_mb=graph_mb,
                input_source=InputSource.CACHE,
                reads_cached="cc-graph",
                compute_s_per_mb=0.007 * frontier + 0.002,
                shuffle_write_ratio=0.5 * frontier,
                expansion=3.2,
                largest_record_mb=2.0,
            ))
            stages.append(StageSpec(
                name=f"min-label-join-{it}",
                input_mb=msgs_mb,
                input_source=InputSource.SHUFFLE,
                compute_s_per_mb=0.005,
                shuffle_agg=True,
                expansion=2.5,
                driver_collect_mb=0.2,
            ))
            frontier *= _FRONTIER_DECAY
        stages.append(StageSpec(
            name="save-components",
            input_mb=graph_mb * 0.1,
            input_source=InputSource.CACHE,
            reads_cached="cc-graph",
            compute_s_per_mb=0.002,
            expansion=2.0,
            output_mb=graph_mb * 0.08,
        ))
        return stages
