"""Table 1: the evaluated workloads and their three datasets each.

==========================  ================================
Workload                    Input datasets (D1, D2, D3)
==========================  ================================
PageRank (PR)               5, 7.5, 10 million pages
KMeans (KM)                 200, 300, 400 million points
ConnectedComponents (CC)    5, 7.5, 10 million pages
LogisticRegression (LR)     100, 200, 300 million examples
TeraSort (TS)               20, 30, 40 GB
==========================  ================================
"""

from __future__ import annotations

from .base import Dataset

__all__ = ["TABLE1", "DATASET_LABELS", "SCALE_UNITS", "dataset_for"]

DATASET_LABELS = ("D1", "D2", "D3")

TABLE1: dict[str, tuple[Dataset, Dataset, Dataset]] = {
    "pagerank": (Dataset("D1", 5.0), Dataset("D2", 7.5), Dataset("D3", 10.0)),
    "kmeans": (Dataset("D1", 200.0), Dataset("D2", 300.0), Dataset("D3", 400.0)),
    "connectedcomponents": (Dataset("D1", 5.0), Dataset("D2", 7.5),
                            Dataset("D3", 10.0)),
    "logisticregression": (Dataset("D1", 100.0), Dataset("D2", 200.0),
                           Dataset("D3", 300.0)),
    "terasort": (Dataset("D1", 20.0), Dataset("D2", 30.0), Dataset("D3", 40.0)),
}

#: Units of each workload's ``scale`` value, for reporting.
SCALE_UNITS: dict[str, str] = {
    "pagerank": "million pages",
    "kmeans": "million points",
    "connectedcomponents": "million pages",
    "logisticregression": "million examples",
    "terasort": "GB",
}


def dataset_for(workload: str, label: str) -> Dataset:
    """Look up a Table 1 dataset, e.g. ``dataset_for("pagerank", "D2")``."""
    if workload not in TABLE1:
        raise KeyError(f"unknown workload {workload!r}")
    try:
        return TABLE1[workload][DATASET_LABELS.index(label)]
    except ValueError:
        raise KeyError(f"unknown dataset label {label!r}; "
                       f"expected one of {DATASET_LABELS}") from None
