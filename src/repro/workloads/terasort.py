"""TeraSort (SparkBench TS): the classic sort micro-benchmark.

DAG shape: a small range-partitioner sampling stage, a full-data map that
shuffles everything, and a sort-and-write reduce stage.  No caching, no
iterations — performance is governed by the shuffle path (serializer,
codec, buffers, in-flight window) and by partition sizing: with Spark's
default parallelism the per-task sort working set blows past the default
1 GB executor heap on the two larger datasets, reproducing the paper's
"runtime errors" for TS-D2/D3 under the default configuration.
"""

from __future__ import annotations

from ..sparksim.stage import InputSource, StageSpec
from .base import Workload

__all__ = ["TeraSort"]


class TeraSort(Workload):
    """TeraSort over ``scale`` GB of generated records."""

    name = "terasort"
    abbrev = "TS"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * 1024.0

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        return [
            StageSpec(
                name="sample-ranges",
                input_mb=input_mb * 0.01,
                input_source=InputSource.HDFS,
                compute_s_per_mb=0.003,
                expansion=1.5,
                driver_collect_mb=1.0,
            ),
            StageSpec(
                name="map-and-shuffle",
                input_mb=input_mb,
                input_source=InputSource.HDFS,
                compute_s_per_mb=0.004,
                shuffle_write_ratio=1.0,
                expansion=2.2,
                broadcast_mb=1.0,  # range boundaries
                largest_record_mb=0.001,
            ),
            StageSpec(
                name="sort-and-write",
                input_mb=input_mb,
                input_source=InputSource.SHUFFLE,
                compute_s_per_mb=0.006,
                # External sort: records plus pointer arrays and fetch
                # buffers; half of it must be resident for the merge.
                expansion=6.0,
                unroll_fraction=0.5,
                output_mb=input_mb,
                largest_record_mb=0.001,
            ),
        ]
