"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``; this module normalizes all of
those into a Generator so that experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn"]


def as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce a seed / generator / None into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator | int | None, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *rng*.

    Each child is seeded from a fresh draw of the parent, giving distinct
    streams so parallel components seeded from the same parent do not share
    randomness.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = as_generator(rng)
    return [np.random.default_rng(int(parent.integers(0, 2 ** 63)))
            for _ in range(n)]
