"""Small statistics helpers used by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["geometric_mean", "percentile", "summarize", "Summary"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Speedup ratios are aggregated geometrically (the paper's "on average"
    factors over workloads), since ratios compose multiplicatively.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def percentile(values: Iterable[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of the given sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        p90=float(np.percentile(arr, 90)),
        maximum=float(arr.max()),
    )
