"""Shared executor abstraction for the library's compute hot paths.

Every parallelizable component (forest training, permutation importance,
the experiment harness) accepts an ``n_jobs`` parameter and funnels its
work through :func:`parallel_map`, so worker-pool policy lives in one
place:

* ``n_jobs=None`` defers to the ``ROBOTUNE_JOBS`` environment variable
  (unset/empty means serial) — the knob for turning on parallelism
  globally without touching call sites;
* ``n_jobs=1`` is strictly serial: the function runs in-process, in
  order, with no pool, so single-job results are byte-identical to the
  pre-parallel code;
* ``n_jobs=-1`` uses every available core (``-2`` all but one, etc.).

Determinism is the caller's contract: work items must carry their own
random state (see :func:`repro.utils.rng.spawn`) so results do not depend
on scheduling order.  ``parallel_map`` always returns results in input
order regardless of completion order.
"""

from __future__ import annotations

import os
import queue
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, TypeVar

from ..obs import NULL_TRACER

__all__ = ["ENV_JOBS", "available_cpus", "resolve_n_jobs", "parallel_map",
           "PoolTimeout", "WorkerPool"]

ENV_JOBS = "ROBOTUNE_JOBS"

_BACKENDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` spec into a concrete worker count (>= 1).

    ``None`` reads ``ROBOTUNE_JOBS`` (defaulting to 1 when unset); negative
    values count back from the number of available CPUs, joblib-style
    (``-1`` = all cores).
    """
    if n_jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(f"{ENV_JOBS} must be an integer, got {raw!r}")
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = available_cpus() + 1 + n_jobs
    if n_jobs < 1:
        raise ValueError("n_jobs must resolve to >= 1 worker")
    return n_jobs


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 n_jobs: int | None = None, backend: str = "thread",
                 chunksize: int | None = None, tracer=None) -> list[R]:
    """Map *fn* over *items*, optionally across a worker pool.

    Parameters
    ----------
    fn:
        The per-item worker.  With ``backend="process"`` it must be
        picklable (a module-level function or :func:`functools.partial`
        of one), as must every item and result.
    n_jobs:
        Worker count spec (see :func:`resolve_n_jobs`).  A resolved count
        of 1 — the default when ``ROBOTUNE_JOBS`` is unset — bypasses the
        pool entirely.
    backend:
        ``"thread"`` for GIL-releasing (numpy/BLAS-heavy) work,
        ``"process"`` for pure-Python CPU-bound work such as tree
        fitting, ``"serial"`` to force in-process execution.
    chunksize:
        Items per process-pool task (ignored by the thread backend);
        defaults to spreading items evenly over the workers.
    tracer:
        Optional :class:`repro.obs.Tracer`; each call emits one
        ``parallel.map`` event (resolved worker count and backend) and
        accumulates its elapsed time in the ``parallel.map`` timer.  The
        clock read happens inside the tracer, so this module itself
        never touches timing (rule RPD005).

    Returns results in input order.  Exceptions raised by *fn* propagate
    to the caller (the first one encountered in input order).
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    tracer = NULL_TRACER if tracer is None else tracer
    items = list(items)
    jobs = resolve_n_jobs(n_jobs)
    serial = backend == "serial" or jobs == 1 or len(items) <= 1
    workers = 1 if serial else min(jobs, len(items))
    tracer.emit("parallel.map", {"items": len(items), "workers": workers,
                                 "backend": "serial" if serial else backend})
    with tracer.timer("parallel.map"):
        if serial:
            return [fn(item) for item in items]
        if backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        if chunksize is None:
            chunksize = max(1, len(items) // (workers * 2))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))


class PoolTimeout(TimeoutError):
    """Raised by :meth:`WorkerPool.next_completed` when its wait expires."""


class WorkerPool:
    """Submit/collect pool for asynchronous evaluation loops.

    Unlike :func:`parallel_map` (a barrier: dispatch a batch, wait for all
    of it), a ``WorkerPool`` keeps tasks in flight and hands back whichever
    one finishes first, so a caller can fold a result in and dispatch a
    replacement without waiting on the round's stragglers — the core of the
    asynchronous BO engine (see docs/PERFORMANCE.md).

    The thread backend runs every task on its own daemon thread feeding a
    completion queue, rather than a shared executor: a hung task then
    wedges only its own (abandonable) thread, never the pool.  That is
    what makes :meth:`abandon`, :meth:`replace_worker` and the bounded
    :meth:`close` possible — the supervision layer (``repro.supervise``,
    docs/ROBUSTNESS.md) depends on all three.

    Parameters
    ----------
    n_workers:
        Concurrent task capacity.  This is an explicit count, never derived
        from CPUs: async evaluation overlaps *latency* (simulated cluster
        runs, sleeps), which threads do regardless of core count.
    backend:
        ``"thread"`` (default) runs each task on a daemon thread;
        ``"serial"`` defers execution to :meth:`next_completed` (FIFO), so
        tests can exercise the submit/collect protocol deterministically
        with no threads at all.
    drain_timeout_s:
        Total time :meth:`close` will spend joining still-running task
        threads before abandoning them (they are daemons, so they can
        never block interpreter exit).
    tracer:
        Optional :class:`repro.obs.Tracer`; task execution time accumulates
        in the ``pool.task`` timer (the clock read stays inside the tracer,
        rule RPD005), and every task given up on bumps the
        ``pool.abandoned_tasks`` counter.

    Completion-order determinism is the *caller's* problem, exactly as for
    :func:`parallel_map`: tags let the caller re-associate results with
    submissions regardless of which finishes first.
    """

    def __init__(self, n_workers: int, *, backend: str = "thread",
                 drain_timeout_s: float = 5.0, tracer=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if backend not in ("thread", "serial"):
            raise ValueError(
                f"backend must be 'thread' or 'serial', got {backend!r}")
        if drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")
        self.n_workers = int(n_workers)
        self.backend = backend
        self.drain_timeout_s = float(drain_timeout_s)
        self._tracer = NULL_TRACER if tracer is None else tracer
        self._queue: deque = deque()          # serial backend: (tag, thunk)
        self._completions: queue.Queue = queue.Queue()  # (seq, result, exc)
        self._inflight: dict[int, Any] = {}   # seq -> tag
        self._threads: dict[int, threading.Thread] = {}
        self._ready: dict[int, tuple[Any, BaseException | None]] = {}
        self._discard: set[int] = set()       # abandoned seqs: drop late results
        self._n_submitted = 0
        self.abandoned_tasks = 0

    # -- protocol -----------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Tasks submitted but not yet collected."""
        return len(self._inflight) + len(self._queue)

    @property
    def free_workers(self) -> int:
        return max(self.n_workers - self.pending, 0)

    def submit(self, fn: Callable[[], Any], *, tag: Any = None) -> None:
        """Dispatch a zero-argument task; *tag* identifies it on collection."""
        if self.pending >= self.n_workers:
            raise RuntimeError(
                f"pool is full ({self.n_workers} tasks in flight); "
                "collect with next_completed() before submitting more")
        seq = self._n_submitted
        self._n_submitted += 1

        def _run() -> Any:
            with self._tracer.timer("pool.task"):
                return fn()

        if self.backend == "serial":
            self._queue.append((tag, _run))
            return

        def _worker() -> None:
            try:
                result: Any = _run()
                exc: BaseException | None = None
            except BaseException as e:  # noqa: BLE001 - relayed to collector
                result, exc = None, e
            self._completions.put((seq, result, exc))

        self._inflight[seq] = tag
        thread = threading.Thread(target=_worker, daemon=True,
                                  name=f"WorkerPool-task-{seq}")
        self._threads[seq] = thread
        thread.start()

    def _absorb(self, seq: int, result: Any,
                exc: BaseException | None) -> None:
        """File one completion-queue entry; late abandoned results drop."""
        if seq in self._discard:
            self._discard.discard(seq)
            return
        self._ready[seq] = (result, exc)

    def next_completed(self, timeout: float | None = None) -> tuple[Any, Any]:
        """Block until any in-flight task finishes; returns ``(tag, result)``.

        Ties (several tasks already done) resolve in submission order, so
        replaying a trace where everything completed "instantly" is
        deterministic.  A task that raised re-raises here, after being
        removed from the pool.  With *timeout* (seconds), a wait that
        expires raises :class:`PoolTimeout` and leaves every task in
        flight — the caller decides whether to keep waiting or
        :meth:`abandon`.
        """
        if self.backend == "serial":
            if not self._queue:
                raise RuntimeError("no tasks in flight")
            tag, run = self._queue.popleft()
            return tag, run()
        if not self._inflight:
            raise RuntimeError("no tasks in flight")
        while True:
            try:
                while True:
                    self._absorb(*self._completions.get_nowait())
            except queue.Empty:
                pass
            live = [seq for seq in self._ready if seq in self._inflight]
            if live:
                seq = min(live)  # submission-order tie-break
                tag = self._inflight.pop(seq)
                self._threads.pop(seq, None)
                result, exc = self._ready.pop(seq)
                if exc is not None:
                    raise exc
                return tag, result
            try:
                entry = self._completions.get(timeout=timeout)
            except queue.Empty:
                raise PoolTimeout(
                    f"no task completed within {timeout}s "
                    f"({len(self._inflight)} in flight)") from None
            self._absorb(*entry)

    def abandon(self, tag: Any) -> bool:
        """Give up on the in-flight task with *tag*; frees its slot.

        The task's thread is left to finish (or hang) on its own — it is a
        daemon, so it cannot block exit — and any result it eventually
        produces is silently dropped.  Returns True if a matching task was
        found.  Each abandonment bumps the audible ``pool.abandoned_tasks``
        counter.
        """
        if self.backend == "serial":
            for entry in list(self._queue):
                if entry[0] == tag:
                    self._queue.remove(entry)
                    self.abandoned_tasks += 1
                    self._tracer.count("pool.abandoned_tasks")
                    return True
            return False
        for seq, t in list(self._inflight.items()):
            if t == tag:
                del self._inflight[seq]
                self._threads.pop(seq, None)
                if seq in self._ready:
                    del self._ready[seq]  # completed, never collected
                else:
                    self._discard.add(seq)
                self.abandoned_tasks += 1
                self._tracer.count("pool.abandoned_tasks")
                return True
        return False

    def replace_worker(self, tag: Any) -> bool:
        """Reclaim the slot held by a dead/hung worker's task.

        With per-task daemon threads, "restarting a worker" means
        abandoning the wedged task (its thread is orphaned) and letting
        the caller resubmit on the freed slot — a fresh thread serves the
        redispatch.  Returns True if a matching task was reclaimed.
        """
        if self.abandon(tag):
            self._tracer.count("pool.workers_replaced")
            return True
        return False

    def close(self) -> None:
        """Shut the pool down; never blocks longer than ``drain_timeout_s``.

        Queued serial work is dropped; running threads get a bounded join
        (the drain budget split across them) and anything still alive
        after that is abandoned — counted in ``pool.abandoned_tasks`` —
        rather than waited on forever.
        """
        self._queue.clear()
        threads = list(self._threads.items())
        if threads:
            share = self.drain_timeout_s / len(threads)
            for _, thread in threads:
                thread.join(timeout=share)
        for seq, thread in threads:
            if thread.is_alive() and seq in self._inflight:
                self._discard.add(seq)
                self.abandoned_tasks += 1
                self._tracer.count("pool.abandoned_tasks")
        self._inflight.clear()
        self._threads.clear()
        self._ready.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
