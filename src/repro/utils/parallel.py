"""Shared executor abstraction for the library's compute hot paths.

Every parallelizable component (forest training, permutation importance,
the experiment harness) accepts an ``n_jobs`` parameter and funnels its
work through :func:`parallel_map`, so worker-pool policy lives in one
place:

* ``n_jobs=None`` defers to the ``ROBOTUNE_JOBS`` environment variable
  (unset/empty means serial) — the knob for turning on parallelism
  globally without touching call sites;
* ``n_jobs=1`` is strictly serial: the function runs in-process, in
  order, with no pool, so single-job results are byte-identical to the
  pre-parallel code;
* ``n_jobs=-1`` uses every available core (``-2`` all but one, etc.).

Determinism is the caller's contract: work items must carry their own
random state (see :func:`repro.utils.rng.spawn`) so results do not depend
on scheduling order.  ``parallel_map`` always returns results in input
order regardless of completion order.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                ThreadPoolExecutor, wait)
from typing import Any, Callable, Iterable, TypeVar

from ..obs import NULL_TRACER

__all__ = ["ENV_JOBS", "available_cpus", "resolve_n_jobs", "parallel_map",
           "WorkerPool"]

ENV_JOBS = "ROBOTUNE_JOBS"

_BACKENDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` spec into a concrete worker count (>= 1).

    ``None`` reads ``ROBOTUNE_JOBS`` (defaulting to 1 when unset); negative
    values count back from the number of available CPUs, joblib-style
    (``-1`` = all cores).
    """
    if n_jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(f"{ENV_JOBS} must be an integer, got {raw!r}")
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = available_cpus() + 1 + n_jobs
    if n_jobs < 1:
        raise ValueError("n_jobs must resolve to >= 1 worker")
    return n_jobs


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 n_jobs: int | None = None, backend: str = "thread",
                 chunksize: int | None = None, tracer=None) -> list[R]:
    """Map *fn* over *items*, optionally across a worker pool.

    Parameters
    ----------
    fn:
        The per-item worker.  With ``backend="process"`` it must be
        picklable (a module-level function or :func:`functools.partial`
        of one), as must every item and result.
    n_jobs:
        Worker count spec (see :func:`resolve_n_jobs`).  A resolved count
        of 1 — the default when ``ROBOTUNE_JOBS`` is unset — bypasses the
        pool entirely.
    backend:
        ``"thread"`` for GIL-releasing (numpy/BLAS-heavy) work,
        ``"process"`` for pure-Python CPU-bound work such as tree
        fitting, ``"serial"`` to force in-process execution.
    chunksize:
        Items per process-pool task (ignored by the thread backend);
        defaults to spreading items evenly over the workers.
    tracer:
        Optional :class:`repro.obs.Tracer`; each call emits one
        ``parallel.map`` event (resolved worker count and backend) and
        accumulates its elapsed time in the ``parallel.map`` timer.  The
        clock read happens inside the tracer, so this module itself
        never touches timing (rule RPD005).

    Returns results in input order.  Exceptions raised by *fn* propagate
    to the caller (the first one encountered in input order).
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    tracer = NULL_TRACER if tracer is None else tracer
    items = list(items)
    jobs = resolve_n_jobs(n_jobs)
    serial = backend == "serial" or jobs == 1 or len(items) <= 1
    workers = 1 if serial else min(jobs, len(items))
    tracer.emit("parallel.map", {"items": len(items), "workers": workers,
                                 "backend": "serial" if serial else backend})
    with tracer.timer("parallel.map"):
        if serial:
            return [fn(item) for item in items]
        if backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        if chunksize is None:
            chunksize = max(1, len(items) // (workers * 2))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))


class WorkerPool:
    """Submit/collect pool for asynchronous evaluation loops.

    Unlike :func:`parallel_map` (a barrier: dispatch a batch, wait for all
    of it), a ``WorkerPool`` keeps tasks in flight and hands back whichever
    one finishes first, so a caller can fold a result in and dispatch a
    replacement without waiting on the round's stragglers — the core of the
    asynchronous BO engine (see docs/PERFORMANCE.md).

    Parameters
    ----------
    n_workers:
        Concurrent task capacity.  This is an explicit count, never derived
        from CPUs: async evaluation overlaps *latency* (simulated cluster
        runs, sleeps), which threads do regardless of core count.
    backend:
        ``"thread"`` (default) runs tasks on a ``ThreadPoolExecutor``;
        ``"serial"`` defers execution to :meth:`next_completed` (FIFO), so
        tests can exercise the submit/collect protocol deterministically
        with no threads at all.
    tracer:
        Optional :class:`repro.obs.Tracer`; task execution time accumulates
        in the ``pool.task`` timer (the clock read stays inside the tracer,
        rule RPD005).

    Completion-order determinism is the *caller's* problem, exactly as for
    :func:`parallel_map`: tags let the caller re-associate results with
    submissions regardless of which finishes first.
    """

    def __init__(self, n_workers: int, *, backend: str = "thread",
                 tracer=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if backend not in ("thread", "serial"):
            raise ValueError(
                f"backend must be 'thread' or 'serial', got {backend!r}")
        self.n_workers = int(n_workers)
        self.backend = backend
        self._tracer = NULL_TRACER if tracer is None else tracer
        self._executor = ThreadPoolExecutor(max_workers=self.n_workers) \
            if backend == "thread" else None
        self._futures: dict[Any, Any] = {}   # future -> tag
        self._queue: deque = deque()         # serial backend: (tag, thunk)
        self._seq: dict[Any, int] = {}       # future -> submit order
        self._n_submitted = 0

    # -- protocol -----------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Tasks submitted but not yet collected."""
        return len(self._futures) + len(self._queue)

    @property
    def free_workers(self) -> int:
        return max(self.n_workers - self.pending, 0)

    def submit(self, fn: Callable[[], Any], *, tag: Any = None) -> None:
        """Dispatch a zero-argument task; *tag* identifies it on collection."""
        if self.pending >= self.n_workers:
            raise RuntimeError(
                f"pool is full ({self.n_workers} tasks in flight); "
                "collect with next_completed() before submitting more")

        def _run() -> Any:
            with self._tracer.timer("pool.task"):
                return fn()

        if self._executor is None:
            self._queue.append((tag, _run))
        else:
            fut = self._executor.submit(_run)
            self._futures[fut] = tag
            self._seq[fut] = self._n_submitted
        self._n_submitted += 1

    def next_completed(self) -> tuple[Any, Any]:
        """Block until any in-flight task finishes; returns ``(tag, result)``.

        Ties (several tasks already done) resolve in submission order, so
        replaying a trace where everything completed "instantly" is
        deterministic.  A task that raised re-raises here, after being
        removed from the pool.
        """
        if self._executor is None:
            if not self._queue:
                raise RuntimeError("no tasks in flight")
            tag, run = self._queue.popleft()
            return tag, run()
        if not self._futures:
            raise RuntimeError("no tasks in flight")
        done, _ = wait(self._futures, return_when=FIRST_COMPLETED)
        fut = min(done, key=self._seq.__getitem__)
        tag = self._futures.pop(fut)
        self._seq.pop(fut)
        return tag, fut.result()

    def close(self) -> None:
        """Shut the pool down, cancelling anything still queued."""
        self._queue.clear()
        if self._executor is not None:
            for fut in self._futures:
                fut.cancel()
            self._executor.shutdown(wait=True)
            self._futures.clear()
            self._seq.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
