"""Shared executor abstraction for the library's compute hot paths.

Every parallelizable component (forest training, permutation importance,
the experiment harness) accepts an ``n_jobs`` parameter and funnels its
work through :func:`parallel_map`, so worker-pool policy lives in one
place:

* ``n_jobs=None`` defers to the ``ROBOTUNE_JOBS`` environment variable
  (unset/empty means serial) — the knob for turning on parallelism
  globally without touching call sites;
* ``n_jobs=1`` is strictly serial: the function runs in-process, in
  order, with no pool, so single-job results are byte-identical to the
  pre-parallel code;
* ``n_jobs=-1`` uses every available core (``-2`` all but one, etc.).

Determinism is the caller's contract: work items must carry their own
random state (see :func:`repro.utils.rng.spawn`) so results do not depend
on scheduling order.  ``parallel_map`` always returns results in input
order regardless of completion order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

from ..obs import NULL_TRACER

__all__ = ["ENV_JOBS", "available_cpus", "resolve_n_jobs", "parallel_map"]

ENV_JOBS = "ROBOTUNE_JOBS"

_BACKENDS = ("serial", "thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` spec into a concrete worker count (>= 1).

    ``None`` reads ``ROBOTUNE_JOBS`` (defaulting to 1 when unset); negative
    values count back from the number of available CPUs, joblib-style
    (``-1`` = all cores).
    """
    if n_jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(f"{ENV_JOBS} must be an integer, got {raw!r}")
    n_jobs = int(n_jobs)
    if n_jobs < 0:
        n_jobs = available_cpus() + 1 + n_jobs
    if n_jobs < 1:
        raise ValueError("n_jobs must resolve to >= 1 worker")
    return n_jobs


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 n_jobs: int | None = None, backend: str = "thread",
                 chunksize: int | None = None, tracer=None) -> list[R]:
    """Map *fn* over *items*, optionally across a worker pool.

    Parameters
    ----------
    fn:
        The per-item worker.  With ``backend="process"`` it must be
        picklable (a module-level function or :func:`functools.partial`
        of one), as must every item and result.
    n_jobs:
        Worker count spec (see :func:`resolve_n_jobs`).  A resolved count
        of 1 — the default when ``ROBOTUNE_JOBS`` is unset — bypasses the
        pool entirely.
    backend:
        ``"thread"`` for GIL-releasing (numpy/BLAS-heavy) work,
        ``"process"`` for pure-Python CPU-bound work such as tree
        fitting, ``"serial"`` to force in-process execution.
    chunksize:
        Items per process-pool task (ignored by the thread backend);
        defaults to spreading items evenly over the workers.
    tracer:
        Optional :class:`repro.obs.Tracer`; each call emits one
        ``parallel.map`` event (resolved worker count and backend) and
        accumulates its elapsed time in the ``parallel.map`` timer.  The
        clock read happens inside the tracer, so this module itself
        never touches timing (rule RPD005).

    Returns results in input order.  Exceptions raised by *fn* propagate
    to the caller (the first one encountered in input order).
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    tracer = NULL_TRACER if tracer is None else tracer
    items = list(items)
    jobs = resolve_n_jobs(n_jobs)
    serial = backend == "serial" or jobs == 1 or len(items) <= 1
    workers = 1 if serial else min(jobs, len(items))
    tracer.emit("parallel.map", {"items": len(items), "workers": workers,
                                 "backend": "serial" if serial else backend})
    with tracer.timer("parallel.map"):
        if serial:
            return [fn(item) for item in items]
        if backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        if chunksize is None:
            chunksize = max(1, len(items) // (workers * 2))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
