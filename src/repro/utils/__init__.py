"""Shared utilities: RNG plumbing, statistics helpers, parallel executor."""

from .parallel import available_cpus, parallel_map, resolve_n_jobs
from .rng import as_generator, spawn
from .stats import geometric_mean, percentile, summarize

__all__ = ["as_generator", "spawn", "geometric_mean", "percentile",
           "summarize", "available_cpus", "parallel_map", "resolve_n_jobs"]
