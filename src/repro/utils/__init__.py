"""Shared utilities: RNG plumbing, statistics helpers."""

from .rng import as_generator, spawn
from .stats import geometric_mean, percentile, summarize

__all__ = ["as_generator", "spawn", "geometric_mean", "percentile", "summarize"]
