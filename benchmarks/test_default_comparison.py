"""E-DEF: §5.2 — tuned configurations vs the Spark default configuration.

Expected shape: defaults OOM on PageRank and ConnectedComponents, hit
runtime errors on the two larger TeraSort datasets, and are massively
slower on KMeans (the paper reports 27.1x) and moderately slower on
LogisticRegression (2.17x).
"""

from repro.bench import run_default_comparison
from repro.sparksim import RunStatus, SparkConf, SparkSimulator
from repro.workloads import get_workload

from conftest import get_study


def test_default_comparison(benchmark, emit):
    study = get_study()
    report = benchmark.pedantic(lambda: run_default_comparison(study),
                                rounds=1, iterations=1)
    emit("default_comparison", report)

    sim = SparkSimulator()
    conf = SparkConf()
    for wl in ("pagerank", "connectedcomponents"):
        res = sim.run(get_workload(wl, "D1").build_stages(), conf, rng=0)
        assert res.status is RunStatus.OOM, \
            f"default config should OOM on {wl}"
    for ds in ("D2", "D3"):
        res = sim.run(get_workload("terasort", ds).build_stages(), conf, rng=0)
        assert not res.ok, f"default config should fail on terasort {ds}"
    # KMeans succeeds but far from tuned performance.
    km = sim.run(get_workload("kmeans", "D1").build_stages(), conf, rng=0)
    tuned = study.mean_best_time("ROBOTune", "kmeans", "D1")
    assert km.ok
    assert km.duration_s / tuned > 5.0, \
        "KMeans default should be many times slower than tuned"
