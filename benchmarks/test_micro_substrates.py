"""Micro-benchmarks of the substrates (classic pytest-benchmark timing).

These guard against performance regressions in the hot paths: one
simulated application run, one RF fit, one GP fit+predict, and LHS design
generation.  The simulator must stay orders of magnitude faster than the
workloads it models for the paper-scale studies to be affordable.
"""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor
from repro.ml import RandomForestRegressor
from repro.sampling import maximin_latin_hypercube
from repro.space import spark_space
from repro.sparksim import SparkSimulator
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def space():
    return spark_space()


def test_bench_simulator_run(benchmark, space):
    sim = SparkSimulator()
    stages = get_workload("pagerank", "D2").build_stages()
    conf = space.decode(np.full(space.dim, 0.6))
    result = benchmark(lambda: sim.run(stages, conf, rng=1))
    assert result.duration_s > 0


def test_bench_simulator_terasort(benchmark, space):
    sim = SparkSimulator()
    stages = get_workload("terasort", "D3").build_stages()
    conf = space.decode(np.full(space.dim, 0.7))
    result = benchmark(lambda: sim.run(stages, conf, rng=1))
    assert result.duration_s > 0


def test_bench_rf_fit(benchmark, space):
    rng = np.random.default_rng(0)
    X = rng.random((100, space.dim))
    y = 3 * X[:, 0] + np.sin(5 * X[:, 1]) + rng.normal(0, 0.1, 100)
    forest = benchmark(lambda: RandomForestRegressor(50, rng=1).fit(X, y))
    assert forest.oob_score() > 0.3


def test_bench_gp_fit_predict(benchmark):
    rng = np.random.default_rng(0)
    X = rng.random((60, 6))
    y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2
    Xq = rng.random((256, 6))

    def fit_predict():
        gp = GaussianProcessRegressor(rng=1).fit(X, y)
        return gp.predict(Xq, return_std=True)

    mu, sigma = benchmark(fit_predict)
    assert mu.shape == (256,) and sigma.shape == (256,)


def test_bench_lhs_design(benchmark, space):
    U = benchmark(lambda: maximin_latin_hypercube(100, space.dim, rng=3))
    assert U.shape == (100, space.dim)
