"""Linter throughput benchmark: cached+parallel re-run vs cold serial.

The acceptance bar for the result cache (docs/ANALYSIS.md) is that a
warm ``--jobs``-parallel re-run over an unchanged tree is at least 3x
faster than a cold serial run — in practice the warm run skips parsing
and rule execution entirely (per-module entries hit by content hash,
the flow phase hits by tree signature) and the margin is orders of
magnitude.  Numbers append to ``BENCH_lint.json`` at the repo root,
alongside ``BENCH_hotpaths.json``, so successive commits leave a
comparable record.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_BENCH_FILE = REPO_ROOT / "BENCH_lint.json"

#: Cached re-runs must beat the cold serial run by at least this factor.
MIN_SPEEDUP = 3.0

_entries: list[dict] = []


def _record(name: str, wall_s: float, n: int, **extra) -> float:
    entry = {"name": name, "wall_s": round(wall_s, 6), "n": n,
             "timestamp": time.time()}
    entry.update(extra)
    _entries.append(entry)
    return wall_s


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_cached_parallel_rerun_vs_cold_serial(tmp_path, capsys):
    paths = [REPO_ROOT / "src"]
    n_files = analyze_paths(paths).files_scanned

    cold = _time(lambda: analyze_paths(paths, n_jobs=1))

    cache = tmp_path / "lint-cache"
    analyze_paths(paths, cache_dir=cache)            # prime the cache
    warm = _time(lambda: analyze_paths(paths, cache_dir=cache, n_jobs=2))

    # The warm run must be a full cache hit (per-module + flow phases).
    report = analyze_paths(paths, cache_dir=cache, n_jobs=2)
    assert report.cache_misses == 0

    speedup = cold / warm
    _record("lint_cold_serial_src", cold, n=n_files)
    _record("lint_warm_cached_jobs2_src", warm, n=n_files,
            speedup=round(speedup, 2))
    with capsys.disabled():
        print(f"\nlint over src ({n_files} files): cold serial {cold:.3f}s, "
              f"warm cached --jobs 2 {warm * 1e3:.1f}ms "
              f"({speedup:.0f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"cached re-run only {speedup:.2f}x faster than cold serial "
        f"(cold {cold:.3f}s, warm {warm:.3f}s); the cache is not earning "
        "its keep")


def test_flow_phase_overhead_is_bounded(capsys):
    """The whole-program phase must not dominate a cold run."""
    paths = [REPO_ROOT / "src"]
    module_only = _time(
        lambda: analyze_paths(paths, ignore=["RPE001", "RPX001", "RPX002",
                                             "RPX003", "RPX004"]))
    full = _time(lambda: analyze_paths(paths))
    overhead = full - module_only
    _record("lint_module_rules_only_src", module_only, n=1)
    _record("lint_all_rules_src", full, n=1)
    with capsys.disabled():
        print(f"flow-phase overhead: {overhead * 1e3:.0f}ms on top of "
              f"{module_only:.3f}s per-module work")
    # Generous bound: graph + summaries + 5 flow rules stay well under
    # the per-module phase's own cost (they reuse its parsed ASTs).
    assert full < module_only * 2.5


def test_zzz_write_lint_bench_file(capsys):
    """Flush collected timings (runs last by name ordering)."""
    existing = []
    if LINT_BENCH_FILE.exists():
        try:
            existing = json.loads(LINT_BENCH_FILE.read_text())
        except json.JSONDecodeError:
            existing = []
    existing.extend(_entries)
    LINT_BENCH_FILE.write_text(json.dumps(existing, indent=2) + "\n")
    with capsys.disabled():
        print(f"[{len(_entries)} timings appended to {LINT_BENCH_FILE.name}]")
    assert LINT_BENCH_FILE.exists()
