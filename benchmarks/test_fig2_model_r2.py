"""E-F2: Figure 2 — R² of Lasso/ElasticNet/RF/ET on PR and KM datasets.

Expected shape: tree ensembles (RF best) explain substantially more
variance than the linear models across every dataset.
"""

import numpy as np

from repro.bench import collect_lhs_times, model_r2_scores, render_fig2

from conftest import FIG2_SAMPLES


def _fig2_scores() -> dict[str, dict[str, float]]:
    scores: dict[str, dict[str, float]] = {}
    for wl, abbrev in (("pagerank", "PR"), ("kmeans", "KM")):
        for ds in ("D1", "D2", "D3"):
            U, y = collect_lhs_times(wl, ds, FIG2_SAMPLES, rng=101)
            scores[f"{abbrev}-{ds}"] = model_r2_scores(U, y, rng=102)
    return scores


def test_fig2(benchmark, emit):
    scores = benchmark.pedantic(_fig2_scores, rounds=1, iterations=1)
    emit("fig2_model_r2", render_fig2(scores))
    rf = np.mean([s["RF"] for s in scores.values()])
    lasso = np.mean([s["Lasso"] for s in scores.values()])
    enet = np.mean([s["ElasticNet"] for s in scores.values()])
    # Paper shape: RF explains the most variance; linear models trail.
    assert rf > lasso
    assert rf > enet
