"""E-F7: Figure 7 — recall of selected parameters vs selection samples.

Expected shape: recall stays at (or very near) 1.0 down to about 100
samples and degrades below that, motivating the paper's choice of 100
generic LHS samples.
"""

import numpy as np

from repro.bench import render_fig7, selection_recall_sweep
from repro.workloads import all_workload_names

from conftest import FIG7_SAMPLES


def _sweep():
    out = {}
    for i, wl in enumerate(all_workload_names()):
        out[wl] = selection_recall_sweep(
            wl, ground_truth_samples=FIG7_SAMPLES,
            sample_counts=(125, 100, 75, 50, 25), rng=300 + i)
    return out


def test_fig7(benchmark, emit):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit("fig7_selection_recall", render_fig7(points))
    at100 = [p.recall for pts in points.values() for p in pts
             if p.n_samples == 100]
    at25 = [p.recall for pts in points.values() for p in pts
            if p.n_samples == 25]
    assert np.mean(at100) >= 0.75, "recall at 100 samples should be high"
    assert np.mean(at100) >= np.mean(at25), \
        "recall should not improve when samples shrink to 25"
