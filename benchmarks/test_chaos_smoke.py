"""Chaos smoke benchmark: tuning under a fixed transient-fault plan.

Runs short ROBOTune and RandomSearch sessions with fault injection at a
fixed plan seed and asserts the resilience guarantees that matter
operationally: the session completes (no unhandled exception), spends its
full budget, surfaces faults, and the retry/backoff overhead stays
bounded relative to the fault-free twin of the same session.  The E-ROB
fault-rate sweep table is rendered into ``results/`` alongside the other
artifacts.
"""

from __future__ import annotations

import numpy as np

from repro.bench.experiments import run_robustness_experiment
from repro.core.tuner import ROBOTune
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.space.spark_params import spark_space
from repro.tuners.objective import WorkloadObjective
from repro.tuners.random_search import RandomSearch
from repro.workloads.registry import get_workload

from conftest import TRIALS

SEED = 11
FAULT_RATE = 0.1
BUDGET = 30


def _objective(space, *, faults: float):
    objective = WorkloadObjective(get_workload("pagerank", "D1"), space,
                                  rng=np.random.default_rng(SEED + 1))
    if faults:
        objective = FaultInjector(objective,
                                  FaultPlan(faults, seed=SEED + 2),
                                  retry=RetryPolicy(max_retries=2))
    return objective


def test_chaos_random_search_bounded_overhead(capsys):
    space = spark_space()
    clean = RandomSearch().tune(_objective(space, faults=0.0), BUDGET,
                                rng=np.random.default_rng(SEED))
    faulted_obj = _objective(space, faults=FAULT_RATE)
    faulted = RandomSearch().tune(faulted_obj, BUDGET,
                                  rng=np.random.default_rng(SEED))
    stats = faulted_obj.stats

    assert faulted.n_evaluations == BUDGET
    assert stats["injected"] > 0
    # At a 10% fault rate with the documented slowdown/abort magnitudes
    # and <=2 retries, the whole chaos tax — retried attempts, backoff,
    # stretched runs — must stay well under a 2x search-cost blowup.
    overhead = faulted.search_cost_s / clean.search_cost_s
    # The injector always executes the wrapped run, so the fault-free
    # twin saw the identical underlying simulator draws.
    assert faulted.search_cost_s >= clean.search_cost_s
    assert overhead < 2.0
    # Quality may degrade but the session still finds a usable config.
    assert np.isfinite(faulted.best_time_s)
    with capsys.disabled():
        print(f"\nchaos RS (rate {FAULT_RATE}, budget {BUDGET}): "
              f"{stats['injected']} injected, {stats['transient']} surfaced, "
              f"{stats['retries']} retries, cost overhead {overhead:.2f}x, "
              f"best {faulted.best_time_s:.0f}s vs clean "
              f"{clean.best_time_s:.0f}s")


def test_chaos_robotune_completes(capsys):
    space = spark_space()
    objective = _objective(space, faults=FAULT_RATE)
    result = ROBOTune(rng=SEED).tune(objective, BUDGET,
                                     rng=np.random.default_rng(SEED))
    stats = objective.stats
    assert result.n_evaluations == BUDGET
    assert np.isfinite(result.best_time_s)
    assert stats["injected"] > 0
    with capsys.disabled():
        print(f"chaos ROBOTune (rate {FAULT_RATE}, budget {BUDGET}): "
              f"best {result.best_time_s:.0f}s, {stats['injected']} faults "
              f"injected, {stats['retries']} retries")


def test_chaos_supervised_robotune_quarantines_poison(capsys):
    """Supervised chaos: hangs, worker deaths and a deterministic poison
    config at ``async_workers=4`` must neither deadlock nor starve the
    budget, and the repeat offender must end up quarantined."""
    import threading

    from repro.core.memo import ParameterSelectionCache
    from repro.faults import HangInjector, HangPlan
    from repro.supervise import SupervisePolicy

    space = spark_space()
    objective = _objective(space, faults=0.0)
    # Pre-warm the selection cache: the chaos must land on the supervised
    # BO loop, not the (unsupervised) selection phase.
    cache = ParameterSelectionCache()
    cache.put(objective.workload.key, list(space.names)[:8])

    init_samples = 6
    lock = threading.Lock()
    state = {"seen": 0, "target": None}

    def poison(u):
        # The first BO proposal is a deterministic repeat offender.
        with lock:
            state["seen"] += 1
            if state["seen"] <= init_samples:
                return False
            if state["target"] is None:
                state["target"] = np.asarray(u, dtype=float).copy()
            return bool(np.array_equal(u, state["target"]))

    # Plan seed 49 draws no fault on the initial design (indices 0-5)
    # and a hang/death mix across the supervised BO phase.
    chaotic = HangInjector(objective,
                           HangPlan(0.25, seed=49, hang_s=2.0,
                                    death_share=0.5),
                           poison=poison, poison_kind="worker_death")
    tuner = ROBOTune(selection_cache=cache, init_samples=init_samples,
                     async_workers=4, rng=SEED,
                     supervise=SupervisePolicy(eval_timeout_s=0.5,
                                               speculate=True,
                                               quarantine_after=2))
    result = tuner.tune(chaotic, 24, rng=np.random.default_rng(SEED))

    assert result.n_evaluations == 24        # full budget despite the chaos
    assert result.quarantined_configs        # the repeat offender is out
    faults = [e.fault for e in result.evaluations if e.fault]
    assert faults
    assert np.isfinite(result.best_time_s)
    with capsys.disabled():
        print(f"\nchaos supervised ROBOTune (k=4, budget 24): "
              f"{chaotic.stats['hangs']} hangs, "
              f"{chaotic.stats['deaths']} deaths, "
              f"{len(result.quarantined_configs)} quarantined, "
              f"{len(faults)} censored evals, "
              f"best {result.best_time_s:.0f}s")


def test_chaos_under_daemon_survives_daemon_death(capsys, tmp_path):
    """Service-level chaos in bounded time: a supervised session with a
    faulty objective runs under a real ``repro serve`` daemon, the daemon
    is SIGKILLed mid-session (every in-flight evaluation worker dies with
    it), and a restarted daemon must adopt the orphan and settle it DONE
    with the full budget.  ``--recover censor`` writes the in-flight
    evaluations off instead of re-executing them, so the whole scenario
    stays inside the CI step's hard 600s cap."""
    from repro.serve import SessionSpec
    from tests.serve.harness import DaemonHarness, export_artifacts

    spec = SessionSpec(workload="pagerank", budget=16, seed=SEED,
                       init_samples=4, selection_samples=10,
                       selection_repeats=2,
                       fault_rate=FAULT_RATE, retries=2,
                       async_workers=3, eval_timeout_s=5.0,
                       speculate=True, quarantine_after=2)
    store_root = tmp_path / "store"

    first = DaemonHarness(store_root, workers=1).start()
    sid = first.client().submit(spec)
    first.kill_when_journal_reaches(sid, 6)
    assert first.store.state(sid) == "RUNNING"  # orphaned mid-chaos

    with DaemonHarness(store_root, workers=1, drain=True,
                       extra_args=("--recover", "censor")) as second:
        assert second.wait(timeout_s=540) == 0
        export_artifacts(second.store)

    view = first.store.view(sid)
    assert view["state"] == "DONE", view.get("error")
    result = view["result"]
    assert result["n_evaluations"] == spec.budget  # full budget, post-crash
    assert result["best_objective"] is not None
    assert np.isfinite(result["best_objective"])
    with capsys.disabled():
        print(f"\nchaos daemon (rate {FAULT_RATE}, supervised k=3, "
              f"SIGKILL + censor-recover): {result['n_evaluations']} evals, "
              f"best {result['best_objective']:.0f}s, "
              f"{len(result['quarantined_configs'])} quarantined")


def test_robustness_sweep_report(emit):
    table = run_robustness_experiment(budget=25, trials=min(TRIALS, 2),
                                      fault_rates=(0.0, 0.05, 0.1, 0.2),
                                      tuners=("ROBOTune", "RandomSearch"),
                                      base_seed=SEED, n_jobs=None)
    emit("e_rob_fault_sweep", table)
    assert "fault rate" in table
