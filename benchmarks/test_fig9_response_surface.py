"""E-F9: Figure 9 — the GP's perceived response surface over iterations.

Expected shape: already by iteration ~25 the model has identified
promising high-performing regions, and the perceived-near-optimal area
stays a modest fraction of the plane (the model discriminates regions).
"""

import pytest

from repro.bench import render_fig9, response_surface
from repro.bench.experiments import svg_fig9

from conftest import get_study


def _robotune_pr_d3_result(study):
    for rec in study.filter(tuner="ROBOTune", workload="pagerank",
                            dataset="D3"):
        res = rec.result
        if res is None or res.reduced_space is None:
            continue
        if ("spark.executor.cores" in res.reduced_space
                and "spark.executor.memory" in res.reduced_space):
            return res
    return None


def test_fig9(benchmark, emit, results_dir):
    study = benchmark.pedantic(get_study, rounds=1, iterations=1)
    result = _robotune_pr_d3_result(study)
    if result is None:
        pytest.skip("no PR-D3 session selected the cores/memory plane")
    emit("fig9_response_surface", render_fig9(result))
    for name, svg in svg_fig9(result).items():
        (results_dir / name).write_text(svg)
    surfaces = response_surface(result, at_iterations=(25, 50, 75))
    for surf in surfaces.values():
        mean = surf["mean"]
        # The model must discriminate: not the whole plane near-optimal.
        assert (mean <= mean.min() * 1.2).mean() < 0.9
