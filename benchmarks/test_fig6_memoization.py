"""E-F6: Figure 6 — convergence speed, cold (PR-D1) vs memoized (PR-D3).

Expected shape: on the memoized dataset ROBOTune starts near-optimal
(well-performing configurations appear very early) and reaches within 10%
of its final best in far fewer iterations than on the cold dataset.
"""

import numpy as np

from repro.bench import iterations_to_within, render_fig6
from repro.bench.experiments import svg_fig6

from conftest import get_study


def test_fig6(benchmark, emit, results_dir):
    study = benchmark.pedantic(get_study, rounds=1, iterations=1)
    emit("fig6_memoization", render_fig6(study))
    for name, svg in svg_fig6(study).items():
        (results_dir / name).write_text(svg)

    def mean_iters(dataset: str, frac: float) -> float:
        recs = study.filter(tuner="ROBOTune", workload="pagerank",
                            dataset=dataset)
        its = [iterations_to_within(r.curve, frac) for r in recs]
        return float(np.mean([i for i in its if i is not None]))

    cold = mean_iters("D1", 0.10)
    warm = mean_iters("D3", 0.10)
    # Mean over trials; a small slack absorbs the extreme-value noise of
    # "within X% of own best" at low trial counts.
    assert warm <= cold + 5, \
        f"memoized sessions should converge faster (cold={cold}, warm={warm})"
