"""E-F5: Figure 5 — per-evaluation execution-time distributions (PR, KM).

Expected shape: the baselines' medians sit well above ROBOTune's (the paper
reports 1.35-1.53x) and their tails are much longer.
"""

import numpy as np

from repro.bench import render_fig5

from conftest import get_study


def test_fig5(benchmark, emit):
    study = benchmark.pedantic(get_study, rounds=1, iterations=1)
    emit("fig5_exec_distribution", render_fig5(study))
    for wl in ("pagerank", "kmeans"):
        robo = np.concatenate([r.exec_times
                               for r in study.filter(tuner="ROBOTune",
                                                     workload=wl)])
        rs = np.concatenate([r.exec_times
                             for r in study.filter(tuner="RandomSearch",
                                                   workload=wl)])
        assert np.median(rs) > np.median(robo), \
            f"RS median should exceed ROBOTune's on {wl}"
