"""E-F3: Figure 3 — best-config execution time scaled to Random Search.

Expected shape: ROBOTune finds similar or better configurations than
BestConfig/Gunther/RS under the same budget (geo-mean ratio <= 1).
"""

from repro.bench import render_fig3
from repro.bench.experiments import svg_fig3
from repro.utils.stats import geometric_mean

from conftest import get_study


def test_fig3(benchmark, emit, results_dir):
    study = benchmark.pedantic(get_study, rounds=1, iterations=1)
    emit("fig3_best_config", render_fig3(study))
    (results_dir / "fig3_best_config.svg").write_text(svg_fig3(study))
    ratios = []
    for rec in study.filter(tuner="ROBOTune"):
        rs = study.mean_best_time("RandomSearch", rec.workload, rec.dataset)
        ratios.append(rec.best_time_s / rs)
    # ROBOTune should not lose to Random Search on average.
    assert geometric_mean(ratios) <= 1.05
