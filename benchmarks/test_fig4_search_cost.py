"""E-F4: Figure 4 — search cost scaled to Random Search.

Expected shape: ROBOTune's search cost is clearly below every baseline's
(the paper reports 1.5-1.6x improvements on average).
"""

from repro.bench import render_fig4
from repro.bench.experiments import svg_fig4
from repro.utils.stats import geometric_mean

from conftest import get_study


def test_fig4(benchmark, emit, results_dir):
    study = benchmark.pedantic(get_study, rounds=1, iterations=1)
    emit("fig4_search_cost", render_fig4(study))
    (results_dir / "fig4_search_cost.svg").write_text(svg_fig4(study))
    for baseline in ("BestConfig", "Gunther", "RandomSearch"):
        ratios = []
        for rec in study.filter(tuner="ROBOTune"):
            base = study.mean_search_cost(baseline, rec.workload, rec.dataset)
            ratios.append(rec.search_cost_s / base)
        assert geometric_mean(ratios) < 1.0, \
            f"ROBOTune search cost should beat {baseline}"
