"""E-F8: Figure 8 — sampling behaviour in the cores-vs-memory plane.

Expected shape: ROBOTune concentrates samples in a promising region while
still covering the plane (exploitation + exploration); the baselines show
no concentration pattern beyond chance.
"""

import numpy as np

from repro.bench import render_fig8

from conftest import get_study


def _densest_share(study, tuner: str) -> float:
    recs = study.filter(tuner=tuner, workload="pagerank", dataset="D3")
    pts = np.vstack([r.cores_mem for r in recs])
    cores = pts[:, 0] / 32.0
    logmem = np.log(pts[:, 1] / 1024.0) / np.log(180.0)
    hist = np.zeros((5, 5))
    np.add.at(hist, (np.clip((cores * 5).astype(int), 0, 4),
                     np.clip((logmem * 5).astype(int), 0, 4)), 1)
    return float(hist.max() / hist.sum())


def test_fig8(benchmark, emit):
    study = benchmark.pedantic(get_study, rounds=1, iterations=1)
    emit("fig8_sampling_behavior", render_fig8(study))
    robo = _densest_share(study, "ROBOTune")
    rs = _densest_share(study, "RandomSearch")
    assert robo > rs, ("ROBOTune should concentrate sampling more than "
                       f"random search (robo={robo:.2f}, rs={rs:.2f})")
