"""Hot-path perf-regression smoke benchmark.

Times the optimized compute kernels (vectorized forest training, batched
permutation importance, incremental GP updates, one BO iteration, a small
end-to-end tune) and appends the wall-clock numbers to
``BENCH_hotpaths.json`` at the repo root, so successive commits leave a
comparable record.  Where a reference implementation is kept in-tree
(the per-repeat importance loop, the from-scratch GP refit), both sides
are timed and the speedup is printed.

The BO-engine benchmarks (analytic-gradient hyperparameter fits vs
finite differences, batched constant-liar rounds vs the serial loop)
write their numbers to a separate ``BENCH_bo_engine.json`` so the
engine-level record is easy to diff on its own.

This is a smoke benchmark: it asserts only that the optimized paths are
not slower than their in-tree reference implementations (with generous
slack for machine noise), never absolute times.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import BOEngine
from repro.core.tuner import ROBOTune
from repro.gp.gpr import GaussianProcessRegressor, default_bo_kernel
from repro.ml import RandomForestRegressor, grouped_permutation_importance
from repro.sampling import latin_hypercube
from repro.space.spark_params import spark_space
from repro.tuners import SyntheticObjective, synthetic_space
from repro.tuners.objective import WorkloadObjective
from repro.workloads.registry import get_workload

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json"
BO_BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_bo_engine.json"

_entries: list[dict] = []
_bo_entries: list[dict] = []


def _record(name: str, wall_s: float, n: int) -> float:
    _entries.append({"name": name, "wall_s": round(wall_s, 6), "n": n,
                     "timestamp": time.time()})
    return wall_s


def _record_bo(name: str, wall_s: float, n: int,
               speedup: float | None = None) -> float:
    entry = {"name": name, "wall_s": round(wall_s, 6), "n": n,
             "timestamp": time.time()}
    if speedup is not None:
        entry["speedup"] = round(speedup, 3)
    _bo_entries.append(entry)
    return wall_s


def _time(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_forest_fit_wall_time(capsys):
    rng = np.random.default_rng(0)
    X = rng.random((300, 12))
    y = 4 * X[:, 0] + np.sin(6 * X[:, 1]) + rng.normal(0, 0.05, 300)
    wall = _time(lambda: RandomForestRegressor(60, rng=1).fit(X, y))
    _record("forest_fit_60x300x12", wall, n=300)
    with capsys.disabled():
        print(f"\nforest fit (60 trees, 300x12): {wall:.3f}s")
    assert wall > 0


def test_split_search_batched_vs_scalar(capsys):
    from repro.ml.tree import DecisionTreeRegressor
    # Node-sized matrices: most split searches in a fitted tree happen on
    # a few dozen rows, where per-column call overhead dominates.
    rng = np.random.default_rng(7)
    nodes = [rng.random((int(n), 12)) for n in rng.integers(8, 80, 60)]
    ys = [3 * M[:, 0] + rng.normal(0, 0.2, M.shape[0]) for M in nodes]
    sses = [float(np.sum((y - y.mean()) ** 2)) for y in ys]
    tree = DecisionTreeRegressor()
    batched = _time(lambda: [tree._best_thresholds_batch(M, y, s)
                             for M, y, s in zip(nodes, ys, sses)], repeats=5)
    scalar = _time(lambda: [[tree._best_threshold(M[:, j], y, s)
                             for j in range(M.shape[1])]
                            for M, y, s in zip(nodes, ys, sses)], repeats=5)
    _record("split_search_batched_60nodes_x12", batched, n=60)
    _record("split_search_scalar_60nodes_x12", scalar, n=60)
    with capsys.disabled():
        print(f"CART split search (60 nodes x 12 feats): "
              f"batched {batched * 1e3:.2f}ms vs "
              f"scalar {scalar * 1e3:.2f}ms ({scalar / batched:.1f}x)")
    assert batched <= scalar * 1.5


def test_grouped_importance_batched_vs_loop(capsys):
    rng = np.random.default_rng(1)
    X = rng.random((250, 10))
    y = 5 * X[:, 0] + 2 * X[:, 1] * X[:, 2] + rng.normal(0, 0.05, 250)
    forest = RandomForestRegressor(60, rng=2).fit(X, y)
    groups = {f"g{j}": [j] for j in range(10)}
    batched = _time(lambda: grouped_permutation_importance(
        forest, groups, n_repeats=10, rng=3, batched=True))
    loop = _time(lambda: grouped_permutation_importance(
        forest, groups, n_repeats=10, rng=3, batched=False), repeats=1)
    _record("grouped_importance_batched", batched, n=250)
    _record("grouped_importance_loop", loop, n=250)
    with capsys.disabled():
        print(f"grouped importance: batched {batched:.3f}s vs "
              f"loop {loop:.3f}s ({loop / batched:.1f}x)")
    assert batched <= loop * 1.5  # generous slack for timer noise


def test_gp_update_vs_refit(capsys):
    rng = np.random.default_rng(2)
    n = 120
    X = rng.random((n, 5))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2

    def incremental():
        gp = GaussianProcessRegressor(kernel=default_bo_kernel(), alpha=1e-8,
                                      optimize=False).fit(X[:20], y[:20])
        for m in range(21, n + 1):
            gp.update(X[:m], y[:m])

    def refit():
        gp = GaussianProcessRegressor(kernel=default_bo_kernel(), alpha=1e-8,
                                      optimize=False).fit(X[:20], y[:20])
        for m in range(21, n + 1):
            gp.fit(X[:m], y[:m])

    inc = _time(incremental, repeats=2)
    full = _time(refit, repeats=2)
    _record("gp_incremental_growth_20_to_120", inc, n=n)
    _record("gp_full_refit_growth_20_to_120", full, n=n)
    with capsys.disabled():
        print(f"GP growth to n={n}: incremental {inc:.3f}s vs "
              f"refit {full:.3f}s ({full / inc:.1f}x)")
    assert inc <= full * 1.5


def test_bo_iteration_wall_time(capsys):
    space = synthetic_space(4)
    objective = SyntheticObjective(space, n_effective=3, noise=0.01, rng=4)
    initial = [objective(u) for u in latin_hypercube(20, 4, rng=4)]

    def one_round():
        engine = BOEngine(rng=5, n_candidates=256)
        engine.minimize(objective, space, initial, budget=3)

    wall = _time(one_round, repeats=2) / 3.0
    _record("bo_iteration_n20_d4", wall, n=20)
    with capsys.disabled():
        print(f"BO iteration (n=20, d=4): {wall:.3f}s")
    assert wall > 0


def test_end_to_end_tune_wall_time(capsys):
    space = spark_space()

    def tune():
        objective = WorkloadObjective(get_workload("kmeans", "D1"), space,
                                      rng=6)
        ROBOTune(rng=6).tune(objective, 40, rng=6)

    wall = _time(tune, repeats=1)
    _record("robotune_e2e_kmeans_d1_b40", wall, n=40)
    with capsys.disabled():
        print(f"end-to-end tune (kmeans/D1, budget 40): {wall:.3f}s")
    assert wall > 0


def test_gp_hyperopt_gradient_vs_fd(capsys):
    """Analytic NLL gradients vs finite differences at n=100.

    Finite differences pay ``len(theta) + 1`` likelihood evaluations per
    optimizer gradient, so the analytic speedup grows with the kernel's
    hyperparameter count: measured on both the default 3-parameter BO
    kernel and a 5-parameter two-component composite.
    """
    from repro.gp.kernels import ConstantKernel, Matern52, RBF, WhiteKernel

    rng = np.random.default_rng(20)
    n = 100
    X = rng.random((n, 8))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 0.05 * rng.standard_normal(n)

    def composite():
        return (ConstantKernel(1.0) * Matern52(0.5)
                + ConstantKernel(0.5) * RBF(1.0) + WhiteKernel(1e-2))

    with capsys.disabled():
        print()
        for label, make, floor in [("default3", default_bo_kernel, 2.0),
                                   ("composite5", composite, 3.0)]:
            fd = _time(lambda: GaussianProcessRegressor(
                kernel=make(), rng=21).fit(X, y), repeats=2)
            ag = _time(lambda: GaussianProcessRegressor(
                kernel=make(), rng=21,
                analytic_gradients=True).fit(X, y), repeats=2)
            _record_bo(f"gp_hyperopt_fd_{label}_n100", fd, n=n)
            _record_bo(f"gp_hyperopt_gradient_{label}_n100", ag, n=n,
                       speedup=fd / ag)
            print(f"GP hyperopt n={n} ({label}): FD {fd:.3f}s vs "
                  f"analytic {ag:.3f}s ({fd / ag:.1f}x)")
            assert ag <= fd / floor  # measured ~3x / ~9x; floor is slack


class _SleepyObjective(SyntheticObjective):
    """Synthetic objective with a fixed per-evaluation latency, standing
    in for a cluster run; ``spawn_view`` is inherited, so batched rounds
    may overlap the sleeps."""

    sleep_s = 0.2

    def __call__(self, u, time_limit_s=None):
        time.sleep(self.sleep_s)
        return super().__call__(u, time_limit_s)


def test_batch_bo_vs_serial_rounds(capsys):
    """q=4 constant-liar rounds vs the serial loop on a latency-bound
    objective: concurrent evaluation must overlap the waiting."""
    budget = 12

    def run(batch_size, n_jobs):
        space = synthetic_space(4)
        objective = _SleepyObjective(space, n_effective=3, noise=0.01,
                                     rng=22)
        initial = [objective(u) for u in latin_hypercube(8, 4, rng=22)]
        engine = BOEngine(rng=23, n_candidates=64, refine=False,
                          batch_size=batch_size, n_jobs=n_jobs)
        t0 = time.perf_counter()
        evals = engine.minimize(objective, space, initial, budget=budget)
        assert len(evals) == budget
        return time.perf_counter() - t0

    serial = run(1, None)
    batched = run(4, 4)
    _record_bo("bo_serial_rounds_b12_sleep200ms", serial, n=budget)
    _record_bo("bo_batch4_rounds_b12_sleep200ms", batched, n=budget,
               speedup=serial / batched)
    with capsys.disabled():
        print(f"BO rounds (budget {budget}, 200ms/eval): serial "
              f"{serial:.3f}s vs batch=4 {batched:.3f}s "
              f"({serial / batched:.1f}x)")
    assert batched <= serial / 2.0  # measured ~4x; 2x is the criterion


class _DispersedSleepObjective(SyntheticObjective):
    """Latency-dispersed stand-in for cluster runs: each configuration
    sleeps a different amount (0.1–0.3 s derived from the vector), so
    asynchronous completion order genuinely interleaves instead of
    degenerating into lockstep rounds."""

    def __call__(self, u, time_limit_s=None):
        time.sleep(0.1 + 0.2 * float(np.asarray(u).mean()))
        return super().__call__(u, time_limit_s)


def test_async_bo_throughput_scaling(capsys):
    """Async engine throughput at k = 1, 2, 4, 8 workers.

    The perf gate: k=4 must complete the same budget at >= 2x the serial
    engine's throughput (evaluations are latency-bound, so folding
    completions without a round barrier overlaps the waiting).  k=1 is
    recorded as the parity-mode overhead measurement, k=8 as the
    saturation point (budget 12 leaves little depth beyond 4 workers).
    """
    budget = 12

    def run(async_workers):
        space = synthetic_space(4)
        objective = _DispersedSleepObjective(space, n_effective=3,
                                             noise=0.01, rng=24)
        initial = [objective(u) for u in latin_hypercube(8, 4, rng=24)]
        engine = BOEngine(rng=25, n_candidates=64, refine=False,
                          async_workers=async_workers)
        t0 = time.perf_counter()
        evals = engine.minimize(objective, space, initial, budget=budget)
        assert len(evals) == budget
        return time.perf_counter() - t0

    serial = run(0)
    _record_bo("bo_async_serial_b12_dispersed", serial, n=budget)
    with capsys.disabled():
        print(f"\nasync BO scaling (budget {budget}, 100-300ms/eval): "
              f"serial {serial:.3f}s", end="")
        walls = {}
        for k in (1, 2, 4, 8):
            walls[k] = run(k)
            _record_bo(f"bo_async_k{k}_b12_dispersed", walls[k], n=budget,
                       speedup=serial / walls[k])
            print(f", k={k} {walls[k]:.3f}s ({serial / walls[k]:.1f}x)",
                  end="")
        print()
    assert walls[1] <= serial * 1.5   # parity mode: no pool, no overhead
    assert walls[4] <= serial / 2.0   # the throughput gate (measured ~3x)


def test_sparksim_run_batch_vs_scalar_loop(capsys):
    """Vectorized batch simulation vs the scalar run() loop, 64 configs.

    ``run_batch`` shares the stage arithmetic across the whole batch in
    NumPy; the contract is bit-identity (tests/sparksim/test_batch_parity
    .py), this benchmark records what that sharing buys.
    """
    from repro.sparksim import SparkSimulator
    from repro.utils.rng import spawn

    space = spark_space()
    sim = SparkSimulator()
    stages = get_workload("terasort", "D1").build_stages()
    rng = np.random.default_rng(26)
    confs = [space.decode(rng.random(space.dim)) for _ in range(64)]

    def scalar():
        rngs = spawn(np.random.default_rng(27), len(confs))
        return [sim.run(stages, c, rng=r, time_limit_s=480.0)
                for c, r in zip(confs, rngs)]

    def batch():
        rngs = spawn(np.random.default_rng(27), len(confs))
        return sim.run_batch(stages, confs, rngs=rngs, time_limit_s=480.0)

    s = _time(scalar, repeats=3)
    b = _time(batch, repeats=3)
    _record_bo("sparksim_scalar_loop_64cfg_terasort", s, n=64)
    _record_bo("sparksim_run_batch_64cfg_terasort", b, n=64, speedup=s / b)
    with capsys.disabled():
        print(f"sparksim 64 configs (terasort/D1): scalar {s * 1e3:.1f}ms "
              f"vs run_batch {b * 1e3:.1f}ms ({s / b:.1f}x)")
    assert b <= s * 1.2  # batch path must never be slower (slack for noise)


def test_gp_lowrank_scaling_vs_exact(capsys):
    """Exact vs low-rank (Nyström/SoR) GP across training-set sizes.

    The exact GP's O(n^3) fit and O(n^2) predict dominate large-n
    sessions (warm starts routinely fold hundreds of prior rows into the
    surrogate); the low-rank path caps the cost at O(n·m^2) / O(m^2).
    Gate: at n=1000 the low-rank fit+predict cycle must be >= 5x faster
    than the exact GP while staying within a relative-RMSE tolerance of
    the exact posterior mean (measured ~12x / ~0.07).
    """
    from repro.gp import LowRankGaussianProcessRegressor

    rng = np.random.default_rng(30)
    dim = 8
    n_max = 2000
    X_all = rng.random((n_max, dim))
    y_all = (np.sin(3 * X_all[:, 0]) + X_all[:, 1] ** 2
             + 0.3 * X_all[:, 2] * X_all[:, 3]
             + 0.05 * rng.standard_normal(n_max))
    Q = rng.random((256, dim))

    walls: dict[int, tuple[float, float]] = {}
    rel_rmse: dict[int, float] = {}
    with capsys.disabled():
        print()
        for n in (100, 300, 1000, 2000):
            X, y = X_all[:n], y_all[:n]
            repeats = 2 if n <= 300 else 1

            def exact_cycle():
                gp = GaussianProcessRegressor(
                    kernel=default_bo_kernel(), optimize=False).fit(X, y)
                return gp.predict(Q)

            def lowrank_cycle():
                gp = LowRankGaussianProcessRegressor(
                    kernel=default_bo_kernel(), n_inducing=96,
                    optimize=False).fit(X, y)
                return gp.predict(Q)

            ex = _time(exact_cycle, repeats=repeats)
            lo = _time(lowrank_cycle, repeats=repeats)
            walls[n] = (ex, lo)
            mu_e, mu_l = exact_cycle(), lowrank_cycle()
            spread = float(np.ptp(mu_e)) or 1.0
            rel_rmse[n] = float(np.sqrt(np.mean((mu_l - mu_e) ** 2))
                                / spread)
            _record(f"gp_exact_fit_predict_n{n}", ex, n=n)
            _record(f"gp_lowrank_m96_fit_predict_n{n}", lo, n=n)
            print(f"GP fit+predict n={n}: exact {ex:.3f}s vs "
                  f"low-rank(m=96) {lo:.3f}s ({ex / lo:.1f}x, "
                  f"rel RMSE {rel_rmse[n]:.3f})")

    ex_1k, lo_1k = walls[1000]
    assert lo_1k <= ex_1k / 5.0       # the scale-up gate (measured ~12x)
    assert rel_rmse[1000] <= 0.15     # posterior stays faithful (meas ~0.07)
    ex_2k, lo_2k = walls[2000]
    assert lo_2k <= ex_2k / 5.0       # the gap must widen, never close


def test_zzy_write_bo_engine_file(capsys):
    existing = []
    if BO_BENCH_FILE.exists():
        try:
            existing = json.loads(BO_BENCH_FILE.read_text())
        except (ValueError, OSError):
            existing = []
    existing.extend(_bo_entries)
    BO_BENCH_FILE.write_text(json.dumps(existing, indent=2) + "\n")
    with capsys.disabled():
        print(f"[{len(_bo_entries)} timings appended to "
              f"{BO_BENCH_FILE.name}]")
    assert BO_BENCH_FILE.exists()


def test_zzz_write_bench_file(capsys):
    """Runs last (alphabetical within file ordering is execution order)."""
    existing = []
    if BENCH_FILE.exists():
        try:
            existing = json.loads(BENCH_FILE.read_text())
        except (ValueError, OSError):
            existing = []
    existing.extend(_entries)
    BENCH_FILE.write_text(json.dumps(existing, indent=2) + "\n")
    with capsys.disabled():
        print(f"[{len(_entries)} timings appended to {BENCH_FILE.name}]")
    assert BENCH_FILE.exists()
