"""Warm-started large-n smoke: journals → low-rank surrogate → session.

CI's end-to-end check of the surrogate scale-up path: a fixture
directory of prior-session journals holding 500+ evaluations is folded
into a fresh session whose ``gp_max_exact`` is forced low enough that
every BO fit runs on the low-rank (Nyström/SoR) GP.  The gate is
completion and plumbing — the session finishes inside the suite's
wall-clock cap, every prior row is folded, and the tracer shows the
``lowrank`` surrogate actually engaged — not solution quality, which
the integration suite pins separately.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ParameterSelector, ROBOTune
from repro.core.journal import EvaluationJournal
from repro.obs import InMemorySink, Tracer
from repro.sampling import latin_hypercube
from repro.sparksim import RunStatus
from repro.tuners import SyntheticObjective, synthetic_space
from repro.tuners.base import Evaluation

N_PRIOR = 520
DIM = 10


def _write_fixture(directory, objective, space) -> int:
    """Journals of prior sessions over the same workload, N_PRIOR rows."""
    n_written = 0
    per_journal = N_PRIOR // 4
    U = latin_hypercube(N_PRIOR, space.dim, rng=90)
    for j in range(4):
        journal = EvaluationJournal(directory / f"s{j}.jsonl", fsync=False)
        journal.write_meta({"tuner": "ROBOTune", "workload": "warmsmoke/D1",
                            "budget": per_journal})
        for u in U[j * per_journal:(j + 1) * per_journal]:
            ev = objective(u)
            journal.append(Evaluation(
                vector=u, config=space.decode(u), objective=ev.objective,
                cost_s=ev.cost_s, status=RunStatus.SUCCESS))
            n_written += 1
        journal.close()
    return n_written


def test_warm_started_large_n_session(tmp_path, capsys):
    space = synthetic_space(DIM)
    prior_obj = SyntheticObjective(space, n_effective=3, rng=91,
                                   name="warmsmoke", dataset="D1")
    prior = tmp_path / "journals"
    prior.mkdir()
    t0 = time.perf_counter()
    n_prior = _write_fixture(prior, prior_obj, space)
    fixture_s = time.perf_counter() - t0
    assert n_prior >= 500

    sink = InMemorySink()
    tracer = Tracer([sink])
    tuner = ROBOTune(
        selector=ParameterSelector(n_samples=40, n_trees=40, n_repeats=3,
                                   rng=92),
        warm_start=str(prior), rng=92,
        # Force every fit past the exact-GP threshold: with 500+ warm
        # rows folded in, the first fit already runs low-rank.
        engine_kwargs={"n_candidates": 64, "refine": False,
                       "gp_max_exact": 64, "gp_inducing": 96},
    )
    objective = SyntheticObjective(space, n_effective=3, rng=91,
                                   name="warmsmoke", dataset="D1")
    t0 = time.perf_counter()
    result = tuner.tune(objective, budget=30, rng=93, tracer=tracer)
    tune_s = time.perf_counter() - t0
    tracer.close()

    assert result.n_evaluations == 30          # priors consume no budget
    assert result.warm_start_n >= 500
    assert len(result.warm_start_sources) == 4
    modes = [r["data"]["mode"] for r in sink.records
             if r.get("type") == "gp.mode"]
    assert "lowrank" in modes                  # the scale-up path engaged
    assert np.isfinite(result.best_time_s)

    with capsys.disabled():
        print(f"\nwarm smoke: {n_prior} prior evals written in "
              f"{fixture_s:.1f}s, warm-started low-rank session "
              f"(budget 30) in {tune_s:.1f}s, best "
              f"{result.best_time_s:.2f}s")
