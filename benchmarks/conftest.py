"""Shared infrastructure for the benchmark harness.

Scale knobs (environment variables):

=======================  =======  ==============================================
REPRO_BENCH_TRIALS       2        independent sweeps per workload (paper: 5)
REPRO_BENCH_BUDGET       100      evaluations per tuning session (paper: 100)
REPRO_BENCH_FIG2_SAMPLES 120      LHS samples per Figure 2 cell (paper: 200)
REPRO_BENCH_FIG7_SAMPLES 150      ground-truth samples for Figure 7 (paper: 200)
REPRO_BENCH_FULL         unset    set to 1 for the paper-scale run (5 trials,
                                  200-sample figures)
=======================  =======  ==============================================

The 4-tuner comparison study is expensive, so it is built lazily once and
shared by every benchmark that consumes it (Figures 3-6, 8, Table 2); the
first benchmark to request it pays the cost.

Every benchmark writes its rendered table into ``results/<name>.txt`` and
echoes it to the real terminal (bypassing pytest capture) so the report
appears in tee'd logs.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

import pytest

from repro.bench import ComparisonStudy, StudyResult

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")
TRIALS = _env_int("REPRO_BENCH_TRIALS", 5 if FULL else 2)
BUDGET = _env_int("REPRO_BENCH_BUDGET", 100)
FIG2_SAMPLES = _env_int("REPRO_BENCH_FIG2_SAMPLES", 200 if FULL else 120)
FIG7_SAMPLES = _env_int("REPRO_BENCH_FIG7_SAMPLES", 200 if FULL else 150)

@functools.lru_cache(maxsize=1)
def get_study() -> StudyResult:
    """The shared comparison study (built on first use)."""
    return ComparisonStudy(budget=BUDGET, trials=TRIALS,
                           keep_results=True, base_seed=7).run()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, capsys):
    """Write a rendered report to results/<name>.txt and the terminal."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n[saved to results/{name}.txt]")

    return _emit
