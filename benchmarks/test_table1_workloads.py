"""E-T1: regenerate Table 1 and sanity-run every workload/dataset cell."""

from repro.bench import render_table1
from repro.sparksim import SparkSimulator
from repro.workloads import get_workload, iter_table1


def _run_all_cells() -> list[str]:
    """Simulate every Table 1 cell under a reasonable configuration."""
    sim = SparkSimulator()
    conf = {
        "spark.executor.cores": 8,
        "spark.executor.memory": 24 * 1024,
        "spark.executor.instances": 20,
        "spark.default.parallelism": 400,
    }
    lines = []
    for name, label in iter_table1():
        wl = get_workload(name, label)
        res = sim.run(wl.build_stages(), conf, rng=1)
        lines.append(f"{wl.abbrev}-{label}: {res.status.value} "
                     f"{res.duration_s:.1f}s")
    return lines


def test_table1(benchmark, emit):
    lines = benchmark.pedantic(_run_all_cells, rounds=1, iterations=1)
    report = render_table1() + "\n\nSanity runs (8c/24g x20 executors):\n" \
        + "\n".join(lines)
    emit("table1_workloads", report)
    assert len(lines) == 15
    assert all("invalid" not in ln for ln in lines)
