"""E-T2: Table 2 — iterations for ROBOTune to get within 1/5/10% of best.

Expected shape: within-5% is reached in well under half the budget for
most workloads (the paper reports 17-37 iterations out of 100).
"""

import numpy as np

from repro.bench import iterations_to_within, render_table2

from conftest import BUDGET, get_study


def test_table2(benchmark, emit):
    study = benchmark.pedantic(get_study, rounds=1, iterations=1)
    emit("table2_search_speed", render_table2(study))
    recs = study.filter(tuner="ROBOTune")
    within5 = [iterations_to_within(r.curve, 0.05) for r in recs]
    within5 = [i for i in within5 if i is not None]
    assert within5, "no session ever got within 5% of its best"
    assert np.mean(within5) < 0.7 * BUDGET
    # Tighter tolerances can only take more iterations.
    for r in recs:
        i1 = iterations_to_within(r.curve, 0.01)
        i10 = iterations_to_within(r.curve, 0.10)
        if i1 is not None and i10 is not None:
            assert i10 <= i1
