"""Ablation: configuration memoization on vs off for a repeated workload.

Tunes PR-D1 once, then PR-D3 either with the warm stores (paper behaviour)
or with everything cold; the warm session should reach a good
configuration in fewer iterations (Figure 6's mechanism).
"""

import numpy as np

from repro.core import (ConfigMemoizationBuffer, ParameterSelectionCache,
                        ParameterSelector, ROBOTune)
from repro.space import spark_space
from repro.tuners import WorkloadObjective
from repro.workloads import get_workload

from ablation_utils import ABLATION_BUDGET, ABLATION_TRIALS, variant_table


def _session(seed: int, warm: bool):
    space = spark_space()
    cache, memo = ParameterSelectionCache(), ConfigMemoizationBuffer()
    tuner = ROBOTune(selector=ParameterSelector(n_repeats=3, rng=seed),
                     selection_cache=cache, memo_buffer=memo, rng=seed)
    if warm:
        wl1 = get_workload("pagerank", "D1")
        obj1 = WorkloadObjective(wl1, space, rng=np.random.default_rng(seed))
        tuner.tune(obj1, ABLATION_BUDGET, rng=seed)
    else:
        # Cold: selection still cached (we ablate memoization only), so
        # run selection on D1 without storing any tuned configurations.
        wl1 = get_workload("pagerank", "D1")
        obj1 = WorkloadObjective(wl1, space, rng=np.random.default_rng(seed))
        warm_tuner = ROBOTune(selector=ParameterSelector(n_repeats=3, rng=seed),
                              selection_cache=cache,
                              memo_buffer=ConfigMemoizationBuffer(), rng=seed)
        warm_tuner.tune(obj1, ABLATION_BUDGET, rng=seed)
    wl3 = get_workload("pagerank", "D3")
    obj3 = WorkloadObjective(wl3, space, rng=np.random.default_rng(seed + 1))
    return tuner.tune(obj3, ABLATION_BUDGET, rng=seed + 1)


def test_memoization_on_vs_off(benchmark, emit):
    def run_all():
        curves = {"memoization ON": [], "memoization OFF": []}
        bests = {"memoization ON": [], "memoization OFF": []}
        for label, warm in (("memoization ON", True),
                            ("memoization OFF", False)):
            for t in range(ABLATION_TRIALS):
                res = _session(500 + t, warm)
                curves[label].append(res.best_curve())
                bests[label].append(res.best_time_s)
        # Iterations to reach a *common* quality target: 15% above the
        # best time any variant achieved (per-session "within X% of own
        # best" is an extreme-value statistic and too noisy to compare).
        target = min(min(v) for v in bests.values()) * 1.15
        out = {}
        for label in curves:
            its = []
            for curve in curves[label]:
                hit = np.nonzero(curve <= target)[0]
                its.append(int(hit[0]) + 1 if hit.size else ABLATION_BUDGET)
            out[label] = {"best_s": float(np.mean(bests[label])),
                          "cost_s": 0.0,
                          "evals": float(np.mean(its))}
        return out

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report = ("Ablation: memoized configs on vs off for a repeated "
              "workload (PR-D3 after PR-D1)\n"
              "('evals' column = iterations to reach the common quality "
              "target)\n" + variant_table(rows))
    emit("ablation_memoization_onoff", report)
    on, off = rows["memoization ON"], rows["memoization OFF"]
    # Memoization must help: a clearly better configuration, or the
    # common target reached in no more iterations.
    assert on["best_s"] <= off["best_s"] * 1.02 or on["evals"] <= off["evals"]
