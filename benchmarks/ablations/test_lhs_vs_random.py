"""Ablation: LHS vs plain random sampling for the BO training set.

The paper strengthens LHS (with maximin space filling) for sample
generation (§3.2) because stratified designs cover the space with fewer
points; random initial designs should give a noisier, typically worse GP
bootstrap.  The assertion is on design quality (coverage), which is the
mechanism; tuning outcome differences at this scale are noise-dominated.
"""

import numpy as np

from repro.sampling import (latin_hypercube, maximin_latin_hypercube,
                            min_pairwise_distance, uniform_samples)

from ablation_utils import variant_table


def _coverage_stats(kind: str, n: int = 20, dim: int = 5,
                    reps: int = 50) -> dict[str, float]:
    rng = np.random.default_rng(77)
    dists, fill = [], []
    for _ in range(reps):
        if kind == "maximin-lhs":
            pts = maximin_latin_hypercube(n, dim, rng)
        elif kind == "lhs":
            pts = latin_hypercube(n, dim, rng)
        else:
            pts = uniform_samples(n, dim, rng)
        dists.append(min_pairwise_distance(pts))
        # Per-axis stratification quality: worst-covered axis histogram gap.
        gaps = []
        for d in range(dim):
            hist, _ = np.histogram(pts[:, d], bins=n, range=(0, 1))
            gaps.append((hist == 0).mean())
        fill.append(np.mean(gaps))
    return {"best_s": float(np.mean(dists)),   # min pairwise distance
            "cost_s": float(np.mean(fill)) * 60.0,  # empty-cell fraction
            "evals": float(n)}


def test_lhs_vs_random_design(benchmark, emit):
    def run_all():
        return {
            "maximin LHS": _coverage_stats("maximin-lhs"),
            "plain LHS": _coverage_stats("lhs"),
            "uniform random": _coverage_stats("random"),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report = ("Ablation: initial-design quality, LHS vs random\n"
              "(best time column = mean min pairwise distance, higher is "
              "better;\n search cost column = mean empty-stratum fraction "
              "* 60, lower is better)\n" + variant_table(rows))
    emit("ablation_lhs_vs_random", report)
    # Maximin LHS spreads points at least as well as plain LHS, which in
    # turn stratifies axes perfectly (zero empty cells).
    assert rows["maximin LHS"]["best_s"] >= rows["plain LHS"]["best_s"]
    assert rows["plain LHS"]["cost_s"] == 0.0
    assert rows["uniform random"]["cost_s"] > 0.0
