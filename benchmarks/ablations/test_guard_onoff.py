"""Ablation: the median-multiple guard against bad configurations.

§4's guard kills configurations running past a multiple of the median
execution time.  With the guard effectively disabled (huge multiplier),
search cost should rise while the best found configuration stays similar.
"""

from repro.core import ParameterSelector, ROBOTune

from ablation_utils import run_variant, variant_table


def _tuner(seed: int, multiplier: float):
    return ROBOTune(selector=ParameterSelector(n_repeats=3, rng=seed),
                    guard_multiplier=multiplier, rng=seed)


def test_guard_on_vs_off(benchmark, emit):
    def run_all():
        return {
            "guard x3 median": run_variant(lambda s: _tuner(s, 3.0)),
            "guard x8 median": run_variant(lambda s: _tuner(s, 8.0)),
            "guard off (x1000)": run_variant(lambda s: _tuner(s, 1000.0)),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablation_guard_onoff",
         "Ablation: bad-configuration guard multiplier\n"
         + variant_table(rows))
    assert rows["guard x3 median"]["cost_s"] <= rows["guard off (x1000)"]["cost_s"]
    # The guard must not wreck result quality.
    assert rows["guard x3 median"]["best_s"] \
        <= 1.3 * rows["guard off (x1000)"]["best_s"]
