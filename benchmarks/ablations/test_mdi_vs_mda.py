"""Ablation: MDI (impurity) vs MDA (permutation) parameter importance.

The paper argues (§3.3, citing Strobl et al.) that MDI is unreliable when
predictors vary in scale or cardinality and therefore uses MDA on the OOB
R².  This ablation measures the stability of each ranking across
independent sample sets: the selection method ROBOTune relies on should
produce reproducible top-k sets.
"""

import numpy as np

from repro.bench import format_table
from repro.ml import RandomForestRegressor, grouped_permutation_importance
from repro.sampling import latin_hypercube
from repro.space import spark_space
from repro.tuners import WorkloadObjective
from repro.workloads import get_workload


TOP_K = 3  # beyond the top few groups, importances are noise-dominated


def _rankings(seed: int, n: int = 100):
    """(MDA top-k groups, MDI top-k groups) from one fresh sample set."""
    space = spark_space()
    wl = get_workload("pagerank", "D1")
    obj = WorkloadObjective(wl, space, rng=np.random.default_rng(seed))
    U = latin_hypercube(n, space.dim, rng=seed)
    y = np.log(np.array([obj(u).objective for u in U]))
    forest = RandomForestRegressor(120, max_features=0.5, rng=seed).fit(U, y)
    mda = grouped_permutation_importance(forest, space.groups(),
                                         n_repeats=5, rng=seed)
    mda_top = [g.group for g in mda[:TOP_K]]
    mdi_per_col = forest.feature_importances_
    mdi_groups = sorted(space.groups().items(),
                        key=lambda kv: -float(mdi_per_col[kv[1]].sum()))
    mdi_top = [k for k, _ in mdi_groups[:TOP_K]]
    return mda_top, mdi_top


def _stability(tops: list[list[str]]) -> float:
    """Mean pairwise Jaccard similarity of top-k sets."""
    sims = []
    for i in range(len(tops)):
        for j in range(i + 1, len(tops)):
            a, b = set(tops[i]), set(tops[j])
            sims.append(len(a & b) / len(a | b))
    return float(np.mean(sims))


def test_mdi_vs_mda_stability(benchmark, emit):
    def run_all():
        mda_tops, mdi_tops = [], []
        for seed in (601, 602, 603):
            mda, mdi = _rankings(seed)
            mda_tops.append(mda)
            mdi_tops.append(mdi)
        return {"MDA": (_stability(mda_tops), mda_tops[0]),
                "MDI": (_stability(mdi_tops), mdi_tops[0])}

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = format_table(
        ["Method", f"top-{TOP_K} stability (Jaccard)",
         f"example top-{TOP_K}"],
        [(k, v[0], ", ".join(v[1])) for k, v in rows.items()],
        title="Ablation: MDA vs MDI ranking stability across sample sets")
    emit("ablation_mdi_vs_mda", table)
    # Both methods must agree on the load-bearing signal: executor sizing
    # matters for PageRank, and the top groups are fairly reproducible.
    assert "executor.size" in rows["MDA"][1]
    assert "executor.size" in rows["MDI"][1]
    assert rows["MDA"][0] >= 0.3
