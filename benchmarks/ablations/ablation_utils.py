"""Shared runner for design-choice ablations (DESIGN.md §5).

Ablations run at reduced scale (one workload, smaller budget, two trials)
— they compare ROBOTune variants against each other, not against the
paper's absolute numbers.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.space import spark_space
from repro.tuners import Tuner, WorkloadObjective
from repro.workloads import get_workload

ABLATION_TRIALS = int(os.environ.get("REPRO_BENCH_ABLATION_TRIALS", 2))
ABLATION_BUDGET = int(os.environ.get("REPRO_BENCH_ABLATION_BUDGET", 60))


def run_variant(make_tuner: Callable[[int], Tuner], *,
                workload: str = "pagerank", dataset: str = "D1",
                trials: int | None = None, budget: int | None = None,
                base_seed: int = 0) -> dict[str, float]:
    """Run a tuner variant; returns mean best time / search cost / evals."""
    trials = trials if trials is not None else ABLATION_TRIALS
    budget = budget if budget is not None else ABLATION_BUDGET
    space = spark_space()
    bests, costs, n_evals = [], [], []
    for t in range(trials):
        wl = get_workload(workload, dataset)
        objective = WorkloadObjective(
            wl, space, rng=np.random.default_rng(9000 + base_seed + t))
        tuner = make_tuner(base_seed + t)
        result = tuner.tune(objective, budget, rng=base_seed * 131 + t)
        bests.append(result.best_time_s)
        costs.append(result.search_cost_s)
        n_evals.append(result.n_evaluations)
    return {
        "best_s": float(np.mean(bests)),
        "cost_s": float(np.mean(costs)),
        "evals": float(np.mean(n_evals)),
    }


def variant_table(rows: dict[str, dict[str, float]]) -> str:
    """Render {variant: metrics} as an aligned report table."""
    from repro.bench import format_table
    table_rows = [(name, m["best_s"], m["cost_s"] / 60.0, m["evals"])
                  for name, m in rows.items()]
    return format_table(
        ["Variant", "best time (s)", "search cost (min)", "evals"],
        table_rows)
