"""Ablation: Random-Forests parameter selection on vs off.

With selection off, BO must model the full 44-dimensional space — the
paper's §3.1 argument is that GP-BO efficiency collapses in high
dimensions, so the reduced space should find better configurations.
"""

from repro.core import ParameterSelectionCache, ParameterSelector, ROBOTune
from repro.space import spark_space

from ablation_utils import run_variant, variant_table


def _with_selection(seed: int):
    return ROBOTune(selector=ParameterSelector(n_repeats=3, rng=seed),
                    rng=seed)


def _without_selection(seed: int):
    # Pre-seed the cache with *all* 44 parameters: the reduced space
    # degenerates to the full generic space and no selection run happens.
    cache = ParameterSelectionCache()
    cache.put("pagerank", spark_space().names)
    return ROBOTune(selection_cache=cache, rng=seed)


def test_selection_on_vs_off(benchmark, emit):
    def run_all():
        return {
            "selection ON (reduced space)": run_variant(_with_selection),
            "selection OFF (44-dim BO)": run_variant(_without_selection),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablation_selection_onoff",
         "Ablation: parameter selection on vs off\n" + variant_table(rows))
    on = rows["selection ON (reduced space)"]["best_s"]
    off = rows["selection OFF (44-dim BO)"]["best_s"]
    assert on <= 1.1 * off, \
        f"selection should not hurt best config (on={on:.1f}, off={off:.1f})"
