"""Ablation: the GP-Hedge portfolio vs each single acquisition function.

The paper's motivation for Hedge (§3.4): no single acquisition function is
guaranteed best on an unknown objective; the adaptive portfolio should be
competitive with the best individual function.
"""

from repro.core import (ExpectedImprovement, GPHedge, LowerConfidenceBound,
                        ParameterSelector, ProbabilityOfImprovement, ROBOTune)

from ablation_utils import run_variant, variant_table


def _tuner(seed: int, functions=None):
    engine_kwargs = {}
    if functions is not None:
        engine_kwargs["hedge"] = GPHedge(functions, rng=seed)
    return ROBOTune(selector=ParameterSelector(n_repeats=3, rng=seed),
                    engine_kwargs=engine_kwargs, rng=seed)


def test_hedge_vs_single_acquisitions(benchmark, emit):
    def run_all():
        return {
            "Hedge (PI+EI+LCB)": run_variant(lambda s: _tuner(s)),
            "PI only": run_variant(
                lambda s: _tuner(s, [ProbabilityOfImprovement()])),
            "EI only": run_variant(
                lambda s: _tuner(s, [ExpectedImprovement()])),
            "LCB only": run_variant(
                lambda s: _tuner(s, [LowerConfidenceBound()])),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablation_hedge_vs_single",
         "Ablation: Hedge portfolio vs single acquisition functions\n"
         + variant_table(rows))
    singles = [rows[k]["best_s"] for k in ("PI only", "EI only", "LCB only")]
    # Hedge should be competitive: not far behind the best single function.
    assert rows["Hedge (PI+EI+LCB)"]["best_s"] <= 1.25 * min(singles)
