"""Setup shim for legacy editable installs.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the editable
wheel.  This shim enables the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
